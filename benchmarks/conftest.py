"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures on scaled
stand-in datasets and writes the rendered rows to ``benchmarks/results/``.
Tune cost with environment variables:

* ``REPRO_BENCH_SCALE`` — dataset size multiplier (default 0.08: the four
  stand-ins span roughly 1.2k-2.4k nodes).  Raise toward 1.0 for
  closer-to-paper sizes if you have the patience.
* ``REPRO_BENCH_SEED`` — RNG seed for workload generation (default 0).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return SEED


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's rendered table and echo it to the console."""
    (results_dir / f"{name}.txt").write_text(text)
    print("\n" + text)
