"""Full-field comparison: every RR-based algorithm on one WC workload.

Not a paper figure — the historical ladder (Borgs 2014 -> TIM+ -> IMM ->
SSA/D-SSA -> OPIM-C -> SUBSIM) on one graph, ordered by publication year.
Shape assertions: each generation of algorithms needs no more RR sets than
the one before it, and SUBSIM ends up fastest.
"""

from conftest import write_result

from repro.experiments.harness import timed_run
from repro.experiments.reporting import render_table
from repro.experiments.workloads import make_dataset
from repro.graphs.weights import wc_weights

FIELD = (
    ("borgs-ris", {"scale_tau": 5e-3, "max_rr_sets": 300_000}),
    ("tim+", {"max_rr_sets": 300_000}),
    ("imm", {"max_rr_sets": 300_000}),
    ("ssa", {}),
    ("d-ssa", {}),
    ("opim-c", {}),
    ("subsim", {}),
    ("hist+subsim", {}),
)


def test_full_field_wc(benchmark, results_dir, bench_scale, bench_seed):
    graph = wc_weights(make_dataset("pokec-like", scale=bench_scale, seed=bench_seed))

    def run_field():
        rows = []
        for name, kwargs in FIELD:
            record = timed_run(
                graph,
                "pokec-like",
                name,
                25,
                0.4,
                bench_seed,
                setting="wc",
                evaluate_spread=True,
                num_simulations=150,
                **kwargs,
            )
            rows.append(record.as_row())
        return rows

    rows = benchmark.pedantic(run_field, rounds=1, iterations=1)
    by_name = {r["algorithm"]: r for r in rows}

    # The optimistic generation needs far fewer samples than IMM's
    # union-bound schedule...
    assert by_name["opim-c"]["num_rr_sets"] < by_name["imm"]["num_rr_sets"]
    # ...and SUBSIM is the fastest full-guarantee algorithm in the field
    # (borgs-ris is excluded: its edge budget is deliberately scaled down,
    # so its runtime is not a guarantee-preserving number).
    principled_times = {
        name: by_name[name]["runtime_s"] for name, _ in FIELD
    }
    assert principled_times["subsim"] == min(
        principled_times[n]
        for n in ("tim+", "imm", "ssa", "d-ssa", "opim-c", "subsim")
    )
    # Quality parity across the whole field (same guarantee target).
    spreads = [r["spread"] for r in rows]
    assert max(spreads) <= 1.3 * min(spreads)

    write_result(
        results_dir,
        "full_field_wc",
        render_table(
            rows,
            title=f"Full field — WC, k=25, eps=0.4 (scale={bench_scale})",
        ),
    )
