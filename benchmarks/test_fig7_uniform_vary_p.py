"""Figure 7: running time across the uniform-IC average-RR-size ladder.

Paper shape: mirrors Figure 6 under uniform edge probabilities — HIST is
several times faster than OPIM-C even at small RR sizes and at least an
order faster at the top; HIST+SUBSIM adds another order.
"""

from collections import defaultdict

from conftest import write_result

from repro.experiments.figures import figure7_rows
from repro.experiments.reporting import render_table

# Ladder mirrors Figure 6: low-influence bottom rung, high-influence top.
FRACTIONS = (0.004, 0.02, 0.1, 0.2, 0.35)


def test_fig7_uniform_ladder(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure7_rows,
        kwargs={
            "dataset": "pokec-like",
            "k": 50,
            "eps": 0.3,
            "scale": bench_scale,
            "seed": bench_seed,
            "size_fractions": FRACTIONS,
        },
        rounds=1,
        iterations=1,
    )
    by_target = defaultdict(dict)
    for row in rows:
        by_target[row["target_avg_rr_size"]][row["algorithm"]] = row

    targets = sorted(by_target)
    top = by_target[targets[-1]]
    assert top["hist"]["runtime_s"] < top["opim-c"]["runtime_s"]
    assert top["hist+subsim"]["runtime_s"] < top["opim-c"]["runtime_s"]

    advantages = [
        by_target[t]["opim-c"]["runtime_s"]
        / max(by_target[t]["hist"]["runtime_s"], 1e-9)
        for t in targets
    ]
    assert advantages[-1] > 1.2 * advantages[0], advantages

    write_result(
        results_dir,
        "fig7_uniform_ladder",
        render_table(
            rows,
            title=(
                "Figure 7 — runtime vs avg RR size, uniform IC "
                f"(scale={bench_scale})"
            ),
        ),
    )
