"""Figure 4: running time vs k under the WC-variant high-influence setting.

Paper shape: HIST is at least an order of magnitude faster than OPIM-C, its
advantage growing with k; HIST+SUBSIM adds up to another order.  We assert
HIST beats OPIM-C at every k >= 5 and HIST+SUBSIM beats HIST on aggregate.
"""

from collections import defaultdict

from conftest import write_result

from repro.experiments.figures import figure4_rows
from repro.experiments.reporting import render_table

K_VALUES = (1, 5, 10, 25, 50, 100)


def test_fig4_running_time_vs_k(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure4_rows,
        kwargs={
            "dataset": "pokec-like",
            "k_values": K_VALUES,
            "eps": 0.3,
            "scale": bench_scale,
            "seed": bench_seed,
            "target_size_fraction": 0.2,
        },
        rounds=1,
        iterations=1,
    )
    by_k = defaultdict(dict)
    for row in rows:
        by_k[row["k"]][row["algorithm"]] = row["runtime_s"]

    # k = 1 is HIST's degenerate corner: (1 - (1-1/k)^b) = 1 forces the
    # sentinel phase to solve the instance to eps/2 accuracy, so the paper's
    # advantage only kicks in from small k upward.  Assert from k = 5.
    for k in K_VALUES:
        if k >= 5:
            assert by_k[k]["hist"] < by_k[k]["opim-c"], k
            assert by_k[k]["hist+subsim"] < by_k[k]["opim-c"], k

    total = defaultdict(float)
    for row in rows:
        if row["k"] >= 5:
            total[row["algorithm"]] += row["runtime_s"]
    assert total["hist+subsim"] < total["hist"] < total["opim-c"]

    write_result(
        results_dir,
        "fig4_hist_vary_k",
        render_table(
            rows,
            title=(
                "Figure 4 — runtime vs k, WC-variant high influence "
                f"(scale={bench_scale})"
            ),
        ),
    )
