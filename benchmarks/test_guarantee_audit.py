"""Guarantee audit: does (1 - 1/e - eps, delta) hold empirically?

Not a paper figure — a head-on check of the theorem every algorithm
claims.  Each contender runs several times with independent randomness;
every output is certified against fresh RR samples; the empirical failure
rate must respect delta.  The heuristics are audited too, to show the
check has teeth (random fails, degree usually passes without promising
anything).
"""

from conftest import write_result

from repro.experiments.guarantees import audit_guarantee
from repro.experiments.reporting import render_table
from repro.experiments.workloads import make_dataset
from repro.graphs.weights import wc_weights

CONTENDERS = ("subsim", "hist+subsim", "opim-c", "d-ssa", "random")


def test_guarantee_audit(benchmark, results_dir, bench_scale, bench_seed):
    graph = wc_weights(
        make_dataset("pokec-like", scale=bench_scale, seed=bench_seed)
    )

    def run_audits():
        rows = []
        for name in CONTENDERS:
            audit = audit_guarantee(
                graph,
                name,
                k=10,
                eps=0.3,
                delta=0.1,
                runs=5,
                certificate_rr=15_000,
                seed=bench_seed,
            )
            rows.append(audit.summary_row())
        return rows

    rows = benchmark.pedantic(run_audits, rounds=1, iterations=1)
    by_name = {r["algorithm"]: r for r in rows}
    for name in ("subsim", "hist+subsim", "opim-c", "d-ssa"):
        assert by_name[name]["holds"], by_name[name]
    # The audit must have teeth: random seeds miss the target.
    assert by_name["random"]["failures"] > 0

    write_result(
        results_dir,
        "guarantee_audit",
        render_table(
            rows,
            title=(
                "Guarantee audit — 5 runs each, eps=0.3, delta=0.1 "
                f"(scale={bench_scale})"
            ),
        ),
    )
