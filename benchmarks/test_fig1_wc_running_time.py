"""Figure 1: IM running time under the WC model.

Paper shape: SUBSIM (OPIM-C + subset-sampling generation) is the fastest on
every dataset; OPIM-C follows; SSA is up to an order slower; IMM up to three
orders slower.  We assert the two robust orderings — SUBSIM < OPIM-C and
SUBSIM far below IMM — and report the full table.
"""

from collections import defaultdict

from conftest import write_result

from repro.experiments.figures import figure1_rows
from repro.experiments.reporting import render_table


def test_fig1_wc_running_time(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure1_rows,
        kwargs={
            "k": 50,
            "eps": 0.5,
            "scale": bench_scale,
            "seed": bench_seed,
            "max_rr_sets": 100_000,
        },
        rounds=1,
        iterations=1,
    )
    by_dataset = defaultdict(dict)
    for row in rows:
        by_dataset[row["dataset"]][row["algorithm"]] = row

    for dataset, algos in by_dataset.items():
        subsim = algos["subsim"]["runtime_s"]
        opimc = algos["opim-c"]["runtime_s"]
        imm = algos["imm"]["runtime_s"]
        # SUBSIM only changes RR generation, yet beats OPIM-C outright.
        assert subsim < opimc, dataset
        # IMM's sample schedule dwarfs the optimistic algorithms'.
        assert imm > 2 * subsim, dataset
        # The mechanism: identical RR-set counts' worth of work measured in
        # edge inspections is far lower for SUBSIM.
        assert (
            algos["subsim"]["edges_examined"]
            < algos["opim-c"]["edges_examined"]
        ), dataset

    write_result(
        results_dir,
        "fig1_wc_running_time",
        render_table(
            rows,
            title=f"Figure 1 — WC running time, k=50 (scale={bench_scale})",
        ),
    )
