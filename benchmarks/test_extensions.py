"""Extension benchmarks: LT model, seed quality, generator engineering.

Beyond the paper's printed figures — empirical checks of its analytical
claims (LT already enjoys the tightened bound; the speedups never cost
seed quality) plus the interpreted-vs-vectorised generator comparison
DESIGN.md promises.
"""

import numpy as np
from conftest import write_result

from repro.experiments.extensions import lt_model_rows, seed_quality_rows
from repro.experiments.reporting import render_table
from repro.experiments.workloads import make_dataset
from repro.graphs.weights import wc_weights
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator


def test_ext_lt_model(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        lt_model_rows,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    by_algo = {r["algorithm"]: r for r in rows}
    # Principled LT algorithms must match or beat the heuristics.
    best_heuristic = max(
        by_algo[a]["lt_spread"] for a in ("degree", "pagerank")
    )
    assert by_algo["opim-c-lt"]["lt_spread"] >= 0.9 * best_heuristic
    assert by_algo["hist-lt"]["lt_spread"] >= 0.9 * best_heuristic
    write_result(
        results_dir,
        "ext_lt_model",
        render_table(rows, title=f"Extension — LT model (scale={bench_scale})"),
    )


def test_ext_seed_quality(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        seed_quality_rows,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    by_algo = {r["algorithm"]: r for r in rows}
    principled = [
        by_algo[a]["spread"]
        for a in ("subsim", "hist+subsim", "opim-c", "imm")
    ]
    # All principled algorithms agree (same guarantee, same optimum)...
    assert max(principled) <= 1.2 * min(principled)
    # ...and random trails far behind.
    assert by_algo["random"]["spread"] < 0.8 * min(principled)
    write_result(
        results_dir,
        "ext_seed_quality",
        render_table(
            rows, title=f"Extension — seed quality, WC (scale={bench_scale})"
        ),
    )


def test_ext_vectorised_generator(benchmark, results_dir, bench_scale, bench_seed):
    """Engineering comparison: interpreted vs vectorised vanilla vs SUBSIM.

    Documents the cost-model caveat: NumPy vectorisation shrinks vanilla's
    per-edge constant, so wall-clock ratios against SUBSIM are NOT the
    paper's cost model — the edges_examined column still is.
    """
    import time

    graph = wc_weights(make_dataset("pokec-like", scale=bench_scale, seed=bench_seed))
    num_rr = 3000

    def run_all():
        rows = []
        for cls in (VanillaICGenerator, FastVanillaICGenerator, SubsimICGenerator):
            generator = cls(graph)
            rng = np.random.default_rng(bench_seed)
            start = time.perf_counter()
            for _ in range(num_rr):
                generator.generate(rng)
            rows.append(
                {
                    "generator": generator.name,
                    "runtime_s": round(time.perf_counter() - start, 4),
                    "edges_examined": generator.counters.edges_examined,
                    "avg_rr_size": round(generator.counters.average_size(), 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {r["generator"]: r for r in rows}
    # The machine-independent counter tells the paper's story regardless of
    # vectorisation...
    assert (
        by_name["subsim"]["edges_examined"]
        < by_name["fast-vanilla"]["edges_examined"]
    )
    # ...and all three sample the same distribution.
    sizes = [r["avg_rr_size"] for r in rows]
    assert max(sizes) <= 1.2 * min(sizes)
    write_result(
        results_dir,
        "ext_vectorised_generator",
        render_table(rows, title=f"Extension — generator engineering, {num_rr} RR sets"),
    )
