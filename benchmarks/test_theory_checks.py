"""Theory validation: the paper's cost lemmas, measured on every dataset.

Lemma 3 (subset-sampling cost is 1 + mu) and Lemma 4 (RR generation cost
bounded by degree-biased influence) are the load-bearing steps of
Theorem 1's tightened complexity.  Both are inequalities a simulation can
falsify — so we try, on all four stand-ins.
"""

import pytest
from conftest import write_result

from repro.experiments.reporting import render_table
from repro.experiments.theory_checks import theory_check_rows
from repro.experiments.workloads import DATASET_NAMES, make_dataset
from repro.graphs.weights import wc_weights


def test_theory_lemmas_hold(benchmark, results_dir, bench_scale, bench_seed):
    def run_checks():
        rows = []
        for name in DATASET_NAMES:
            graph = wc_weights(
                make_dataset(name, scale=bench_scale, seed=bench_seed)
            )
            row = {"dataset": name}
            row.update(theory_check_rows(graph, seed=bench_seed))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run_checks, rounds=1, iterations=1)
    for row in rows:
        # Lemma 3: measured cost within 10% of 1 + mu.
        assert row["lemma3_measured"] == pytest.approx(
            row["lemma3_predicted"], rel=0.1
        ), row
        # Lemma 4: under WC the bound is TIGHT (every proof step is an
        # equality), so measured and bound estimate the same quantity —
        # check agreement within heavy-tail Monte-Carlo noise.
        assert (
            0.75 * row["lemma4_bound"]
            <= row["lemma4_cost_per_rr"]
            <= 1.33 * row["lemma4_bound"]
        ), row

    write_result(
        results_dir,
        "theory_checks",
        render_table(
            rows,
            title=f"Theory checks — Lemmas 3 and 4 (scale={bench_scale})",
        ),
    )



