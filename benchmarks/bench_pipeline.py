"""Pipelined doubling benchmark: ``--prefetch next-round`` vs ``off``.

Two measurements, written to ``benchmarks/results/BENCH_pipeline.json``:

* **hard-query** (the headline) — a sharded WC serving stream of two
  queries through a byte-capped :class:`~repro.engine.session.QuerySession`
  at equal worker counts, differing *only* in the session ``prefetch``
  mode.  The warm-up query converges at some theta; the pipelined arm's
  in-flight speculation for the next doubling commits as warm inventory
  (sample reuse, arXiv 2311.15345), so the follow-up "hard" query — tuned
  to need exactly that next doubling — is answered entirely from the bank,
  while the serial arm must generate the extension on the query's critical
  path.  The byte cap (self-calibrated to sit between one and two
  doublings of the warm pool) bounds speculation identically in both arms,
  so the comparison is equal-config: same cap, same workers, same query
  stream.  Both arms generate the *same total number of RR sets* — the
  speculation is fully reused, never wasted — and the benchmark asserts
  seed-for-seed bit-identity between the arms before reporting.

* **single-query** — one sharded query on vs. off, reporting wall time,
  the ``pipeline_overlap_seconds`` gauge, and the warm inventory each arm
  leaves banked.  Generation/selection overlap needs spare cores; the
  payload records ``cpus`` so single-core runs (where the overlapped
  generation time-slices against selection instead of hiding under it,
  and the pipelined arm pays extra in-window work for the inventory it
  banks) are read in context.

Run directly::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick    # CI smoke

``--quick`` shrinks everything so the whole run finishes in well under a
minute and writes ``BENCH_pipeline_quick.json`` so a smoke run never
overwrites the committed full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.engine.session import QuerySession
from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import wc_weights

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_pipeline.json"
QUICK_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_pipeline_quick.json"
)

ALGORITHM = "opim-c-fast"
SEED = 7


def _calibrate_byte_cap(graph, *, shards, k, warm_eps, batch_size) -> int:
    """Pick the byte cap the measured sessions run under.

    One throwaway pipelined warm-up query leaves each bank holding two
    doublings' worth of sets (the converged theta plus the committed
    speculation).  A cap of 1.4x those bytes admits that speculation but
    refuses the *next* doubling (~2x), which is what keeps the measured
    hard query's own speculation off its critical path in both arms —
    while never evicting a resident bank.
    """
    session = QuerySession(
        graph, ALGORITHM, seed=SEED, shards=shards, prefetch="next-round"
    )
    try:
        session.maximize(k, eps=warm_eps, batch_size=batch_size)
        warm_bytes = max(
            bank.nbytes() for bank in session.provider._banks.values()
        )
    finally:
        session.close()
    return int(warm_bytes * 1.4)


def _run_stream(graph, prefetch, *, byte_cap, shards, k, warm_eps,
                hard_eps, batch_size) -> dict:
    """One session serving the warm-up query then the hard query."""
    session = QuerySession(
        graph, ALGORITHM, seed=SEED, shards=shards,
        byte_cap=byte_cap, prefetch=prefetch,
    )
    try:
        start = time.perf_counter()
        warm = session.maximize(k, eps=warm_eps, batch_size=batch_size)
        mid = time.perf_counter()
        hard = session.maximize(k, eps=hard_eps, batch_size=batch_size)
        end = time.perf_counter()
        metrics = session.metrics
        return {
            "warm_seconds": mid - start,
            "hard_seconds": end - mid,
            "warm_seeds": list(warm.seeds),
            "hard_seeds": list(hard.seeds),
            "warm_rr_sets": warm.num_rr_sets,
            "hard_rr_sets": hard.num_rr_sets,
            "sets_generated": metrics.value("bank.sets_generated"),
            "sets_reused": metrics.value("bank.sets_reused"),
            "speculative_sets": metrics.value(
                "generation.speculative_sets"
            ),
        }
    finally:
        session.close()


def bench_hard_query(graph, *, shards, k, warm_eps, hard_eps, batch_size,
                     reps) -> dict:
    """The headline: hard-query latency, pipelined vs. serial arm."""
    byte_cap = _calibrate_byte_cap(
        graph, shards=shards, k=k, warm_eps=warm_eps, batch_size=batch_size
    )
    kwargs = dict(
        byte_cap=byte_cap, shards=shards, k=k, warm_eps=warm_eps,
        hard_eps=hard_eps, batch_size=batch_size,
    )
    arms = {}
    for prefetch in ("off", "next-round"):
        runs = [_run_stream(graph, prefetch, **kwargs) for _ in range(reps)]
        arms[prefetch] = runs

    off, on = arms["off"][0], arms["next-round"][0]
    if (off["warm_seeds"], off["hard_seeds"]) != (
        on["warm_seeds"], on["hard_seeds"]
    ):
        raise SystemExit(
            "bit-identity violated: prefetch arms returned different seeds"
        )

    off_hard = min(r["hard_seconds"] for r in arms["off"])
    on_hard = min(r["hard_seconds"] for r in arms["next-round"])
    return {
        "workers": shards,
        "k": k,
        "warm_eps": warm_eps,
        "hard_eps": hard_eps,
        "byte_cap": byte_cap,
        "reps": reps,
        "warm_rr_sets": off["warm_rr_sets"],
        "hard_rr_sets": off["hard_rr_sets"],
        "off_warm_seconds": round(
            min(r["warm_seconds"] for r in arms["off"]), 4
        ),
        "on_warm_seconds": round(
            min(r["warm_seconds"] for r in arms["next-round"]), 4
        ),
        "off_hard_seconds": round(off_hard, 4),
        "on_hard_seconds": round(on_hard, 4),
        "speedup": round(off_hard / on_hard, 2) if on_hard else float("inf"),
        # Equal totals: the pipelined arm's speculation is fully reused by
        # the hard query, so pipelining shifts generation off the measured
        # critical path without generating a single extra set.
        "off_sets_generated": off["sets_generated"],
        "on_sets_generated": on["sets_generated"],
        "on_sets_reused": on["sets_reused"],
        "seeds_identical": True,
    }


def bench_single_query(graph, *, shards, k, eps, batch_size) -> dict:
    """One query on vs. off: raw overlap numbers, no headline claim."""
    results = {}
    for prefetch in ("off", "next-round"):
        session = QuerySession(
            graph, ALGORITHM, seed=SEED, shards=shards, prefetch=prefetch
        )
        try:
            start = time.perf_counter()
            result = session.maximize(k, eps=eps, batch_size=batch_size)
            elapsed = time.perf_counter() - start
            metrics = session.metrics
            banked = sum(
                bank.num_rr for bank in session.provider._banks.values()
            )
            results[prefetch] = {
                "seconds": round(elapsed, 4),
                "rr_sets": result.num_rr_sets,
                "overlap_seconds": round(
                    metrics.gauge("pipeline_overlap_seconds"), 4
                ),
                "warm_sets_banked": int(banked),
                "seeds": list(result.seeds),
            }
        finally:
            session.close()
    if results["off"]["seeds"] != results["next-round"]["seeds"]:
        raise SystemExit(
            "bit-identity violated: prefetch arms returned different seeds"
        )
    for arm in results.values():
        del arm["seeds"]
    return {
        "workers": shards,
        "k": k,
        "eps": eps,
        "off": results["off"],
        "next_round": results["next-round"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: tiny sizes, separate results file")
    args = parser.parse_args()

    if args.quick:
        graph_args = dict(n=8_000, degree=4.0, seed=3)
        stream_args = dict(shards=2, k=10, warm_eps=0.5, hard_eps=0.3,
                           batch_size=32, reps=1)
        single_args = dict(shards=2, k=10, eps=0.5, batch_size=32)
    else:
        graph_args = dict(n=50_000, degree=8.0, seed=3)
        stream_args = dict(shards=2, k=50, warm_eps=0.5, hard_eps=0.4,
                           batch_size=64, reps=3)
        single_args = dict(shards=2, k=50, eps=0.5, batch_size=64)

    graph = wc_weights(
        erdos_renyi(graph_args["n"], graph_args["degree"],
                    seed=graph_args["seed"])
    )

    print("hard-query ...", flush=True)
    hard = bench_hard_query(graph, **stream_args)
    print(json.dumps(hard, indent=2), flush=True)

    print("single-query ...", flush=True)
    single = bench_single_query(graph, **single_args)
    print(json.dumps(single, indent=2), flush=True)

    payload = {
        "benchmark": "pipelined-doubling",
        "quick": bool(args.quick),
        "cpus": os.cpu_count(),
        "graph": {**graph_args, "weights": "wc"},
        "hard_query": hard,
        "single_query": single,
    }
    path = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
