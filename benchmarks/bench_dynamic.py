"""Dynamic-graph benchmark: warm-bank repair vs. cold regeneration.

Materialises a warm RR bank, applies a ~1% edge delta (mixed deletes,
reweights, and inserts) through :meth:`CSRGraph.apply_delta`, and compares
two ways of making the bank consistent with the mutated graph:

* **repair** — :meth:`RRBank.repair` resamples only the *dirty* sets
  (those containing a touched node; only their walks could have traversed
  a changed in-adjacency block), keeping every clean set verbatim.
* **cold** — regenerate the full pool from scratch on the mutated graph,
  which is what discarding the bank on every delta would cost.

Two statistical checks accompany the timings:

* **KS equivalence** — a two-sample Kolmogorov-Smirnov test (pure numpy,
  alpha = 0.01) comparing the repaired pool's RR-set size distribution
  against an independently seeded cold pool on the mutated graph.  Repair
  must be distributionally indistinguishable from resampling everything.
* **zero-dirty bit-identity** — a delta touching only nodes that no
  stored set contains must leave the pool *bit-identical* to a cold bank
  built on the mutated graph from the same stream origin (the coupling
  argument behind prefix-stable repair).

Results go to ``benchmarks/results/BENCH_dynamic.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_dynamic.py            # full (n=10^4)
    PYTHONPATH=src python benchmarks/bench_dynamic.py --quick    # CI smoke

``--quick`` shrinks the graph and pool; quick results carry
``"quick": true`` and are written to ``BENCH_dynamic_quick.json`` so a
smoke run never overwrites the committed full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.dynamic import GraphDelta
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.rrsets.bank import RRBank
from repro.rrsets.subsim import SubsimICGenerator

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_dynamic.json"
#: ``--quick`` runs land here so a CI smoke run can never clobber the
#: committed full-size numbers in BENCH_dynamic.json
QUICK_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_dynamic_quick.json"
)

#: asymptotic two-sided Kolmogorov-Smirnov critical coefficient at
#: alpha = 0.01: reject when D > c * sqrt((n1 + n2) / (n1 * n2)).
KS_ALPHA = 0.01
KS_COEFF = 1.628


def make_graph(n: int, degree: int = 3, seed: int = 1) -> CSRGraph:
    return wc_weights(
        preferential_attachment(n, degree, seed=seed, reciprocal=0.3)
    )


def make_bank(graph: CSRGraph, entropy: int, role: str = "bench") -> RRBank:
    seq = np.random.SeedSequence(entropy, spawn_key=(1,))
    return RRBank(
        graph,
        SubsimICGenerator(graph),
        np.random.default_rng(seq),
        role=role,
        reusable=True,
        entropy=entropy,
    )


def make_delta(
    graph: CSRGraph, fraction: float, seed: int = 11
) -> GraphDelta:
    """A burst-churn delta over ~``fraction`` of the edges.

    Streaming updates concentrate per user rather than spraying uniformly
    over edges, so the workload picks ``budget / 4`` affected users
    (uniformly over nodes, not in-degree-biased) and gives each a burst:
    lose one follower (delete), one tie reweighted (update), gain two new
    followers (inserts).  The touched-node set — what decides which RR
    sets go dirty — is therefore the affected users, each charged four
    edge changes.
    """
    rng = np.random.default_rng(seed)
    budget = max(4, int(round(graph.m * fraction)))
    n_users = max(1, budget // 4)

    indeg = np.diff(graph.in_indptr)
    users = rng.choice(
        np.flatnonzero(indeg >= 2), n_users, replace=False
    )
    srcs = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.out_indptr)
    )
    existing = set(
        zip(srcs.tolist(), graph.out_indices.astype(np.int64).tolist())
    )
    deletes, updates, inserts = [], [], []
    for v in users:
        v = int(v)
        block = graph.in_indices[graph.in_indptr[v]:graph.in_indptr[v + 1]]
        lost, reweighted = rng.choice(len(block), 2, replace=False)
        deletes.append((int(block[lost]), v))
        updates.append((int(block[reweighted]), v, float(rng.uniform(0.01, 0.5))))
        gained = 0
        while gained < 2:
            u = int(rng.integers(0, graph.n))
            if u == v or (u, v) in existing:
                continue
            existing.add((u, v))
            inserts.append((u, v, float(rng.uniform(0.01, 0.5))))
            gained += 1
    return GraphDelta(inserts=inserts, deletes=deletes, updates=updates)


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> dict:
    """Two-sample KS test statistic + alpha = 0.01 decision (pure numpy)."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    statistic = float(np.abs(cdf_a - cdf_b).max())
    critical = KS_COEFF * float(
        np.sqrt((len(a) + len(b)) / (len(a) * len(b)))
    )
    return {
        "statistic": round(statistic, 6),
        "critical": round(critical, 6),
        "alpha": KS_ALPHA,
        "n1": int(len(a)),
        "n2": int(len(b)),
        "pass": statistic <= critical,
    }


def _zero_dirty_check(n: int, theta: int, entropy: int) -> dict:
    """Delta touching only uncovered nodes => pool bit-identical to cold."""
    graph = make_graph(n)
    bank = make_bank(graph, entropy)
    bank.ensure(theta)
    coverage = bank.pool.coverage_counts()
    edge = None
    for v in np.flatnonzero(coverage == 0):
        start, end = graph.in_indptr[v], graph.in_indptr[v + 1]
        if end > start:
            edge = (int(graph.in_indices[start]), int(v))
            break
    if edge is None:
        return {"checked": False, "reason": "no uncovered node with in-edges"}
    touched = graph.apply_delta(GraphDelta(deletes=[edge]))
    stats = bank.repair(touched)

    cold_graph = make_graph(n)
    cold_graph.apply_delta(GraphDelta(deletes=[edge]))
    cold = make_bank(cold_graph, entropy)
    cold.ensure(theta)
    identical = bool(
        np.array_equal(bank.pool.rr_nodes, cold.pool.rr_nodes)
        and np.array_equal(bank.pool.rr_indptr, cold.pool.rr_indptr)
    )
    return {
        "checked": True,
        "num_dirty": int(stats["num_dirty"]),
        "bit_identical": identical,
    }


def run_benchmark(
    n: int = 10_000,
    degree: int = 3,
    theta: int = 30_000,
    delta_fraction: float = 0.01,
    seed: int = 7,
    repeats: int = 3,
    quick: bool = False,
) -> dict:
    """Repair-vs-cold timings plus the KS and zero-dirty checks."""
    if quick:
        n, theta, repeats = 1_500, 4_000, 1
    entropy = seed

    graph = make_graph(n, degree)
    delta = make_delta(graph, delta_fraction)

    # Warm bank, mutate, repair — repeated on fresh state each time so the
    # measured repair is always delta -> repair on an untouched warm pool.
    repair_seconds = []
    repair_stats = None
    for _ in range(repeats):
        warm_graph = make_graph(n, degree)
        warm = make_bank(warm_graph, entropy)
        warm.ensure(theta)
        touched = warm_graph.apply_delta(delta)
        start = time.perf_counter()
        repair_stats = warm.repair(touched)
        repair_seconds.append(time.perf_counter() - start)
    repaired_sizes = np.diff(warm.pool.rr_indptr)

    # Cold baseline: regenerate the full pool on the mutated graph.
    cold_seconds = []
    for _ in range(repeats):
        cold_graph = make_graph(n, degree)
        cold_graph.apply_delta(delta)
        cold = make_bank(cold_graph, entropy)
        start = time.perf_counter()
        cold.ensure(theta)
        cold_seconds.append(time.perf_counter() - start)

    # Independent sample for the KS check: different entropy, same graph.
    ks_graph = make_graph(n, degree)
    ks_graph.apply_delta(delta)
    independent = make_bank(ks_graph, entropy + 1)
    independent.ensure(theta)
    ks = ks_two_sample(repaired_sizes, np.diff(independent.pool.rr_indptr))

    zero_dirty = _zero_dirty_check(n, min(theta, 2_000), entropy + 2)

    t_repair = min(repair_seconds)
    t_cold = min(cold_seconds)
    return {
        "benchmark": "dynamic",
        "quick": quick,
        "graph": {"model": "pa+wc", "n": graph.n, "m": graph.m},
        "theta": theta,
        "seed": seed,
        "delta": {
            "fraction_of_m": delta_fraction,
            "inserts": int(len(delta.insert_src)),
            "deletes": int(len(delta.delete_src)),
            "updates": int(len(delta.update_src)),
            "touched_nodes": int(len(delta.touched_nodes())),
        },
        "repair": {
            "wall_seconds": round(t_repair, 6),
            "num_dirty": int(repair_stats["num_dirty"]),
            "dirty_fraction": round(repair_stats["dirty_fraction"], 6),
        },
        "cold": {"wall_seconds": round(t_cold, 6)},
        "repair_speedup": round(t_cold / t_repair, 4),
        "ks": ks,
        "zero_dirty": zero_dirty,
    }


def write_report(report: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graph; for CI smoke runs")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--theta", type=int, default=30_000,
                        help="warm-pool size (RR sets)")
    parser.add_argument("--delta-fraction", type=float, default=0.01,
                        help="fraction of edges changed by the delta")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (minimum is reported)")
    parser.add_argument("--output", type=Path, default=None,
                        help="result file (default: BENCH_dynamic.json, or "
                             "BENCH_dynamic_quick.json with --quick)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH

    report = run_benchmark(
        n=args.n, theta=args.theta, delta_fraction=args.delta_fraction,
        seed=args.seed, repeats=args.repeats, quick=args.quick,
    )
    path = write_report(report, args.output)
    repair, cold = report["repair"], report["cold"]
    print(
        f"delta: {report['delta']['inserts']} ins / "
        f"{report['delta']['deletes']} del / "
        f"{report['delta']['updates']} upd "
        f"({report['delta']['fraction_of_m'] * 100:.1f}% of m)"
    )
    print(
        f"repair: {repair['wall_seconds']:.3f}s "
        f"({repair['num_dirty']:,} dirty of {report['theta']:,}, "
        f"{repair['dirty_fraction'] * 100:.1f}%)"
    )
    print(f"cold:   {cold['wall_seconds']:.3f}s")
    print(f"repair speedup: {report['repair_speedup']:.2f}x")
    ks = report["ks"]
    print(
        f"KS: D={ks['statistic']:.4f} vs critical {ks['critical']:.4f} "
        f"(alpha={ks['alpha']}) -> {'pass' if ks['pass'] else 'FAIL'}"
    )
    print(f"zero-dirty bit-identity: {report['zero_dirty']}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
