"""Sharded worker runtime benchmark: warm ShardPool vs. per-call fan-out.

Three measurements, written to ``benchmarks/results/BENCH_sharded.json``:

* **warm-vs-fanout** — repeated generate requests against a persistent
  :class:`~repro.rrsets.shardpool.ShardPool` (graph shipped once via
  shared memory, sampler tables resident) versus
  :func:`~repro.rrsets.fanout.generate_multiprocess`, which spawns
  workers, pickles the graph, and rebuilds sampler tables on *every*
  call.  Equal worker counts; the speedup is per-call overhead
  elimination, not parallelism.
* **large-run** — an end-to-end ``opim-c-fast`` query on an n=10^6 WC
  Erdős–Rényi graph through the shard runtime with spill-to-disk,
  reporting wall time and the peak RSS across the parent and every
  worker (the stated memory cap the spill tier must respect).
* **realloc** — the power-of-two pool growth policy versus a simulated
  exact-size growth, counting buffer reallocations per appended set.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded.py            # full
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick    # CI smoke

``--quick`` shrinks everything so the whole run finishes in well under a
minute and writes ``BENCH_sharded_quick.json`` so a smoke run never
overwrites the committed full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.registry import get_algorithm
from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import wc_weights
from repro.rrsets.collection import RRCollection, _pow2_capacity
from repro.rrsets.fanout import generate_multiprocess, shard_counts
from repro.rrsets.shardpool import ShardPool
from repro.rrsets.subsim import SubsimICGenerator

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sharded.json"
QUICK_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_sharded_quick.json"
)


def _rss_kib(pid: int) -> int:
    """VmRSS of one process in KiB (0 if it vanished)."""
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _pool_rss_mib(pool: ShardPool) -> float:
    """Parent + all shard workers, in MiB."""
    pids = [os.getpid()] + [p.pid for p in pool._procs if p is not None]
    return sum(_rss_kib(pid) for pid in pids) / 1024.0


def bench_warm_vs_fanout(graph, *, requests: int, per_request: int,
                         workers: int) -> dict:
    """Identical request sequences through both runtimes."""
    batch = 32

    start = time.perf_counter()
    fanout_pool = RRCollection(graph.n)
    for req in range(requests):
        gen = SubsimICGenerator(graph)
        gen.batch_size = batch
        nodes, sizes = generate_multiprocess(
            gen, per_request, np.random.default_rng(req), workers=workers
        )
        fanout_pool.add_batch(nodes, sizes)
    fanout_s = time.perf_counter() - start

    start = time.perf_counter()
    with ShardPool(graph, workers) as pool:
        counts = shard_counts(per_request, workers)
        for req in range(requests):
            seeds = [
                np.random.SeedSequence(req, spawn_key=(0, rank, 0))
                for rank in range(workers)
            ]
            pool.generate(
                "bench", counts, seeds,
                generator_cls=SubsimICGenerator,
                batched_mode=None, batch_size=batch,
            )
        total = sum(s["bench"]["num_rr"] for s in pool.stats())
    warm_s = time.perf_counter() - start

    return {
        "requests": requests,
        "rr_sets_per_request": per_request,
        "workers": workers,
        "fanout_seconds": round(fanout_s, 4),
        "shardpool_seconds": round(warm_s, 4),
        "speedup": round(fanout_s / warm_s, 2) if warm_s else float("inf"),
        "shardpool_rr_sets": total,
        "fanout_rr_sets": fanout_pool.num_rr,
    }


def bench_large_run(*, n: int, degree: float, k: int, eps: float,
                    shards: int, spill_dir: str) -> dict:
    """One end-to-end sharded query at scale, with RSS tracking."""
    build_start = time.perf_counter()
    graph = wc_weights(erdos_renyi(n, degree, seed=1))
    build_s = time.perf_counter() - build_start

    pool = ShardPool(graph, shards, spill_dir=spill_dir)
    peak_rss = _pool_rss_mib(pool)
    try:
        algo = get_algorithm("opim-c-fast", graph)
        start = time.perf_counter()
        result = algo.run(k, eps=eps, seed=7, shards=pool, batch_size=256)
        run_s = time.perf_counter() - start
        peak_rss = max(peak_rss, _pool_rss_mib(pool))
        spilled = pool.spill()
        after_spill_rss = _pool_rss_mib(pool)
        stats = pool.stats()
        resident_pool_bytes = sum(
            r["nbytes"] for s in stats for r in s.values()
        )
    finally:
        pool.close()

    return {
        "n": n,
        "avg_degree": degree,
        "weights": "wc",
        "k": k,
        "eps": eps,
        "shards": shards,
        "graph_build_seconds": round(build_s, 2),
        "run_seconds": round(run_s, 2),
        "status": result.status,
        "num_rr_sets": result.num_rr_sets,
        "average_rr_size": round(result.average_rr_size, 2),
        "peak_rss_mib": round(peak_rss, 1),
        "rss_after_spill_mib": round(after_spill_rss, 1),
        "resident_pool_bytes_after_spill": int(resident_pool_bytes),
        "spill_files": sum(len(s) for s in spilled if s),
    }


def bench_realloc(*, appends: int) -> dict:
    """Pow2 growth vs. simulated exact-size growth, reallocs per append."""
    rr = np.arange(8, dtype=np.int64)

    coll = RRCollection(64)
    start = time.perf_counter()
    for _ in range(appends):
        coll.add(rr)
    pow2_s = time.perf_counter() - start
    pow2_reallocs = coll.realloc_count

    # Exact-size policy: what the pool did before power-of-two growth —
    # every append that outgrows the buffer pays a full copy.
    start = time.perf_counter()
    nodes = np.empty(0, dtype=np.int64)
    indptr = np.zeros(1, dtype=np.int64)
    exact_reallocs = 0
    for i in range(appends):
        grown = np.empty(len(nodes) + len(rr), dtype=np.int64)
        grown[: len(nodes)] = nodes
        grown[len(nodes):] = rr
        nodes = grown
        new_indptr = np.empty(len(indptr) + 1, dtype=np.int64)
        new_indptr[: len(indptr)] = indptr
        new_indptr[-1] = len(nodes)
        indptr = new_indptr
        exact_reallocs += 2
    exact_s = time.perf_counter() - start

    return {
        "appends": appends,
        "pow2_reallocs": int(pow2_reallocs),
        "pow2_seconds": round(pow2_s, 4),
        "exact_reallocs": int(exact_reallocs),
        "exact_seconds": round(exact_s, 4),
        "final_capacity": int(_pow2_capacity(coll.total_size, 1024)),
        "speedup": round(exact_s / pow2_s, 2) if pow2_s else float("inf"),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: tiny sizes, separate results file")
    parser.add_argument(
        "--spill-dir", default=None,
        help="spill directory for the large run (default: a fresh tempdir)",
    )
    args = parser.parse_args()
    if args.spill_dir is None:
        args.spill_dir = tempfile.mkdtemp(prefix="bench_sharded_spill_")

    if args.quick:
        warm_args = dict(requests=4, per_request=400, workers=2)
        large_args = dict(n=20_000, degree=4.0, k=10, eps=0.5, shards=2)
        realloc_appends = 20_000
    else:
        # Many modest requests — the serving pattern the warm pool exists
        # for; each fanout call re-pays spawn + graph pickle + sampler
        # rebuild, the warm pool pays them once at spawn.
        warm_args = dict(requests=24, per_request=250, workers=2)
        large_args = dict(n=1_000_000, degree=4.0, k=20, eps=0.5, shards=4)
        realloc_appends = 200_000

    graph = wc_weights(erdos_renyi(20_000 if args.quick else 100_000,
                                   4.0, seed=3))
    print("warm-vs-fanout ...", flush=True)
    warm = bench_warm_vs_fanout(graph, **warm_args)
    print(json.dumps(warm, indent=2), flush=True)

    print("large-run ...", flush=True)
    os.makedirs(args.spill_dir, exist_ok=True)
    large = bench_large_run(spill_dir=args.spill_dir, **large_args)
    print(json.dumps(large, indent=2), flush=True)

    print("realloc ...", flush=True)
    realloc = bench_realloc(appends=realloc_appends)
    print(json.dumps(realloc, indent=2), flush=True)

    payload = {
        "benchmark": "sharded-worker-runtime",
        "quick": bool(args.quick),
        "warm_vs_fanout": warm,
        "large_run": large,
        "realloc": realloc,
    }
    path = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
