"""Session benchmark: cross-query RR-set reuse vs. cold per-query runs.

Serves a sequence of ``maximize(k)`` queries twice — once through a shared
:class:`~repro.engine.session.QuerySession` (warm: later queries select over
the banks earlier queries filled) and once as independent cold runs — and
reports wall-clock plus generated/reused RR-set counts per query.  Results
go to ``benchmarks/results/BENCH_session.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_session.py            # full (n=10^4)
    PYTHONPATH=src python benchmarks/bench_session.py --quick    # CI smoke

``--quick`` shrinks the graph so the whole run finishes in seconds; quick
results carry ``"quick": true`` and are written to
``BENCH_session_quick.json`` so a smoke run never overwrites the committed
full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.engine.session import QuerySession
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_session.json"
#: ``--quick`` runs land here so a CI smoke run can never clobber the
#: committed full-size numbers in BENCH_session.json
QUICK_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_session_quick.json"
)


def _timed_query(session: QuerySession, k: int, eps: float) -> dict:
    start = time.perf_counter()
    result = session.maximize(k, eps=eps)
    elapsed = time.perf_counter() - start
    block = result.extras["session"]
    return {
        "k": k,
        "wall_seconds": round(elapsed, 6),
        "num_rr_sets": int(result.num_rr_sets),
        "sets_generated": int(block["sets_generated"]),
        "sets_reused": int(block["sets_reused"]),
    }


def run_benchmark(
    n: int = 10_000,
    degree: int = 10,
    algorithm: str = "subsim",
    ks: tuple = (50, 20, 10),
    eps: float = 0.3,
    seed: int = 7,
    quick: bool = False,
) -> dict:
    """Warm session vs. cold per-query runs over the same query sequence."""
    if quick:
        n = 1_500
    graph = wc_weights(
        preferential_attachment(n, degree, seed=1, reciprocal=0.3)
    )

    warm_session = QuerySession(graph, algorithm, seed=seed)
    warm = [_timed_query(warm_session, k, eps) for k in ks]

    # Cold baseline: each query on a fresh session (same per-role streams),
    # so per-query draws are identical and only the reuse differs.
    cold = []
    for index, k in enumerate(ks):
        session = QuerySession(graph, algorithm, seed=seed)
        session.queries_served = index
        cold.append(_timed_query(session, k, eps))

    second_reduction = 0.0
    if cold[1]["sets_generated"]:
        second_reduction = 1.0 - (
            warm[1]["sets_generated"] / cold[1]["sets_generated"]
        )
    return {
        "benchmark": "session",
        "quick": quick,
        "graph": {"model": "pa+wc", "n": graph.n, "m": graph.m},
        "algorithm": algorithm,
        "ks": list(ks),
        "eps": eps,
        "seed": seed,
        "warm": warm,
        "cold": cold,
        "warm_total_generated": sum(q["sets_generated"] for q in warm),
        "cold_total_generated": sum(q["sets_generated"] for q in cold),
        "second_query_reduction": round(second_reduction, 4),
    }


def write_report(report: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graph; for CI smoke runs")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--algorithm", default="subsim")
    parser.add_argument("--ks", default="50,20,10",
                        help="comma-separated query sizes, served in order")
    parser.add_argument("--eps", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=None,
                        help="result file (default: BENCH_session.json, or "
                             "BENCH_session_quick.json with --quick)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH

    ks = tuple(int(s) for s in args.ks.split(","))
    report = run_benchmark(
        n=args.n, algorithm=args.algorithm, ks=ks, eps=args.eps,
        seed=args.seed, quick=args.quick,
    )
    path = write_report(report, args.output)
    for label in ("warm", "cold"):
        print(f"{label}:")
        for row in report[label]:
            print(
                f"  k={row['k']:<4d} {row['wall_seconds']:.3f}s  "
                f"generated {row['sets_generated']:>8,}  "
                f"reused {row['sets_reused']:>8,}"
            )
    print(
        f"second-query generation reduced by "
        f"{report['second_query_reduction'] * 100:.1f}% warm vs cold"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
