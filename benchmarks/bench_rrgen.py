"""RR-set generation benchmark: sequential vs. batched vs. fan-out.

Measures wall-clock time, edge throughput, and pool memory for growing a
fixed number of RR sets on a WC-weighted preferential-attachment graph, and
writes machine-readable results to ``benchmarks/results/BENCH_rrgen.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_rrgen.py            # full (n=10^4)
    PYTHONPATH=src python benchmarks/bench_rrgen.py --quick    # CI smoke

or through pytest via ``benchmarks/test_samplers_micro.py``.  ``--quick``
shrinks the graph and sample count so the whole run finishes in seconds;
quick results carry ``"quick": true`` and are written to
``BENCH_rrgen_quick.json`` so a smoke run never overwrites the committed
full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_rrgen.json"
#: ``--quick`` runs land here so a CI smoke run can never clobber the
#: committed full-size numbers in BENCH_rrgen.json
QUICK_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_rrgen_quick.json"

GENERATORS = {
    "vanilla": VanillaICGenerator,
    "subsim": SubsimICGenerator,
}


def _measure(graph, cls, count, seed, batch_size=1, workers=1):
    """Grow ``count`` RR sets, returning timing + counter telemetry."""
    gen = cls(graph)
    gen.batch_size = batch_size
    gen.workers = workers
    pool = RRCollection(graph.n)
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    pool.extend(count, gen, rng)
    elapsed = time.perf_counter() - start
    counters = gen.counters
    return {
        "mode": (
            "sequential" if batch_size == 1 and workers == 1
            else f"batched(b={batch_size})" if workers == 1
            else f"fanout(b={batch_size},w={workers})"
        ),
        "batch_size": batch_size,
        "workers": workers,
        "rr_sets": int(pool.num_rr),
        "wall_seconds": round(elapsed, 6),
        "edges_examined": int(counters.edges_examined),
        "edges_per_second": round(counters.edges_examined / max(elapsed, 1e-9)),
        "avg_rr_size": round(float(pool.set_sizes().mean()), 3),
        "pool_bytes": int(pool.nbytes()),
    }


def run_benchmark(
    n: int = 10_000,
    degree: int = 10,
    count: int = 3_000,
    batch_size: int = 512,
    workers: int = 2,
    seed: int = 7,
    quick: bool = False,
    include_fanout: bool = True,
) -> dict:
    """Benchmark every generator in sequential/batched(/fan-out) modes."""
    if quick:
        n, count, batch_size = 1_500, 400, 128
    graph = wc_weights(
        preferential_attachment(n, degree, seed=1, reciprocal=0.3)
    )
    report = {
        "benchmark": "rrgen",
        "quick": quick,
        "graph": {"model": "pa+wc", "n": graph.n, "m": graph.m},
        "count": count,
        "seed": seed,
        "generators": {},
    }
    for name, cls in GENERATORS.items():
        rows = [
            _measure(graph, cls, count, seed),
            _measure(graph, cls, count, seed, batch_size=batch_size),
        ]
        if include_fanout:
            rows.append(
                _measure(graph, cls, count, seed,
                         batch_size=batch_size, workers=workers)
            )
        sequential, batched = rows[0], rows[1]
        report["generators"][name] = {
            "runs": rows,
            "batched_speedup": round(
                sequential["wall_seconds"] / max(batched["wall_seconds"], 1e-9),
                2,
            ),
        }
    return report


def write_report(report: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graph + few sets; for CI smoke runs")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--count", type=int, default=3_000)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--no-fanout", action="store_true",
                        help="skip the multiprocess measurement")
    parser.add_argument("--output", type=Path, default=None,
                        help="result file (default: BENCH_rrgen.json, or "
                             "BENCH_rrgen_quick.json with --quick)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH

    report = run_benchmark(
        n=args.n, count=args.count, batch_size=args.batch_size,
        workers=args.workers, quick=args.quick,
        include_fanout=not args.no_fanout,
    )
    path = write_report(report, args.output)
    for name, entry in report["generators"].items():
        print(f"{name}: batched speedup {entry['batched_speedup']}x")
        for row in entry["runs"]:
            print(
                f"  {row['mode']:24s} {row['wall_seconds']:.3f}s  "
                f"{row['edges_per_second']:>12,} edges/s  "
                f"pool {row['pool_bytes'] / 1e6:.1f} MB"
            )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
