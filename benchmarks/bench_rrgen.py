"""RR-set generation benchmark: sequential vs. batched vs. fan-out.

Measures wall-clock time, edge throughput, and pool memory for growing a
fixed number of RR sets on a weighted preferential-attachment graph, and
writes machine-readable results to ``benchmarks/results/BENCH_rrgen.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_rrgen.py            # full (n=10^4)
    PYTHONPATH=src python benchmarks/bench_rrgen.py --quick    # CI smoke

``--weights {wc,skewed,uniform}`` selects the edge-probability scheme and
``--model {ic,lt}`` the diffusion model (``lt`` applies LT normalisation
and benchmarks the backward live-edge walk).  ``--suite generalw`` runs
the general-weight fast-path comparison — batched bucket-skipping SUBSIM
on skewed weights plus the batched LT kernel — and writes
``BENCH_generalw.json``.

``--quick`` shrinks the graph and sample count so the whole run finishes
in seconds; quick results carry ``"quick": true`` and are written to
``*_quick.json`` files so a smoke run never overwrites the committed
full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    uniform_weights,
    wc_weights,
)
from repro.rrsets.collection import RRCollection
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_rrgen.json"
#: ``--quick`` runs land here so a CI smoke run can never clobber the
#: committed full-size numbers in BENCH_rrgen.json
QUICK_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_rrgen_quick.json"
GENERALW_PATH = Path(__file__).parent / "results" / "BENCH_generalw.json"
GENERALW_QUICK_PATH = (
    Path(__file__).parent / "results" / "BENCH_generalw_quick.json"
)

GENERATORS = {
    "vanilla": VanillaICGenerator,
    "subsim": SubsimICGenerator,
}

WEIGHT_SCHEMES = ("wc", "skewed", "uniform")


def build_graph(n: int, degree: int, weights: str = "wc",
                model: str = "ic", seed: int = 1):
    """The benchmark graph: a PA digraph under the chosen weight scheme."""
    graph = preferential_attachment(n, degree, seed=seed, reciprocal=0.3)
    if weights == "wc":
        graph = wc_weights(graph)
    elif weights == "skewed":
        graph = exponential_weights(graph, seed=2)
    elif weights == "uniform":
        graph = uniform_weights(graph, 0.02)
    else:
        raise ValueError(
            f"weights must be one of {WEIGHT_SCHEMES}, got {weights!r}"
        )
    if model == "lt":
        graph = lt_normalized_weights(graph)
    return graph


def _measure(graph, cls, count, seed, batch_size=1, workers=1):
    """Grow ``count`` RR sets, returning timing + counter telemetry."""
    gen = cls(graph)
    gen.batch_size = batch_size
    gen.workers = workers
    pool = RRCollection(graph.n)
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    pool.extend(count, gen, rng)
    elapsed = time.perf_counter() - start
    counters = gen.counters
    return {
        "mode": (
            "sequential" if batch_size == 1 and workers == 1
            else f"batched(b={batch_size})" if workers == 1
            else f"fanout(b={batch_size},w={workers})"
        ),
        "batch_size": batch_size,
        "workers": workers,
        "rr_sets": int(pool.num_rr),
        "wall_seconds": round(elapsed, 6),
        "edges_examined": int(counters.edges_examined),
        "rng_draws": int(counters.rng_draws),
        "edges_per_second": round(counters.edges_examined / max(elapsed, 1e-9)),
        "avg_rr_size": round(float(pool.set_sizes().mean()), 3),
        "pool_bytes": int(pool.nbytes()),
    }


def run_benchmark(
    n: int = 10_000,
    degree: int = 10,
    count: int = 3_000,
    batch_size: int = 512,
    workers: int = 2,
    seed: int = 7,
    quick: bool = False,
    include_fanout: bool = True,
    weights: str = "wc",
    model: str = "ic",
) -> dict:
    """Benchmark every generator in sequential/batched(/fan-out) modes."""
    if quick:
        n, count, batch_size = 1_500, 400, 128
    graph = build_graph(n, degree, weights=weights, model=model)
    generators = {"lt": LTGenerator} if model == "lt" else GENERATORS
    report = {
        "benchmark": "rrgen",
        "quick": quick,
        "graph": {
            "model": f"pa+{weights}" + ("+lt" if model == "lt" else ""),
            "n": graph.n,
            "m": graph.m,
        },
        "count": count,
        "seed": seed,
        "generators": {},
    }
    for name, cls in generators.items():
        rows = [
            _measure(graph, cls, count, seed),
            _measure(graph, cls, count, seed, batch_size=batch_size),
        ]
        if include_fanout:
            rows.append(
                _measure(graph, cls, count, seed,
                         batch_size=batch_size, workers=workers)
            )
        sequential, batched = rows[0], rows[1]
        report["generators"][name] = {
            "runs": rows,
            "batched_speedup": round(
                sequential["wall_seconds"] / max(batched["wall_seconds"], 1e-9),
                2,
            ),
        }
    return report


def run_generalw_benchmark(
    n: int = 10_000,
    degree: int = 10,
    count: int = 3_000,
    batch_size: int = 4_096,
    workers: int = 2,
    seed: int = 7,
    quick: bool = False,
    include_fanout: bool = True,
) -> dict:
    """The general-weight fast-path comparison.

    Two workloads on the n=10^4 PA graph: the bucket-skipping SUBSIM
    kernel on skewed (exponential) weights, and the batched LT kernel on
    LT-normalised WC weights — each sequential vs. batched (vs. fan-out),
    with per-mode ``edges_examined`` / ``rng_draws`` telemetry.

    The per-graph sampler tables (uniform rates, sorted segments, LT alias
    tables) are built once and cached on the graph, shared by every
    generator instance and query; their one-time cost is timed separately
    as ``preprocess_seconds`` so the kernel rows measure steady-state
    throughput.  Larger batches amortise the per-level dispatch better,
    hence the 4096 default here (one batch per run at the
    default count) vs. the rrgen suite's 512.
    """
    from repro.sampling.precompute import (
        lt_alias_tables,
        sorted_segments,
        uniform_arrays,
    )

    if quick:
        n, count, batch_size = 1_500, 400, 128

    def prep_ic(graph):
        uniform_arrays(graph)
        sorted_segments(graph)

    workloads = {
        "subsim-skewed": (
            build_graph(n, degree, weights="skewed"),
            SubsimICGenerator,
            prep_ic,
        ),
        "lt": (
            build_graph(n, degree, weights="wc", model="lt"),
            LTGenerator,
            lt_alias_tables,
        ),
    }
    report = {
        "benchmark": "generalw",
        "quick": quick,
        "count": count,
        "seed": seed,
        "workloads": {},
    }
    for name, (graph, cls, preprocess) in workloads.items():
        t0 = time.perf_counter()
        preprocess(graph)
        preprocess_seconds = time.perf_counter() - t0
        rows = [
            _measure(graph, cls, count, seed),
            _measure(graph, cls, count, seed, batch_size=batch_size),
        ]
        if include_fanout:
            rows.append(
                _measure(graph, cls, count, seed,
                         batch_size=batch_size, workers=workers)
            )
        sequential, batched = rows[0], rows[1]
        report["workloads"][name] = {
            "graph": {"n": graph.n, "m": graph.m,
                      "weight_model": graph.weight_model},
            "preprocess_seconds": round(preprocess_seconds, 6),
            "runs": rows,
            "batched_speedup": round(
                sequential["wall_seconds"] / max(batched["wall_seconds"], 1e-9),
                2,
            ),
        }
    return report


def write_report(report: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graph + few sets; for CI smoke runs")
    parser.add_argument("--suite", default="rrgen",
                        choices=["rrgen", "generalw"],
                        help="rrgen: per-generator modes on one graph; "
                             "generalw: skewed-SUBSIM + LT fast paths")
    parser.add_argument("--weights", default="wc", choices=WEIGHT_SCHEMES,
                        help="edge-probability scheme (rrgen suite)")
    parser.add_argument("--model", default="ic", choices=["ic", "lt"],
                        help="diffusion model; lt normalises weights and "
                             "benchmarks the LT walk (rrgen suite)")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--count", type=int, default=3_000)
    parser.add_argument("--batch-size", type=int, default=None,
                        help="sets per vectorized batch (default: 512 for "
                             "rrgen, 4096 for generalw)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--no-fanout", action="store_true",
                        help="skip the multiprocess measurement")
    parser.add_argument("--output", type=Path, default=None,
                        help="result file (default: BENCH_<suite>.json, or "
                             "BENCH_<suite>_quick.json with --quick)")
    args = parser.parse_args(argv)
    if args.batch_size is None:
        args.batch_size = 4_096 if args.suite == "generalw" else 512
    if args.output is None:
        if args.suite == "generalw":
            args.output = GENERALW_QUICK_PATH if args.quick else GENERALW_PATH
        else:
            args.output = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH

    if args.suite == "generalw":
        report = run_generalw_benchmark(
            n=args.n, count=args.count, batch_size=args.batch_size,
            workers=args.workers, quick=args.quick,
            include_fanout=not args.no_fanout,
        )
        entries = report["workloads"]
    else:
        report = run_benchmark(
            n=args.n, count=args.count, batch_size=args.batch_size,
            workers=args.workers, quick=args.quick,
            include_fanout=not args.no_fanout,
            weights=args.weights, model=args.model,
        )
        entries = report["generators"]
    path = write_report(report, args.output)
    for name, entry in entries.items():
        print(f"{name}: batched speedup {entry['batched_speedup']}x")
        for row in entry["runs"]:
            print(
                f"  {row['mode']:24s} {row['wall_seconds']:.3f}s  "
                f"{row['edges_per_second']:>12,} edges/s  "
                f"pool {row['pool_bytes'] / 1e6:.1f} MB"
            )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
