"""Figure 5: expected influence vs k under the high-influence setting.

Paper shape: the expected influence of HIST's seeds rises significantly as
k grows from 1 to 2000 (scaled here), i.e. the speedups of Figure 4 are not
bought with seed quality.
"""

from conftest import write_result

from repro.experiments.figures import figure5_rows
from repro.experiments.reporting import render_table

K_VALUES = (1, 5, 10, 25, 50, 100)


def test_fig5_expected_influence(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure5_rows,
        kwargs={
            "dataset": "pokec-like",
            "k_values": K_VALUES,
            "eps": 0.3,
            "scale": bench_scale,
            "seed": bench_seed,
            "target_size_fraction": 0.2,
            "num_simulations": 150,
        },
        rounds=1,
        iterations=1,
    )
    spreads = [row["spread"] for row in rows]
    # Influence grows with k...
    assert spreads[-1] > spreads[0]
    # ...monotonically up to Monte-Carlo noise (5% slack).
    for earlier, later in zip(spreads, spreads[1:]):
        assert later >= 0.95 * earlier
    # High-influence regime: even one seed reaches a sizeable fraction.
    assert rows[0]["spread_fraction_of_n"] > 0.05

    write_result(
        results_dir,
        "fig5_expected_influence",
        render_table(
            rows,
            title=(
                "Figure 5 — expected influence vs k (hist+subsim, "
                f"scale={bench_scale})"
            ),
        ),
    )
