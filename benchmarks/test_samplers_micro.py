"""Micro-benchmarks for the subset-sampling primitives.

Statistical timings (pytest-benchmark rounds) of one draw from each
sampler over a representative skewed probability vector, quantifying the
constants behind Section 3's O(.) claims in the interpreter.
"""

import numpy as np
import pytest

from repro.sampling.alias import AliasTable
from repro.sampling.bucket import BucketSampler, IndexedBucketSampler
from repro.sampling.geometric import sample_equal_probability
from repro.sampling.sorted_sampler import sample_sorted_descending


@pytest.fixture(scope="module")
def skewed_probs():
    rng = np.random.default_rng(0)
    probs = rng.exponential(0.02, size=256)
    probs = np.clip(probs, 0.0, 1.0)
    return np.sort(probs)[::-1]


def test_micro_equal_probability(benchmark):
    rng = np.random.default_rng(1)
    benchmark(sample_equal_probability, 256, 1 / 256, rng)


def test_micro_naive_bernoulli_reference(benchmark, skewed_probs):
    """The vanilla baseline: one coin per element, for contrast."""
    rng = np.random.default_rng(1)

    def naive():
        return [i for i, p in enumerate(skewed_probs) if rng.random() < p]

    benchmark(naive)


def test_micro_sorted_sampler(benchmark, skewed_probs):
    rng = np.random.default_rng(1)
    benchmark(sample_sorted_descending, skewed_probs, rng)


def test_micro_bucket_sampler(benchmark, skewed_probs):
    sampler = BucketSampler(skewed_probs)
    rng = np.random.default_rng(1)
    benchmark(sampler.sample, rng)


def test_micro_indexed_bucket_sampler(benchmark, skewed_probs):
    sampler = IndexedBucketSampler(skewed_probs)
    rng = np.random.default_rng(1)
    benchmark(sampler.sample, rng)


def test_micro_alias_table(benchmark, skewed_probs):
    table = AliasTable(skewed_probs + 1e-12)
    rng = np.random.default_rng(1)
    benchmark(table.sample, rng)


def test_rrgen_batched_speedup(results_dir):
    """Batched engine vs. sequential on the WC n=10^4 workload.

    Records the full comparison to ``results/BENCH_rrgen.json`` and asserts
    the headline claim: the vectorized engine grows RR sets at least 5x
    faster than the per-set sequential path for the vanilla IC sampler.
    """
    from bench_rrgen import run_benchmark, write_report

    report = run_benchmark(include_fanout=False)
    write_report(report)
    speedup = report["generators"]["vanilla"]["batched_speedup"]
    print(f"\nvanilla batched speedup: {speedup}x")
    assert speedup >= 5.0, (
        f"batched engine only {speedup}x faster than sequential "
        "(expected >= 5x on the WC n=10^4 workload)"
    )
