"""Serving benchmark: warm vs. cold query throughput and overload shedding.

Boots an in-process :class:`~repro.serving.server.QueryServer` and drives
it over HTTP three ways:

* **cold pass** — every query arrives from a distinct tenant, so each one
  builds a fresh session and pays full RR-set generation;
* **warm pass** — the same tenant repeats the query sequence, so later
  queries select over banks the earlier ones filled;
* **overload flood** — a one-worker server with a short queue takes a
  burst of concurrent requests and must shed the excess with clean 429s.

Results go to ``benchmarks/results/BENCH_serving.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full (n=10^4)
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # CI smoke

``--quick`` shrinks the graph so the whole run finishes in seconds; quick
results carry ``"quick": true`` and are written to
``BENCH_serving_quick.json`` so a smoke run never overwrites the committed
full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.serving import GraphRegistry, QueryServer, ServeClient, ServerConfig

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"
#: ``--quick`` runs land here so a CI smoke run can never clobber the
#: committed full-size numbers in BENCH_serving.json
QUICK_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_serving_quick.json"
)


def _timed_pass(client: ServeClient, queries: list) -> dict:
    """Serve ``(tenant, k)`` queries in order; report wall time and reuse."""
    rows = []
    start = time.perf_counter()
    for tenant, k in queries:
        status, payload = client.query("bench", k, tenant=tenant)
        assert status == 200 and payload["status"] == "complete", payload
        rows.append(
            {
                "tenant": tenant,
                "k": k,
                "sets_generated": payload["session"]["sets_generated"],
                "sets_reused": payload["session"]["sets_reused"],
            }
        )
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": round(elapsed, 6),
        "qps": round(len(queries) / elapsed, 4),
        "total_generated": sum(r["sets_generated"] for r in rows),
        "total_reused": sum(r["sets_reused"] for r in rows),
        "queries": rows,
    }


def _flood(address: tuple, graph_name: str, k: int, clients: int) -> dict:
    """Hit the server with ``clients`` concurrent queries; tally outcomes."""
    statuses = []
    lock = threading.Lock()

    def one(index: int) -> None:
        status, _ = ServeClient(*address).query(
            graph_name, k, tenant=f"flood-{index}"
        )
        with lock:
            statuses.append(status)

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    served = statuses.count(200)
    shed = statuses.count(429)
    return {
        "clients": clients,
        "wall_seconds": round(elapsed, 6),
        "served": served,
        "shed": shed,
        "shed_rate": round(shed / clients, 4),
    }


def run_benchmark(
    n: int = 10_000,
    degree: int = 10,
    algorithm: str = "subsim",
    ks: tuple = (50, 20, 10),
    eps: float = 0.3,
    seed: int = 7,
    flood_clients: int = 24,
    quick: bool = False,
) -> dict:
    """Warm vs. cold qps over HTTP, then an overload flood on one worker."""
    if quick:
        n = 1_500
        flood_clients = 8
    graph = wc_weights(
        preferential_attachment(n, degree, seed=1, reciprocal=0.3)
    )
    registry = GraphRegistry()
    registry.add_graph("bench", graph)
    config = ServerConfig(
        algorithm=algorithm, eps=eps, seed=seed, workers=2, max_pending=64
    )
    with QueryServer(config, registry=registry) as server:
        client = ServeClient(*server.address, timeout=600.0)
        # Cold: distinct tenants, so every query builds a fresh session.
        cold = _timed_pass(
            client, [(f"cold-{i}", k) for i, k in enumerate(ks)]
        )
        # Warm: one tenant replays the sequence over its now-filled banks.
        warm = _timed_pass(client, [("warm", k) for k in ks])

    # Overload: one worker, short queue, concurrent burst.  The server
    # must serve what it can and shed the rest with clean 429s.
    overload_config = ServerConfig(
        algorithm=algorithm, eps=eps, seed=seed, workers=1, max_pending=2
    )
    with QueryServer(overload_config, registry=registry) as server:
        overload = _flood(server.address, "bench", min(ks), flood_clients)
        shed_counters = server.metrics_snapshot()["counters"]
    assert overload["served"] + overload["shed"] == overload["clients"]

    return {
        "benchmark": "serving",
        "quick": quick,
        "graph": {"model": "pa+wc", "n": graph.n, "m": graph.m},
        "algorithm": algorithm,
        "ks": list(ks),
        "eps": eps,
        "seed": seed,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(cold["wall_seconds"] / warm["wall_seconds"], 4),
        "overload": overload,
        "overload_counters": {
            key: value
            for key, value in shed_counters.items()
            if key.startswith("serving.")
        },
    }


def write_report(report: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graph; for CI smoke runs")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--algorithm", default="subsim")
    parser.add_argument("--ks", default="50,20,10",
                        help="comma-separated query sizes, served in order")
    parser.add_argument("--eps", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--flood-clients", type=int, default=24,
                        help="concurrent clients in the overload burst")
    parser.add_argument("--output", type=Path, default=None,
                        help="result file (default: BENCH_serving.json, or "
                             "BENCH_serving_quick.json with --quick)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH

    ks = tuple(int(s) for s in args.ks.split(","))
    report = run_benchmark(
        n=args.n, algorithm=args.algorithm, ks=ks, eps=args.eps,
        seed=args.seed, flood_clients=args.flood_clients, quick=args.quick,
    )
    path = write_report(report, args.output)
    for label in ("cold", "warm"):
        block = report[label]
        print(
            f"{label}: {block['wall_seconds']:.3f}s  "
            f"{block['qps']:.2f} qps  "
            f"generated {block['total_generated']:>8,}  "
            f"reused {block['total_reused']:>8,}"
        )
    print(f"warm speedup: {report['warm_speedup']:.2f}x")
    overload = report["overload"]
    print(
        f"overload: {overload['served']} served / {overload['shed']} shed "
        f"of {overload['clients']} "
        f"(shed rate {overload['shed_rate'] * 100:.0f}%)"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
