"""Figure 2: RR-set generation cost under skewed weight distributions.

Paper shape: on exponential and Weibull weights, SUBSIM generates the same
number of RR sets up to 38x / 25x faster than the vanilla generator.  At our
scale we assert a material speedup (>= 2x wall-clock) and an edge-inspection
reduction of at least the average-degree order.
"""

from collections import defaultdict

from conftest import write_result

from repro.experiments.figures import figure2_rows
from repro.experiments.reporting import render_table


def test_fig2_skewed_rr_generation(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure2_rows,
        kwargs={"num_rr": 3000, "scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    grouped = defaultdict(dict)
    for row in rows:
        grouped[(row["dataset"], row["distribution"])][row["generator"]] = row

    for key, generators in grouped.items():
        vanilla = generators["vanilla"]
        subsim = generators["subsim"]
        assert vanilla["runtime_s"] > 2 * subsim["runtime_s"], key
        assert vanilla["edges_examined"] > 5 * subsim["edges_examined"], key
        # Same distribution: average RR size must agree closely.
        assert (
            abs(vanilla["avg_rr_size"] - subsim["avg_rr_size"])
            <= 0.25 * max(vanilla["avg_rr_size"], 1.0)
        ), key

    write_result(
        results_dir,
        "fig2_skewed_rr_cost",
        render_table(
            rows,
            title=(
                "Figure 2 — RR generation cost, skewed weights "
                f"(scale={bench_scale})"
            ),
        ),
    )
