"""Ablations of the design choices DESIGN.md calls out.

Not paper figures, but checks that each design ingredient pulls its weight:

* Algorithm 6's out-degree tie-break vs plain greedy inside HIST.
* Automatic sentinel size b vs a fixed small b.
* The three general-IC samplers (sorted / bucket / indexed) head-to-head.
* Lazy vs exact Eq. 2 upper-bound tracking cost (greedy with and without).
"""

import time
from collections import defaultdict

import numpy as np
from conftest import write_result

from repro.algorithms.hist import HIST
from repro.coverage.greedy import max_coverage_greedy
from repro.experiments.calibration import calibrate_wc_variant
from repro.experiments.reporting import render_table
from repro.experiments.workloads import make_dataset
from repro.estimation.montecarlo import estimate_spread
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator


def _high_influence_graph(scale, seed):
    base = make_dataset("pokec-like", scale=scale, seed=seed)
    _, graph, _ = calibrate_wc_variant(
        base, 0.2 * base.n, num_samples=120, seed=seed
    )
    return graph


def test_ablation_tie_break_and_fixed_b(
    benchmark, results_dir, bench_scale, bench_seed
):
    graph = _high_influence_graph(bench_scale, bench_seed)
    k = 50

    def run_variants():
        rows = []
        variants = (
            ("hist (full)", {}),
            ("no out-degree tie-break", {"use_out_degree_tie_break": False}),
            ("fixed b=1", {"fixed_b": 1}),
            ("fixed b=k//2", {"fixed_b": k // 2}),
        )
        for label, kwargs in variants:
            algo = HIST(graph, VanillaICGenerator, **kwargs)
            res = algo.run(k, eps=0.3, seed=bench_seed)
            spread = estimate_spread(
                graph, res.seeds, num_simulations=100, seed=0
            ).mean
            rows.append(
                {
                    "variant": label,
                    "runtime_s": round(res.runtime_seconds, 3),
                    "b": res.extras["b"],
                    "avg_rr_size": round(res.average_rr_size, 1),
                    "spread": round(spread, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    spreads = [r["spread"] for r in rows]
    # Every ablation keeps the guarantee, so quality stays in a tight band.
    assert max(spreads) <= 1.2 * min(spreads)
    write_result(
        results_dir,
        "ablation_hist_variants",
        render_table(rows, title=f"Ablation — HIST variants, k={k}"),
    )


def test_ablation_general_ic_samplers(
    benchmark, results_dir, bench_scale, bench_seed
):
    from repro.graphs.weights import exponential_weights

    base = make_dataset("pokec-like", scale=bench_scale, seed=bench_seed)
    graph = exponential_weights(base, seed=bench_seed)
    num_rr = 2000

    def run_samplers():
        rows = []
        for mode in ("sorted", "bucket", "indexed"):
            generator = SubsimICGenerator(graph, general_mode=mode)
            rng = np.random.default_rng(bench_seed)
            start = time.perf_counter()
            for _ in range(num_rr):
                generator.generate(rng)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "mode": mode,
                    "runtime_s": round(elapsed, 3),
                    "edges_examined": generator.counters.edges_examined,
                    "avg_rr_size": round(
                        generator.counters.average_size(), 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run_samplers, rounds=1, iterations=1)
    sizes = [r["avg_rr_size"] for r in rows]
    # All three sample the same distribution.
    assert max(sizes) <= 1.25 * max(min(sizes), 0.5)
    write_result(
        results_dir,
        "ablation_general_ic_samplers",
        render_table(rows, title=f"Ablation — general-IC samplers, {num_rr} RR sets"),
    )


def test_ablation_upper_bound_tracking_cost(
    benchmark, results_dir, bench_scale, bench_seed
):
    graph = _high_influence_graph(bench_scale, bench_seed)
    rng = np.random.default_rng(bench_seed)
    pool = RRCollection(graph.n)
    pool.extend(400, SubsimICGenerator(graph), rng)
    k = 50

    def run_both():
        rows = []
        for label, track in (("with Eq.2 bound", True), ("without", False)):
            start = time.perf_counter()
            res = max_coverage_greedy(
                pool, select=k, track_upper_bound=track
            )
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "greedy": label,
                    "runtime_s": round(elapsed, 4),
                    "coverage": res.coverage,
                    "upper_bound": res.upper_bound_coverage,
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Identical selections either way.
    assert rows[0]["coverage"] == rows[1]["coverage"]
    write_result(
        results_dir,
        "ablation_upper_bound_tracking",
        render_table(rows, title="Ablation — Eq. 2 tracking cost in greedy"),
    )
