"""Sketch coverage backend benchmark: memory/accuracy frontier vs exact.

Materialises a huge-theta RR pool on the paper's WC-weighted setting
(n = 10^4 preferential-attachment, theta = 10^6 SUBSIM RR sets) and
compares the two coverage backends selection can run on:

* **exact** — the inverted-CSR index plus the per-node gain vector, the
  structures whose resident bytes dominate memory at production theta;
* **sketch** — per-node HyperLogLog register rows
  (:mod:`repro.coverage.sketch`), ``n * 2^p`` uint8 bytes total, swept
  across the precision ladder ``p in {6, 8, 10, 12}``.

For every rung the benchmark records the coverage-structure bytes, the
selection wall time, and the *exactly evaluated* coverage of the seeds the
sketch picked, so the report is a memory/accuracy frontier: how much
resident memory each extra bit of precision buys back in spread.  The
headline ``memory_reduction`` is exact-bytes over default-precision sketch
bytes (the gate asserts >= 4x at theta >= 10^6), and ``accuracy.pass``
asserts the sketch seed set's estimated spread lands within the backend's
certified epsilon of the exact seed set's.

Results go to ``benchmarks/results/BENCH_sketch.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sketch.py            # full (theta=10^6)
    PYTHONPATH=src python benchmarks/bench_sketch.py --quick    # CI smoke

``--quick`` shrinks the graph and pool; quick results carry
``"quick": true`` and are written to ``BENCH_sketch_quick.json`` so a
smoke run never overwrites the committed full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.coverage.greedy import max_coverage_greedy
from repro.coverage.sketch import (
    CoverageSketch,
    exact_coverage_scan,
    relative_std_error,
    sketch_max_coverage,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sketch.json"
QUICK_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_sketch_quick.json"
)

#: the ladder rungs the frontier sweeps (register-index bits)
PRECISIONS = (6, 8, 10, 12)
#: the backend default — the rung the headline memory_reduction is taken at
DEFAULT_PRECISION = 8
#: sigma multiplier matching SketchBackend's certified band
CONFIDENCE = 3.0


def make_graph(n: int, degree: int = 3, seed: int = 1) -> CSRGraph:
    return wc_weights(
        preferential_attachment(n, degree, seed=seed, reciprocal=0.3)
    )


def make_pool(graph: CSRGraph, theta: int, seed: int) -> RRCollection:
    pool = RRCollection(graph.n)
    gen = SubsimICGenerator(graph)
    gen.batch_size = 4096
    pool.extend(theta, gen, np.random.default_rng(seed))
    return pool


def exact_structure_bytes(pool: RRCollection, k: int) -> int:
    """Resident bytes of the exact selection structures at this theta.

    The inverted CSR (``inv_indptr``/``inv_rrs``) plus the per-node gain
    and coverage-count vectors greedy decrements — the footprint the
    sketch rows replace.  (The flat node pool itself is common to both
    backends and excluded.)
    """
    inv_indptr, inv_rrs = pool._inverted()
    gains = pool.n * 8          # float64/int64 gain vector
    counts = pool.n * 8         # per-node coverage counts
    return int(inv_indptr.nbytes + inv_rrs.nbytes + gains + counts)


def run_benchmark(
    n: int = 10_000,
    degree: int = 3,
    theta: int = 1_000_000,
    k: int = 50,
    seed: int = 7,
    quick: bool = False,
) -> dict:
    if quick:
        n, theta, k = 1_500, 50_000, 8

    graph = make_graph(n, degree)
    t0 = time.perf_counter()
    pool = make_pool(graph, theta, seed)
    gen_seconds = time.perf_counter() - t0

    # Exact baseline: inverted-CSR greedy, exactly evaluated coverage.
    t0 = time.perf_counter()
    exact = max_coverage_greedy(pool, select=k, topk=k)
    exact_seconds = time.perf_counter() - t0
    exact_bytes = exact_structure_bytes(pool, k)
    exact_spread = graph.n * exact.coverage / pool.num_rr

    # Sketch frontier: one rung per precision, each re-ingesting the pool
    # at its own resolution (what a ladder escalation costs end to end).
    rungs = []
    for p in PRECISIONS:
        sketch = CoverageSketch(graph.n, precision=p)
        t0 = time.perf_counter()
        sketch.ingest_range(pool, 0, pool.num_rr)
        ingest_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        picked = sketch_max_coverage(
            sketch.registers, k, num_rr=pool.num_rr, topk=k
        )
        select_seconds = time.perf_counter() - t0
        # The honest yardstick: the sketch-picked seeds' *exact* coverage.
        true_cov = exact_coverage_scan(pool, picked.seeds)
        spread = graph.n * true_cov / pool.num_rr
        epsilon = CONFIDENCE * relative_std_error(p)
        shortfall = (exact_spread - spread) / exact_spread if exact_spread else 0.0
        rungs.append({
            "precision": p,
            "registers_per_node": 1 << p,
            "sketch_bytes": int(sketch.nbytes()),
            "memory_reduction": round(exact_bytes / sketch.nbytes(), 4),
            "ingest_seconds": round(ingest_seconds, 6),
            "select_seconds": round(select_seconds, 6),
            "estimated_coverage": int(picked.coverage),
            "exact_coverage_of_picked": int(true_cov),
            "spread": round(spread, 4),
            "spread_shortfall_vs_exact": round(shortfall, 6),
            "epsilon_sketch": round(epsilon, 6),
            "within_certified_epsilon": bool(shortfall <= epsilon),
        })

    default = next(r for r in rungs if r["precision"] == DEFAULT_PRECISION)
    return {
        "benchmark": "sketch",
        "quick": quick,
        "graph": {"model": "pa+wc", "n": graph.n, "m": graph.m},
        "theta": int(pool.num_rr),
        "k": k,
        "seed": seed,
        "generation_seconds": round(gen_seconds, 6),
        "exact": {
            "coverage_bytes": exact_bytes,
            "select_seconds": round(exact_seconds, 6),
            "coverage": int(exact.coverage),
            "spread": round(exact_spread, 4),
        },
        "frontier": rungs,
        "memory_reduction": default["memory_reduction"],
        "accuracy": {
            "precision": DEFAULT_PRECISION,
            "spread_shortfall_vs_exact": default["spread_shortfall_vs_exact"],
            "epsilon_sketch": default["epsilon_sketch"],
            "pass": default["within_certified_epsilon"],
        },
    }


def write_report(report: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graph and pool; for CI smoke runs")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--theta", type=int, default=1_000_000,
                        help="pool size (RR sets)")
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=None,
                        help="result file (default: BENCH_sketch.json, or "
                             "BENCH_sketch_quick.json with --quick)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = QUICK_RESULTS_PATH if args.quick else RESULTS_PATH

    report = run_benchmark(
        n=args.n, theta=args.theta, k=args.k, seed=args.seed,
        quick=args.quick,
    )
    path = write_report(report, args.output)
    ex = report["exact"]
    print(
        f"pool: theta={report['theta']:,} on n={report['graph']['n']:,} "
        f"({report['generation_seconds']:.1f}s to generate)"
    )
    print(
        f"exact: {ex['coverage_bytes'] / 1e6:.1f} MB coverage structures, "
        f"select {ex['select_seconds']:.2f}s, spread {ex['spread']:.1f}"
    )
    for r in report["frontier"]:
        print(
            f"  p={r['precision']:>2}: {r['sketch_bytes'] / 1e6:6.2f} MB "
            f"({r['memory_reduction']:5.1f}x smaller), "
            f"spread {r['spread']:.1f} "
            f"(shortfall {r['spread_shortfall_vs_exact'] * 100:.2f}% vs "
            f"eps {r['epsilon_sketch'] * 100:.1f}%) -> "
            f"{'ok' if r['within_certified_epsilon'] else 'MISS'}"
        )
    print(
        f"headline: {report['memory_reduction']:.1f}x memory reduction at "
        f"p={DEFAULT_PRECISION}, accuracy "
        f"{'pass' if report['accuracy']['pass'] else 'FAIL'}"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
