"""Micro-benchmarks: exact-decremental greedy vs CELF lazy greedy.

Quantifies the design note in `repro/coverage/celf.py`: which selection
strategy wins on realistic RR pools (many small sets, heavy-tailed node
coverage).
"""

import numpy as np
import pytest

from repro.coverage.celf import celf_max_coverage
from repro.coverage.greedy import max_coverage_greedy
from repro.experiments.workloads import make_dataset
from repro.graphs.weights import wc_weights
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator


@pytest.fixture(scope="module")
def pool():
    graph = wc_weights(make_dataset("pokec-like", scale=0.08, seed=0))
    rng = np.random.default_rng(0)
    collection = RRCollection(graph.n)
    collection.extend(4000, SubsimICGenerator(graph), rng)
    return collection


def test_micro_greedy_decremental(benchmark, pool):
    result = benchmark(
        max_coverage_greedy, pool, 50, None, None, None, False
    )
    assert len(result.seeds) == 50


def test_micro_greedy_decremental_with_eq2(benchmark, pool):
    result = benchmark(max_coverage_greedy, pool, 50)
    assert result.upper_bound_coverage >= result.coverage


def test_micro_greedy_celf(benchmark, pool):
    result = benchmark(celf_max_coverage, pool, 50)
    assert len(result.seeds) == 50
