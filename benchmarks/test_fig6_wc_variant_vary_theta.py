"""Figure 6: running time across the WC-variant average-RR-size ladder.

Paper shape: at average RR size ~50 HIST is already competitive with
OPIM-C; as the ladder climbs (theta_50 ... theta_32K, scaled here to
fractions of n) HIST's advantage grows to two orders of magnitude, and
HIST+SUBSIM stays ahead throughout.  We assert the advantage at the top of
the ladder exceeds the advantage at the bottom, and that HIST wins wherever
RR sets are large.
"""

from collections import defaultdict

from conftest import write_result

from repro.experiments.figures import figure6_rows
from repro.experiments.reporting import render_table

# The bottom rung is deliberately low-influence (~0.4% of n): there the
# sentinel rarely triggers and HIST ~ OPIM-C, which is where the paper's
# ladder starts; the advantage then grows up the ladder.
FRACTIONS = (0.004, 0.02, 0.1, 0.2, 0.35)


def test_fig6_wc_variant_ladder(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure6_rows,
        kwargs={
            "dataset": "pokec-like",
            "k": 50,
            "eps": 0.3,
            "scale": bench_scale,
            "seed": bench_seed,
            "size_fractions": FRACTIONS,
        },
        rounds=1,
        iterations=1,
    )
    by_target = defaultdict(dict)
    for row in rows:
        by_target[row["target_avg_rr_size"]][row["algorithm"]] = row

    targets = sorted(by_target)
    advantages = [
        by_target[t]["opim-c"]["runtime_s"]
        / max(by_target[t]["hist"]["runtime_s"], 1e-9)
        for t in targets
    ]
    # The advantage grows with average RR size (paper's headline trend).
    assert advantages[-1] > 1.5 * advantages[0], advantages
    # And at the top of the ladder HIST clearly wins.
    assert advantages[-1] > 3.0, advantages
    # HIST+SUBSIM is the overall fastest at the top.
    top = by_target[targets[-1]]
    assert top["hist+subsim"]["runtime_s"] <= top["hist"]["runtime_s"]

    write_result(
        results_dir,
        "fig6_wc_variant_ladder",
        render_table(
            rows,
            title=(
                "Figure 6 — runtime vs avg RR size, WC variant "
                f"(scale={bench_scale})"
            ),
        ),
    )
