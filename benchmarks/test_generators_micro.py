"""Micro-benchmarks: single-RR-set generation cost per generator.

These use pytest-benchmark's statistical timing (many rounds) rather than
the one-shot figure harnesses, giving stable per-operation numbers for the
three generator families under WC weights.
"""

import numpy as np
import pytest

from repro.experiments.workloads import make_dataset
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    wc_weights,
)
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator


@pytest.fixture(scope="module")
def wc_bench_graph():
    return wc_weights(make_dataset("pokec-like", scale=0.08, seed=0))


@pytest.fixture(scope="module")
def skewed_bench_graph():
    return exponential_weights(make_dataset("pokec-like", scale=0.08, seed=0), seed=0)


def test_micro_vanilla_wc(benchmark, wc_bench_graph):
    generator = VanillaICGenerator(wc_bench_graph)
    rng = np.random.default_rng(0)
    benchmark(generator.generate, rng)


def test_micro_subsim_wc(benchmark, wc_bench_graph):
    generator = SubsimICGenerator(wc_bench_graph)
    rng = np.random.default_rng(0)
    benchmark(generator.generate, rng)


def test_micro_vanilla_skewed(benchmark, skewed_bench_graph):
    generator = VanillaICGenerator(skewed_bench_graph)
    rng = np.random.default_rng(0)
    benchmark(generator.generate, rng)


def test_micro_subsim_skewed_sorted(benchmark, skewed_bench_graph):
    generator = SubsimICGenerator(skewed_bench_graph, general_mode="sorted")
    rng = np.random.default_rng(0)
    benchmark(generator.generate, rng)


def test_micro_lt(benchmark):
    graph = lt_normalized_weights(
        exponential_weights(make_dataset("pokec-like", scale=0.08, seed=0), seed=0)
    )
    generator = LTGenerator(graph)
    rng = np.random.default_rng(0)
    benchmark(generator.generate, rng)
