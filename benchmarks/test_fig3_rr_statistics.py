"""Figure 3: RR-set statistics — HIST vs OPIM-C in high influence.

Paper shape: (3a) HIST's sentinel phase generates orders of magnitude fewer
RR sets than OPIM-C's whole run; (3b) HIST's average RR-set size is up to
700x smaller.  At our scale we assert both reductions hold with comfortable
margins on every dataset.
"""

from conftest import write_result

from repro.experiments.figures import figure3_rows
from repro.experiments.reporting import render_table


def test_fig3_rr_statistics(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        figure3_rows,
        kwargs={
            "k": 100,
            "eps": 0.3,
            "scale": bench_scale,
            "seed": bench_seed,
            "target_size_fraction": 0.2,
        },
        rounds=1,
        iterations=1,
    )
    for row in rows:
        # 3b: HIST's average RR set is materially smaller.
        assert row["size_reduction"] > 2.0, row
        # 3a: the sentinel phase needs no more RR sets than OPIM-C overall
        # (the paper reports ~100x fewer at billion-edge scale).
        assert (
            row["hist_sentinel_rr_sets"] <= 4 * row["opimc_rr_sets"]
        ), row

    write_result(
        results_dir,
        "fig3_rr_statistics",
        render_table(
            rows,
            title=(
                "Figure 3 — RR statistics, HIST vs OPIM-C "
                f"(scale={bench_scale})"
            ),
        ),
    )
