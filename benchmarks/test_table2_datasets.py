"""Table 2: dataset summary (scaled stand-ins next to the paper's sizes)."""

from conftest import write_result

from repro.experiments.reporting import render_table
from repro.experiments.workloads import table2_rows


def test_table2_dataset_summary(benchmark, results_dir, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        table2_rows,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 4
    # Stand-ins preserve the paper's directedness per dataset.
    by_name = {r["dataset"]: r for r in rows}
    assert by_name["pokec-like"]["type"] == "directed"
    assert by_name["orkut-like"]["type"] == "undirected"
    assert by_name["twitter-like"]["type"] == "directed"
    assert by_name["friendster-like"]["type"] == "undirected"
    # twitter-like is the largest, as in the paper's ordering by n.
    assert by_name["twitter-like"]["n"] == max(r["n"] for r in rows)
    write_result(
        results_dir,
        "table2_datasets",
        render_table(rows, title=f"Table 2 — datasets (scale={bench_scale})"),
    )
