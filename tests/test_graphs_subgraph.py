"""Tests for subgraph extraction."""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import cycle_graph, path_graph, preferential_attachment
from repro.graphs.subgraph import induced_subgraph, largest_scc_subgraph
from repro.graphs.traversal import largest_scc_size
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


class TestInducedSubgraph:
    def test_basic_extraction(self):
        g = path_graph(5)
        sub = induced_subgraph(g, [1, 2, 3])
        assert sub.graph.n == 3
        assert sub.graph.m == 2  # 1->2 and 2->3 survive

    def test_id_mapping_round_trip(self):
        g = path_graph(6)
        sub = induced_subgraph(g, [4, 2, 0])
        assert list(sub.to_parent) == [4, 2, 0]
        assert sub.from_parent[4] == 0
        assert sub.from_parent[2] == 1
        assert sub.from_parent[1] == -1
        assert sub.parent_seeds([0, 2]) == [4, 0]

    def test_probabilities_preserved(self):
        g = build_graph(3, [0, 1], [1, 2], [0.3, 0.7])
        sub = induced_subgraph(g, [0, 1])
        _, _, probs = sub.graph.edges()
        assert list(probs) == [0.3]

    def test_edges_crossing_boundary_dropped(self):
        g = cycle_graph(6)
        sub = induced_subgraph(g, [0, 3])  # non-adjacent on the cycle
        assert sub.graph.m == 0

    def test_weight_model_carried(self):
        g = wc_weights(preferential_attachment(50, 3, seed=1, reciprocal=0.3))
        sub = induced_subgraph(g, list(range(10)))
        assert sub.graph.weight_model == "wc"

    def test_validation(self):
        g = path_graph(4)
        with pytest.raises(ConfigurationError):
            induced_subgraph(g, [])
        with pytest.raises(ConfigurationError):
            induced_subgraph(g, [0, 0])
        with pytest.raises(ConfigurationError):
            induced_subgraph(g, [9])


class TestLargestSCC:
    def test_cycle_keeps_everything(self):
        g = cycle_graph(8)
        sub = largest_scc_subgraph(g)
        assert sub.graph.n == 8
        assert sub.graph.m == 8

    def test_path_keeps_one_node(self):
        sub = largest_scc_subgraph(path_graph(5))
        assert sub.graph.n == 1
        assert sub.graph.m == 0

    def test_subgraph_is_strongly_connected(self):
        g = preferential_attachment(300, 3, seed=2, reciprocal=0.4)
        sub = largest_scc_subgraph(g)
        assert sub.graph.n >= 2
        assert largest_scc_size(sub.graph) == sub.graph.n

    def test_matches_scc_size(self):
        g = preferential_attachment(200, 3, seed=3, reciprocal=0.3)
        sub = largest_scc_subgraph(g)
        assert sub.graph.n == largest_scc_size(g)
