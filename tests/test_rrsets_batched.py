"""Equivalence and determinism tests for the batched RR generation engine.

The batched engine draws random numbers in a different order than the
sequential samplers, so pools are not bit-identical across modes — but they
must be *distributionally* identical (same RR-set law), honor the same
sentinel/stop semantics, keep honest counters, and be exactly reproducible
run-to-run for a fixed configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rrsets.collection import RRCollection
from repro.rrsets.fanout import generate_multiprocess, shard_counts
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.control import RunControl
from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.utils.exceptions import ConfigurationError, ExecutionInterrupted

scipy_stats = pytest.importorskip("scipy.stats")

GENERATORS = [VanillaICGenerator, FastVanillaICGenerator, SubsimICGenerator]


def _sizes(graph, cls, count, seed, batch_size=1, workers=1, stop_mask=None):
    gen = cls(graph)
    gen.batch_size = batch_size
    gen.workers = workers
    pool = RRCollection(graph.n)
    pool.extend(count, gen, np.random.default_rng(seed), stop_mask=stop_mask)
    return pool, gen


class TestDistributionalEquivalence:
    """Batched sizes must come from the same distribution as sequential."""

    @pytest.mark.parametrize("cls", GENERATORS, ids=lambda c: c.name)
    def test_ks_sizes_match_sequential(self, wc_graph, cls):
        seq, _ = _sizes(wc_graph, cls, 1200, seed=7)
        bat, _ = _sizes(wc_graph, cls, 1200, seed=701, batch_size=128)
        stat = scipy_stats.ks_2samp(seq.set_sizes(), bat.set_sizes())
        assert stat.pvalue > 1e-3, (
            f"KS p={stat.pvalue:.2e}: batched size distribution diverged "
            f"(seq mean {seq.set_sizes().mean():.2f}, "
            f"bat mean {bat.set_sizes().mean():.2f})"
        )

    @pytest.mark.parametrize("cls", [VanillaICGenerator, SubsimICGenerator],
                             ids=lambda c: c.name)
    def test_mean_size_close(self, wc_graph, cls):
        seq, g1 = _sizes(wc_graph, cls, 2000, seed=11)
        bat, g2 = _sizes(wc_graph, cls, 2000, seed=1101, batch_size=256)
        assert bat.set_sizes().mean() == pytest.approx(
            seq.set_sizes().mean(), rel=0.15
        )
        # Work accounting stays honest: similar edge traffic per set.
        assert g2.counters.edges_examined == pytest.approx(
            g1.counters.edges_examined, rel=0.15
        )

    def test_sets_are_reachable_node_sets(self, path10):
        # On an all-ones path the RR set of root r is {0..r}; the batched
        # engine must produce exactly those, not approximations.
        gen = VanillaICGenerator(path10)
        gen.batch_size = 16
        pool = RRCollection(path10.n)
        pool.extend(64, gen, np.random.default_rng(3))
        for rr in pool.rr_sets:
            root = rr[0]
            assert sorted(rr.tolist()) == list(range(root + 1))


class TestStopMask:
    @pytest.mark.parametrize("cls", GENERATORS, ids=lambda c: c.name)
    def test_all_sentinels_stop_immediately(self, wc_graph, cls):
        stop = np.ones(wc_graph.n, dtype=bool)
        pool, gen = _sizes(wc_graph, cls, 60, seed=5, batch_size=32,
                           stop_mask=stop)
        assert (pool.set_sizes() == 1).all()
        assert gen.counters.sentinel_hits == 60

    def test_partial_sentinels_truncate(self, wc_graph):
        # Sentinel on the highest-degree hub: batched sets containing it
        # must count a hit; sets avoiding it must not.
        hub = int(np.argmax(wc_graph.out_degree()))
        stop = np.zeros(wc_graph.n, dtype=bool)
        stop[hub] = True
        pool, gen = _sizes(wc_graph, VanillaICGenerator, 400, seed=9,
                           batch_size=64, stop_mask=stop)
        contains_hub = sum(hub in set(rr.tolist()) for rr in pool.rr_sets)
        assert gen.counters.sentinel_hits == contains_hub
        assert 0 < contains_hub < 400


class TestDeterminism:
    @pytest.mark.parametrize("cls", GENERATORS, ids=lambda c: c.name)
    def test_batched_run_to_run_identical(self, wc_graph, cls):
        p1, g1 = _sizes(wc_graph, cls, 300, seed=21, batch_size=64)
        p2, g2 = _sizes(wc_graph, cls, 300, seed=21, batch_size=64)
        assert np.array_equal(p1.rr_nodes, p2.rr_nodes)
        assert np.array_equal(p1.set_sizes(), p2.set_sizes())
        assert g1.counters.edges_examined == g2.counters.edges_examined
        assert g1.counters.rng_draws == g2.counters.rng_draws

    def test_multiprocess_run_to_run_identical(self, wc_graph):
        p1, g1 = _sizes(wc_graph, VanillaICGenerator, 200, seed=33,
                        batch_size=32, workers=2)
        p2, g2 = _sizes(wc_graph, VanillaICGenerator, 200, seed=33,
                        batch_size=32, workers=2)
        assert np.array_equal(p1.rr_nodes, p2.rr_nodes)
        assert np.array_equal(p1.set_sizes(), p2.set_sizes())
        assert g1.counters.edges_examined == g2.counters.edges_examined
        assert g1.counters.rng_draws == g2.counters.rng_draws

    def test_worker_count_changes_sample(self, wc_graph):
        p2, _ = _sizes(wc_graph, VanillaICGenerator, 200, seed=33,
                       batch_size=32, workers=2)
        p4, _ = _sizes(wc_graph, VanillaICGenerator, 200, seed=33,
                       batch_size=32, workers=4)
        assert not np.array_equal(p2.rr_nodes, p4.rr_nodes)

    def test_small_fanout_degrades_deterministically(self, wc_graph):
        # Below MIN_SETS_PER_WORKER * workers the fan-out stays in-process
        # but must still derive the worker stream the same way.
        gen = VanillaICGenerator(wc_graph)
        gen.batch_size = 8
        a = generate_multiprocess(gen, 6, np.random.default_rng(2), workers=4)
        gen2 = VanillaICGenerator(wc_graph)
        gen2.batch_size = 8
        b = generate_multiprocess(gen2, 6, np.random.default_rng(2), workers=4)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_shard_counts_cover_exactly(self):
        for count in (1, 7, 16, 100):
            for workers in (1, 2, 3, 8):
                shards = shard_counts(count, workers)
                assert sum(shards) == count
                assert max(shards) - min(shards) <= 1


class TestControlIntegration:
    def test_budget_respected_at_batch_boundary(self, wc_graph):
        gen = VanillaICGenerator(wc_graph)
        gen.batch_size = 64
        gen.control = RunControl(budget=Budget(max_rr_sets=100))
        pool = RRCollection(wc_graph.n)
        with pytest.raises(ExecutionInterrupted):
            pool.extend(500, gen, np.random.default_rng(1))
        assert pool.num_rr == 100
        assert gen.counters.sets_generated == 100

    def test_budget_respected_across_fanout(self, wc_graph):
        gen = VanillaICGenerator(wc_graph)
        gen.batch_size = 32
        gen.workers = 2
        gen.control = RunControl(budget=Budget(max_rr_sets=80))
        pool = RRCollection(wc_graph.n)
        with pytest.raises(ExecutionInterrupted):
            pool.extend(500, gen, np.random.default_rng(1))
        assert pool.num_rr == 80

    def test_cancellation_checked_between_batches(self, wc_graph):
        token = CancellationToken()
        gen = VanillaICGenerator(wc_graph)
        gen.batch_size = 16

        calls = {"n": 0}
        control = RunControl(token=token)
        original = control.on_rr_start

        def counting_start():
            calls["n"] += 1
            if calls["n"] == 3:  # cancel after two batches began
                token.cancel()
            original()

        control.on_rr_start = counting_start
        gen.control = control
        pool = RRCollection(wc_graph.n)
        with pytest.raises(ExecutionInterrupted):
            pool.extend(200, gen, np.random.default_rng(4))
        # Two whole batches landed before the cancel was observed.
        assert pool.num_rr == 32


class TestRunAPIValidation:
    def test_resume_with_workers_rejected(self, wc_graph, tmp_path):
        from repro.algorithms.opimc import OPIMC

        algo = OPIMC(wc_graph, generator_cls=SubsimICGenerator)
        with pytest.raises(ConfigurationError, match="workers"):
            algo.run(
                3, eps=0.4, seed=0,
                checkpoint=str(tmp_path / "c.npz"),
                resume=True, workers=2,
            )

    def test_bad_knobs_rejected(self, wc_graph):
        from repro.algorithms.opimc import OPIMC

        algo = OPIMC(wc_graph, generator_cls=SubsimICGenerator)
        with pytest.raises(ConfigurationError):
            algo.run(3, eps=0.4, seed=0, batch_size=0)
        with pytest.raises(ConfigurationError):
            algo.run(3, eps=0.4, seed=0, workers=0)

    def test_knobs_reset_after_run(self, wc_graph):
        from repro.algorithms.opimc import OPIMC

        algo = OPIMC(wc_graph, generator_cls=SubsimICGenerator)
        algo.run(3, eps=0.4, seed=0, batch_size=64, workers=1)
        assert algo._batch_size == 1 and algo._workers == 1


class TestAlgorithmsUnderBatching:
    """End-to-end: batched/parallel modes yield valid seed sets."""

    def test_opimc_batched_matches_quality(self, wc_graph):
        from repro.algorithms.opimc import OPIMC
        from repro.estimation.montecarlo import estimate_spread

        algo = OPIMC(wc_graph, generator_cls=SubsimICGenerator)
        r_seq = algo.run(5, eps=0.4, seed=17)
        r_bat = algo.run(5, eps=0.4, seed=17, batch_size=128)
        s_seq = estimate_spread(wc_graph, r_seq.seeds,
                                num_simulations=200, seed=1).mean
        s_bat = estimate_spread(wc_graph, r_bat.seeds,
                                num_simulations=200, seed=1).mean
        assert s_bat >= 0.85 * s_seq

    def test_hist_batched_runs(self, wc_graph):
        from repro.algorithms.hist import HIST

        algo = HIST(wc_graph)
        result = algo.run(4, eps=0.4, seed=23, batch_size=64)
        assert len(result.seeds) == 4
        assert result.status == "complete"

    def test_default_mode_bit_identical_to_legacy_loop(self, wc_graph):
        # batch_size=1 must replay the exact per-set sequential schedule:
        # generate() calls against a fresh rng reproduce extend()'s pool.
        gen = SubsimICGenerator(wc_graph)
        pool = RRCollection(wc_graph.n)
        pool.extend(50, gen, np.random.default_rng(99))
        gen2 = SubsimICGenerator(wc_graph)
        rng = np.random.default_rng(99)
        expected = [gen2.generate(rng) for _ in range(50)]
        assert pool.num_rr == 50
        for i, rr in enumerate(expected):
            assert np.array_equal(pool.set_nodes(i), rr)
        assert gen.counters.rng_draws == gen2.counters.rng_draws


class TestFanoutDegradeCounter:
    def test_degradation_increments_counter(self, wc_graph):
        # Too little work for 4 workers: the fan-out stays in-process and
        # must say so in the metrics (generation.fanout_degraded).
        from repro.observability import MetricsRegistry

        gen = VanillaICGenerator(wc_graph)
        gen.batch_size = 8
        gen.metrics = MetricsRegistry()
        generate_multiprocess(gen, 6, np.random.default_rng(2), workers=4)
        assert gen.metrics.value("generation.fanout_degraded") == 1

    def test_real_fanout_does_not_count(self, wc_graph):
        from repro.observability import MetricsRegistry

        gen = VanillaICGenerator(wc_graph)
        gen.batch_size = 8
        gen.metrics = MetricsRegistry()
        generate_multiprocess(gen, 200, np.random.default_rng(2), workers=2)
        assert gen.metrics.value("generation.fanout_degraded") == 0
