"""Budgets: validation, enforcement, and graceful degradation everywhere.

The contract under test: *every* registered algorithm, given an exhausted
budget, returns an ``IMResult`` with ``status="partial"`` — never raises,
never hangs, never returns more than ``k`` seeds — and RR-based algorithms
overshoot the edge cap by at most one in-flight RR set.
"""

import pytest

from repro.core.certify import partial_certificate
from repro.core.registry import available_algorithms, get_algorithm
from repro.core.serialization import result_from_dict, result_to_dict
from repro.runtime import Budget, RunControl
from repro.utils.exceptions import BudgetExceededError, ConfigurationError

K = 5
EPS = 0.3
SEED = 3


class TestBudgetObject:
    def test_defaults_unlimited(self):
        b = Budget()
        assert b.unlimited
        assert Budget(max_rr_sets=10).unlimited is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_clock_seconds": -1.0},
            {"max_edges_examined": -1},
            {"max_rr_sets": -5},
            {"max_rr_nodes": -2},
        ],
    )
    def test_negative_caps_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Budget(**kwargs)

    def test_as_dict_round_trips_fields(self):
        b = Budget(wall_clock_seconds=2.5, max_edges_examined=100)
        d = b.as_dict()
        assert d["wall_clock_seconds"] == 2.5
        assert d["max_edges_examined"] == 100
        assert d["max_rr_sets"] is None


class TestRunControl:
    def test_deadline_uses_injected_clock(self):
        now = [0.0]
        control = RunControl(
            budget=Budget(wall_clock_seconds=5.0), clock=lambda: now[0]
        )
        control.start()
        control.check()  # still inside the budget
        now[0] = 5.0
        with pytest.raises(BudgetExceededError):
            control.check()
        assert control.stop_reason == "deadline"

    def test_rr_set_cap_enforced_between_sets(self):
        control = RunControl(budget=Budget(max_rr_sets=2))
        control.start()
        for _ in range(2):
            control.on_rr_start()
            control.on_rr_complete(size=3)
        with pytest.raises(BudgetExceededError):
            control.on_rr_start()
        assert control.stop_reason == "num_rr_sets"

    def test_edge_cap_soft_by_one_step(self):
        control = RunControl(budget=Budget(max_edges_examined=10))
        control.start()
        control.on_rr_start()
        control.on_edges(10)  # == cap: allowed (strictly-greater trips)
        with pytest.raises(BudgetExceededError):
            control.on_edges(1)
        assert control.stop_reason == "edges_examined"
        assert control.edges_examined == 11

    def test_rr_memory_cap(self):
        control = RunControl(budget=Budget(max_rr_nodes=4))
        control.start()
        control.on_rr_start()
        control.on_rr_complete(size=4)
        with pytest.raises(BudgetExceededError):
            control.on_rr_start()
        assert control.stop_reason == "rr_memory"

    def test_snapshot_reports_spend(self):
        control = RunControl(budget=Budget(max_edges_examined=100))
        control.start()
        control.on_rr_start()
        control.on_edges(7)
        control.on_rr_complete(size=2)
        snap = control.snapshot()
        assert snap["edges_examined"] == 7
        assert snap["rr_sets"] == 1
        assert snap["rr_nodes"] == 2


class TestEveryAlgorithmDegrades:
    """The parametrized exhaustion sweep of the robustness contract."""

    @pytest.mark.parametrize("name", available_algorithms())
    def test_zero_deadline_yields_partial(self, wc_graph, name):
        algo = get_algorithm(name, wc_graph)
        result = algo.run(
            K, eps=EPS, seed=SEED, budget=Budget(wall_clock_seconds=0.0)
        )
        assert result.status == "partial"
        assert result.is_partial
        assert result.stop_reason == "deadline"
        assert len(result.seeds) <= K
        assert len(set(result.seeds)) == len(result.seeds)

    @pytest.mark.parametrize("name", available_algorithms())
    def test_edge_cap_yields_partial_with_bounded_overshoot(
        self, wc_graph, name
    ):
        cap = 400
        algo = get_algorithm(name, wc_graph)
        if not algo.uses_rr_sets:
            pytest.skip("no RR generation: edge budget cannot bind")
        result = algo.run(
            K, eps=EPS, seed=SEED, budget=Budget(max_edges_examined=cap)
        )
        if name == "borgs-ris" and result.status == "complete":
            # Its own edge-budget rule may legitimately finish first.
            return
        assert result.status == "partial"
        assert result.stop_reason == "edges_examined"
        assert len(result.seeds) <= K
        # Overshoot is bounded by the single RR set in flight when the cap
        # tripped — at most one pass over the edge set.
        assert result.edges_examined <= cap + wc_graph.m

    def test_rr_set_cap(self, wc_graph):
        result = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, budget=Budget(max_rr_sets=100)
        )
        assert result.status == "partial"
        assert result.stop_reason == "num_rr_sets"
        assert result.num_rr_sets == 100

    def test_rr_memory_cap(self, wc_graph):
        result = get_algorithm("hist", wc_graph).run(
            K, eps=EPS, seed=SEED, budget=Budget(max_rr_nodes=200)
        )
        assert result.status == "partial"
        assert result.stop_reason == "rr_memory"

    @pytest.mark.parametrize("name", ["opim-c", "hist", "subsim", "imm"])
    def test_spend_monotone_in_cap(self, wc_graph, name):
        """Same seed + larger cap => identical execution prefix, so the
        recorded spend counters can only grow with the cap."""
        caps = [200, 800, 3200]
        runs = [
            get_algorithm(name, wc_graph).run(
                K, eps=EPS, seed=SEED, budget=Budget(max_edges_examined=cap)
            )
            for cap in caps
        ]
        for smaller, larger in zip(runs, runs[1:]):
            assert smaller.num_rr_sets <= larger.num_rr_sets
            assert smaller.edges_examined <= larger.edges_examined

    def test_unlimited_budget_is_a_no_op(self, wc_graph):
        plain = get_algorithm("opim-c", wc_graph).run(K, eps=EPS, seed=SEED)
        budgeted = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, budget=Budget()
        )
        assert budgeted.status == "complete"
        assert budgeted.seeds == plain.seeds
        assert budgeted.num_rr_sets == plain.num_rr_sets
        assert budgeted.edges_examined == plain.edges_examined


class TestPartialResultPlumbing:
    def test_partial_certificate_flagged_incomplete(self, wc_graph):
        result = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, budget=Budget(max_rr_sets=64)
        )
        cert = partial_certificate(result)
        assert cert.complete is False
        assert cert.ratio == pytest.approx(result.approx_ratio_certified)

    def test_complete_certificate_flagged_complete(self, wc_graph):
        result = get_algorithm("opim-c", wc_graph).run(K, eps=EPS, seed=SEED)
        assert partial_certificate(result).complete is True

    def test_status_survives_serialization(self, wc_graph):
        result = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, budget=Budget(max_rr_sets=64)
        )
        revived = result_from_dict(result_to_dict(result))
        assert revived.status == "partial"
        assert revived.stop_reason == result.stop_reason

    def test_runtime_snapshot_recorded_in_extras(self, wc_graph):
        result = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, budget=Budget(max_rr_sets=64)
        )
        snap = result.extras["runtime"]
        assert snap["stop_reason"] == "num_rr_sets"
        assert snap["rr_sets"] >= 64

    def test_summary_row_carries_status(self, wc_graph):
        result = get_algorithm("degree", wc_graph).run(K, seed=SEED)
        assert result.summary_row()["status"] == "complete"
