"""Failure injection: corrupted inputs, misuse, and adversarial structure.

A production library fails loudly and precisely; these tests feed each
layer broken data and assert the error is the documented one (never a
silent wrong answer or an unrelated traceback).
"""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import path_graph, preferential_attachment
from repro.graphs.io import load_edge_list, load_npz
from repro.graphs.weights import wc_weights
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError, GraphFormatError


class TestCorruptedFiles:
    def test_truncated_npz(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 definitely not a real archive")
        # The documented contract: precisely GraphFormatError, with the
        # underlying zipfile/numpy failure chained as the cause.
        with pytest.raises(GraphFormatError) as excinfo:
            load_npz(path)
        assert excinfo.value.__cause__ is not None

    def test_npz_missing_arrays(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez_compressed(path, n=np.int64(3))  # everything else absent
        with pytest.raises(GraphFormatError) as excinfo:
            load_npz(path)
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_missing_file_wrapped_with_cause(self, tmp_path):
        for loader in (load_npz, load_edge_list):
            with pytest.raises(GraphFormatError) as excinfo:
                loader(tmp_path / "nope.any")
            assert isinstance(excinfo.value.__cause__, OSError)

    def test_edge_list_with_negative_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_edge_list_with_bad_probability(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 7.5\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_edge_list_with_self_loop(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 3\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_edge_list_n_too_small(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path, n=5)


class TestAdversarialStructure:
    def test_isolated_node_graph(self, rng):
        # Node 2 has no edges at all: everything still works.
        g = build_graph(3, [0], [1], [0.5])
        gen = SubsimICGenerator(g)
        assert gen.generate(rng, root=2) == [2]
        wc = wc_weights(g)
        assert wc.in_prob_sums[2] == 0.0

    def test_single_node_universe(self, rng):
        g = build_graph(1, [], [], [])
        for cls in (VanillaICGenerator, SubsimICGenerator):
            assert cls(g).generate(rng) == [0]

    def test_very_high_degree_hub(self, rng):
        # 5000 edges into one node: SUBSIM must stay O(mu) there.
        n = 5001
        src = np.arange(1, n, dtype=np.int64)
        dst = np.zeros(n - 1, dtype=np.int64)
        g = build_graph(n, src, dst, np.full(n - 1, 1.0 / (n - 1)))
        gen = SubsimICGenerator(g)
        for _ in range(50):
            gen.generate(rng, root=0)
        # ~1 success + 1 terminal inspection per generation on average.
        assert gen.counters.edges_examined < 50 * 10

    def test_all_probability_one_dense_core(self, rng):
        from repro.graphs.generators import complete_graph

        g = complete_graph(12)
        gen = SubsimICGenerator(g)
        assert sorted(gen.generate(rng, root=5)) == list(range(12))

    def test_deep_chain_no_recursion_issues(self, rng):
        g = path_graph(20_000)
        gen = VanillaICGenerator(g)
        assert len(gen.generate(rng, root=19_999)) == 20_000


class TestMisuse:
    def test_generator_root_out_of_range(self, wc_graph, rng):
        for cls in (VanillaICGenerator, SubsimICGenerator):
            with pytest.raises(ValueError):
                cls(wc_graph).generate(rng, root=-1)

    def test_collection_with_foreign_node_ids(self):
        c = RRCollection(3)
        with pytest.raises(IndexError):
            c.add([7])

    def test_algorithm_on_reweighted_graph_not_stale(self):
        """Generators bind the graph at construction: reweighting creates a
        new graph, and the old generator keeps the old probabilities."""
        base = preferential_attachment(50, 3, seed=1, reciprocal=0.3)
        g1 = wc_weights(base)
        gen = SubsimICGenerator(g1)
        from repro.graphs.weights import uniform_weights

        g2 = uniform_weights(base, 0.0)
        rng = np.random.default_rng(0)
        sizes = [len(gen.generate(rng)) for _ in range(200)]
        assert max(sizes) > 1  # still samples from g1, not the zeroed g2

    def test_empty_graph_algorithm_rejected(self):
        g = build_graph(1, [], [], [])
        from repro.algorithms.opimc import OPIMC

        with pytest.raises(ConfigurationError):
            OPIMC(g).run(2)  # k > n
