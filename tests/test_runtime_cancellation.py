"""Cooperative cancellation: token semantics and mid-run degradation."""

import pytest

from repro.core.registry import get_algorithm
from repro.runtime import CancellationToken, FaultInjector
from repro.utils.exceptions import CancelledError, ExecutionInterrupted

K = 5
EPS = 0.3
SEED = 3


class TestToken:
    def test_initially_clear(self):
        token = CancellationToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while clear

    def test_cancel_sets_reason_and_raises(self):
        token = CancellationToken()
        token.cancel("user pressed ctrl-c")
        assert token.cancelled
        assert token.reason == "user pressed ctrl-c"
        with pytest.raises(CancelledError) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.reason == "cancelled"
        assert isinstance(excinfo.value, ExecutionInterrupted)

    def test_cancel_idempotent_keeps_first_reason(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"


class TestCancelledRuns:
    def test_pre_cancelled_token_yields_partial(self, wc_graph):
        token = CancellationToken()
        token.cancel()
        result = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, cancel=token
        )
        assert result.status == "partial"
        assert result.stop_reason == "cancelled"
        assert result.num_rr_sets == 0

    @pytest.mark.parametrize("name", ["opim-c", "hist", "subsim"])
    def test_mid_run_cancellation_keeps_progress(self, wc_graph, name):
        # The delay-mode fault injector doubles as a deterministic mid-run
        # trigger: its "sleep" fires exactly once at the 50th RR set, and we
        # make it flip the token instead of sleeping.
        token = CancellationToken()
        trigger = FaultInjector(
            at_rr_set=50,
            mode="delay",
            sleep=lambda _seconds: token.cancel("triggered at set 50"),
        )
        result = get_algorithm(name, wc_graph).run(
            K, eps=EPS, seed=SEED, cancel=token, fault_injector=trigger
        )
        assert result.status == "partial"
        assert result.stop_reason == "cancelled"
        assert result.num_rr_sets >= 50  # work before the trigger is kept
        assert len(result.seeds) <= K

    def test_uncancelled_token_changes_nothing(self, wc_graph):
        token = CancellationToken()
        plain = get_algorithm("opim-c", wc_graph).run(K, eps=EPS, seed=SEED)
        watched = get_algorithm("opim-c", wc_graph).run(
            K, eps=EPS, seed=SEED, cancel=token
        )
        assert watched.status == "complete"
        assert watched.seeds == plain.seeds
        assert watched.num_rr_sets == plain.num_rr_sets

    def test_cancelled_non_rr_algorithm(self, wc_graph):
        token = CancellationToken()
        token.cancel()
        result = get_algorithm("greedy-mc", wc_graph).run(
            K, seed=SEED, cancel=token
        )
        assert result.status == "partial"
        assert result.seeds == []
