"""Speculative pipelined doubling: bit-identity, budgets, interrupts.

The contract under test (``repro/engine/prefetch.py``): with
``prefetch="next-round"`` the doubling loop overlaps next-round RR
generation with this round's selection/validation, and every observable
output — seeds, bounds, pool sizes, per-round trace annotations — is
**bit-identical** to the serial loop, across unsharded and sharded banks.
Interrupts land as clean partials, budgets are never overshot, and the
refine ladder composes with speculation unchanged.
"""

from __future__ import annotations

import pytest

from repro.core.registry import get_algorithm
from repro.engine.prefetch import (
    PrefetchController,
    banks_independent,
    validate_prefetch_mode,
)
from repro.engine.session import QuerySession
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.observability import MetricsRegistry
from repro.runtime import Budget, CancellationToken, FaultInjector
from repro.utils.exceptions import CancelledError, ConfigurationError

K = 8
EPS = 0.25
SEED = 11


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(300, 3, seed=1, reciprocal=0.3))


def _run(graph, prefetch, algorithm="subsim", **kwargs):
    metrics = MetricsRegistry()
    result = get_algorithm(algorithm, graph).run(
        K, eps=EPS, seed=SEED, metrics=metrics, prefetch=prefetch, **kwargs
    )
    return result, metrics


def _outputs(result):
    return (
        result.seeds,
        result.lower_bound,
        result.upper_bound,
        result.num_rr_sets,
        result.status,
        result.stop_reason,
    )


def _session_outputs(graph, prefetch, shards=None, queries=2, **kwargs):
    session = QuerySession(
        graph, "subsim", seed=7, shards=shards, prefetch=prefetch
    )
    try:
        results = [
            session.maximize(K + 2 * i, eps=EPS, **kwargs)
            for i in range(queries)
        ]
        return [_outputs(r) for r in results], session.metrics
    finally:
        session.close()


class TestKnob:
    def test_validate_accepts_known_modes(self):
        assert validate_prefetch_mode("off") == "off"
        assert validate_prefetch_mode("next-round") == "next-round"

    def test_validate_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            validate_prefetch_mode("sometimes")

    def test_run_rejects_unknown(self, graph):
        with pytest.raises(ConfigurationError):
            get_algorithm("subsim", graph).run(K, eps=EPS, prefetch="later")

    def test_prefetch_with_checkpoint_rejected(self, graph, tmp_path):
        with pytest.raises(ConfigurationError):
            get_algorithm("subsim", graph).run(
                K,
                eps=EPS,
                seed=SEED,
                prefetch="next-round",
                checkpoint=str(tmp_path / "ck.npz"),
            )

    def test_server_config_validates_prefetch(self):
        from repro.serving.config import ServerConfig

        assert ServerConfig(prefetch="next-round").prefetch == "next-round"
        with pytest.raises(ConfigurationError):
            ServerConfig(prefetch="eager")


class TestBitIdentity:
    """Seed-for-seed equality of prefetch on vs. off, every bank kind."""

    @pytest.mark.parametrize("algorithm", ["opim-c", "subsim", "hist"])
    def test_transient_run_identical(self, graph, algorithm):
        off, m_off = _run(graph, "off", algorithm=algorithm)
        on, m_on = _run(graph, "next-round", algorithm=algorithm)
        assert _outputs(off) == _outputs(on)
        # Transient banks share the run RNG: provably dependent, so the
        # pipeline must have (correctly) refused to speculate at all.
        assert m_on.value("generation.speculative_sets") == 0

    def test_session_unsharded_identical_and_speculative(self, graph):
        off, _ = _session_outputs(graph, "off")
        on, metrics = _session_outputs(graph, "next-round")
        assert off == on
        assert metrics.value("generation.speculative_sets") > 0
        assert metrics.value("generation.speculation_hits") > 0

    def test_session_sharded_identical_and_speculative(self, graph):
        off, _ = _session_outputs(graph, "off", shards=2)
        on, metrics = _session_outputs(graph, "next-round", shards=2)
        assert off == on
        assert metrics.value("generation.speculative_sets") > 0
        assert metrics.value("generation.speculation_hits") > 0

    def test_round_annotations_identical(self, graph):
        """Canonical per-round records (theta/bounds) match on vs. off."""
        from repro.observability import build_run_report

        def rounds(prefetch):
            result, metrics = _run(graph, prefetch, trace=True)
            report = build_run_report(
                result, graph, seed=SEED, metrics=metrics,
                trace=result.extras.get("trace"),
            )
            canonical = report.canonical()
            assert "pipeline_overlap_seconds" not in canonical["gauges"]
            return canonical.get("rounds")

        off = rounds("off")
        assert off, "traced run must surface per-round records"
        assert all("theta" in r and "bound_ratio" in r for r in off)
        assert off == rounds("next-round")

    def test_parallel_bootstrap_matches_forced_serial(self, graph, monkeypatch):
        """ensure_pair's concurrent bootstrap == the serial bootstrap."""
        serial, _ = _session_outputs(graph, "off", queries=1)
        import repro.engine.prefetch as prefetch_mod

        monkeypatch.setattr(
            prefetch_mod, "banks_independent", lambda a, b: False
        )
        forced, metrics = _session_outputs(graph, "off", queries=1)
        assert metrics.value("generation.speculative_sets") == 0
        assert serial == forced


class TestBudgets:
    def test_rr_budget_never_overshot(self, graph):
        budget = Budget(max_rr_sets=200)
        off, _ = _run(graph, "off", budget=budget)
        on, metrics = _run(graph, "next-round", budget=Budget(max_rr_sets=200))
        assert _outputs(off) == _outputs(on)
        assert on.num_rr_sets <= 200
        # The conservative launch gate refuses speculation under a set cap
        # it cannot prove: the serial fallback enforces mid-generation.
        assert metrics.value("generation.speculative_sets") == 0

    def test_edge_budget_disables_speculation(self, graph):
        off, _ = _run(graph, "off", budget=Budget(max_edges_examined=4000))
        on, metrics = _run(
            graph, "next-round", budget=Budget(max_edges_examined=4000)
        )
        assert _outputs(off) == _outputs(on)
        assert metrics.value("generation.speculative_sets") == 0

    def test_byte_capped_session_identical(self, graph):
        cap = 512 * 1024
        off, _ = _session_outputs(graph, "off", shards=2)
        session = QuerySession(
            graph, "subsim", seed=7, shards=2,
            byte_cap=cap, prefetch="next-round",
        )
        try:
            results = [
                _outputs(session.maximize(K + 2 * i, eps=EPS))
                for i in range(2)
            ]
        finally:
            session.close()
        assert results == off


class TestRefineLadder:
    def test_sketch_escalation_with_prefetch_identical(self, graph):
        """The refine hook re-selects at the same theta while a
        speculation is in flight; escalations and outputs must match."""
        session_kwargs = {"coverage_backend": "sketch"}
        off, m_off = _session_outputs(graph, "off", **session_kwargs)
        on, m_on = _session_outputs(graph, "next-round", **session_kwargs)
        assert off == on
        assert m_on.value("generation.speculative_sets") > 0
        assert m_off.value("coverage.sketch_escalations") == m_on.value(
            "coverage.sketch_escalations"
        )


class TestInterrupts:
    @pytest.mark.parametrize("shards", [None, 2])
    def test_mid_run_cancel_yields_clean_partial(self, graph, shards):
        session = QuerySession(
            graph, "subsim", seed=7, shards=shards, prefetch="next-round"
        )
        try:
            token = CancellationToken()
            trigger = FaultInjector(
                at_rr_set=150,
                mode="delay",
                sleep=lambda _s: token.cancel("triggered"),
            )
            first = session.maximize(
                K, eps=EPS, cancel=token, fault_injector=trigger
            )
            assert first.status == "partial"
            assert first.stop_reason == "cancelled"
            assert first.num_rr_sets > 0
            # The banks came out of the interrupt consistent: the next
            # query completes and matches a never-interrupted session.
            second = session.maximize(K, eps=EPS)
        finally:
            session.close()
        reference = QuerySession(
            graph, "subsim", seed=7, shards=shards, prefetch="next-round"
        )
        try:
            clean = reference.maximize(K, eps=EPS)
        finally:
            reference.close()
        assert second.status == "complete"
        assert second.seeds == clean.seeds

    def test_abort_in_flight_speculation(self, graph):
        """An external cancel (the serving-deadline shape) that lands at
        the sync point with speculations still in flight: the pipeline
        aborts them, dirty-marks the sharded reusable banks, and eviction
        restores determinism for the next query."""
        from repro.rrsets.subsim import SubsimICGenerator
        from repro.runtime.control import RunControl

        session = QuerySession(
            graph, "subsim", seed=7, shards=2, prefetch="next-round"
        )
        try:
            provider = session.provider
            provider.begin_query(None)
            bank1 = provider.get(
                "opimc.r1", lambda: SubsimICGenerator(graph)
            )
            bank2 = provider.get(
                "opimc.r2", lambda: SubsimICGenerator(graph)
            )
            bank1.ensure(64)
            bank2.ensure(64)
            controller = PrefetchController(metrics=session.metrics)
            assert controller.launch(bank1, bank2, 128)
            token = CancellationToken()
            token.cancel("deadline")
            bank1.generator.control = RunControl(token=token)
            with pytest.raises(CancelledError):
                controller.land(bank1, bank2, 128)
            assert len(controller._pending) == 2
            controller.finish(interrupted=True)
            bank1.generator.control = None
            assert session.metrics.value(
                "generation.speculation_cancelled"
            ) == 2
            assert bank1._dirty and bank2._dirty
            provider.end_query()
            assert session.metrics.value("bank.evictions") >= 2
            second = session.maximize(K, eps=EPS)
        finally:
            session.close()
        reference = QuerySession(graph, "subsim", seed=7, shards=2)
        try:
            clean = reference.maximize(K, eps=EPS)
        finally:
            reference.close()
        assert second.seeds == clean.seeds


class TestBanksIndependent:
    def test_shared_rng_dependent(self, graph):
        import numpy as np

        class FakeBank:
            def __init__(self, rng):
                self.rng = rng

        rng = np.random.default_rng(0)
        assert not banks_independent(FakeBank(rng), FakeBank(rng))
        assert banks_independent(
            FakeBank(np.random.default_rng(0)), FakeBank(np.random.default_rng(1))
        )

    def test_rngless_bank_independent(self):
        class Sharded:
            pass

        assert banks_independent(Sharded(), Sharded())
