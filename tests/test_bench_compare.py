"""Unit tests for the nightly benchmark regression gate (tools/bench_compare.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[1] / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def write_results(root, session=1.0, generalw=(10.0, 160.0), dynamic=8.0):
    root.mkdir(parents=True, exist_ok=True)
    (root / "BENCH_session.json").write_text(
        json.dumps({"second_query_reduction": session})
    )
    (root / "BENCH_generalw.json").write_text(json.dumps({
        "workloads": {
            "subsim-skewed": {"batched_speedup": generalw[0]},
            "lt": {"batched_speedup": generalw[1]},
        }
    }))
    (root / "BENCH_dynamic.json").write_text(
        json.dumps({"repair_speedup": dynamic})
    )


@pytest.fixture
def dirs(tmp_path):
    base = tmp_path / "baseline"
    cur = tmp_path / "current"
    write_results(base)
    return base, cur


class TestCompare:
    def test_identical_results_pass(self, dirs, capsys):
        base, cur = dirs
        write_results(cur)
        assert bench_compare.main(
            ["--baseline-dir", str(base), "--current-dir", str(cur)]
        ) == 0
        out = capsys.readouterr().out
        assert "within threshold" in out

    def test_small_drift_tolerated(self, dirs):
        base, cur = dirs
        write_results(cur, session=0.9, generalw=(8.0, 130.0), dynamic=6.5)
        assert bench_compare.main(
            ["--baseline-dir", str(base), "--current-dir", str(cur)]
        ) == 0

    def test_large_regression_fails(self, dirs, capsys):
        base, cur = dirs
        write_results(cur, dynamic=2.0)  # 8.0 -> 2.0: way past 25%
        assert bench_compare.main(
            ["--baseline-dir", str(base), "--current-dir", str(cur)]
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "repair_speedup" in out

    def test_wildcard_covers_each_workload(self, dirs, capsys):
        base, cur = dirs
        write_results(cur, generalw=(10.0, 40.0))  # only lt regresses
        assert bench_compare.main(
            ["--baseline-dir", str(base), "--current-dir", str(cur)]
        ) == 1
        out = capsys.readouterr().out
        assert "workloads.lt.batched_speedup" in out
        assert "FAIL" in out

    def test_commit_message_waiver_downgrades_failure(self, dirs, capsys):
        base, cur = dirs
        write_results(cur, dynamic=2.0)
        code = bench_compare.main([
            "--baseline-dir", str(base),
            "--current-dir", str(cur),
            "--commit-message",
            "tune repair path\n\nknown slowdown [bench-waiver]",
        ])
        assert code == 0
        assert "WAIVED" in capsys.readouterr().out

    def test_missing_files_are_skipped_not_failed(self, dirs, capsys):
        base, cur = dirs
        write_results(cur)
        (cur / "BENCH_dynamic.json").unlink()  # not produced this run
        assert bench_compare.main(
            ["--baseline-dir", str(base), "--current-dir", str(cur)]
        ) == 0
        out = capsys.readouterr().out
        # BENCH_rrgen.json has no committed baseline; BENCH_dynamic.json was
        # not produced — both must be reported, neither may fail the gate
        assert "BENCH_rrgen.json: no committed baseline" in out
        assert "BENCH_dynamic.json: not produced" in out

    def test_metric_vanishing_from_current_fails(self, dirs):
        base, cur = dirs
        write_results(cur)
        (cur / "BENCH_generalw.json").write_text(
            json.dumps({"workloads": {"lt": {"batched_speedup": 160.0}}})
        )
        assert bench_compare.main(
            ["--baseline-dir", str(base), "--current-dir", str(cur)]
        ) == 1


class TestResolvePath:
    def test_plain_path(self):
        doc = {"a": {"b": 2.5}}
        assert dict(bench_compare.resolve_path(doc, "a.b")) == {"a.b": 2.5}

    def test_wildcard_is_sorted_and_numeric_only(self):
        doc = {"w": {"y": {"m": 2.0}, "x": {"m": 1.0}, "z": {"m": "no"}}}
        assert list(bench_compare.resolve_path(doc, "w.*.m")) == [
            ("w.x.m", 1.0), ("w.y.m", 2.0),
        ]

    def test_missing_path_yields_nothing(self):
        assert list(bench_compare.resolve_path({"a": 1}, "b.c")) == []

    def test_headlines_cover_committed_results(self):
        """Every committed full-size result file has a headline extractor."""
        results = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        )
        covered = {filename for filename, _, _ in bench_compare.HEADLINES}
        for path in results.glob("BENCH_*.json"):
            if path.name.endswith("_quick.json"):
                continue
            assert path.name in covered, f"no headline metric for {path.name}"
            doc = json.loads(path.read_text())
            dotted = next(
                d for f, d, _ in bench_compare.HEADLINES if f == path.name
            )
            assert dict(bench_compare.resolve_path(doc, dotted)), (
                f"{path.name}: headline path {dotted!r} resolves to nothing"
            )
