"""Checkpoint/resume: storage round-trips and bit-identical recovery.

The headline contract: a run killed mid-phase by the deterministic fault
injector, then resumed from its checkpoint, produces the *same* seed set
and the *same* work counters as an uninterrupted run — bit-identical, not
merely statistically equivalent.
"""

import numpy as np
import pytest

from repro.algorithms.hist import HIST
from repro.algorithms.opimc import OPIMC
from repro.runtime import CheckpointStore, FaultInjector
from repro.runtime.checkpoint import (
    collection_from_arrays,
    collection_to_arrays,
    counters_from_dict,
    counters_to_dict,
)
from repro.rrsets.base import GenerationCounters
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import (
    CheckpointError,
    ConfigurationError,
    InjectedFault,
)

K = 8
EPS = 0.25
SEED = 11


def _same_execution(a, b):
    """Bit-identical runs agree on output *and* on every work counter."""
    assert a.seeds == b.seeds
    assert a.num_rr_sets == b.num_rr_sets
    assert a.edges_examined == b.edges_examined
    assert a.rng_draws == b.rng_draws


class TestArrayRoundTrips:
    def test_collection_round_trip(self):
        coll = RRCollection(10)
        for rr in ([0, 3, 7], [2], [9, 1, 4, 5]):
            coll.add(rr)
        flat = collection_to_arrays(coll)
        back = collection_from_arrays(flat["data"], flat["sizes"], flat["n"])
        assert back.num_rr == coll.num_rr
        assert [list(rr) for rr in back.rr_sets] == [
            list(rr) for rr in coll.rr_sets
        ]
        assert back.coverage([3]) == coll.coverage([3])

    def test_empty_collection_round_trip(self):
        coll = RRCollection(5)
        flat = collection_to_arrays(coll)
        back = collection_from_arrays(flat["data"], flat["sizes"], flat["n"])
        assert back.num_rr == 0
        assert back.n == 5

    def test_counters_round_trip(self):
        counters = GenerationCounters(
            edges_examined=17, rng_draws=9, nodes_added=4, sets_generated=2
        )
        assert counters_from_dict(counters_to_dict(counters)) == counters


class TestStore:
    def test_save_load_round_trip_with_pools(self, tmp_path):
        pool = RRCollection(6)
        pool.add([1, 2])
        pool.add([5])
        store = CheckpointStore(tmp_path / "run.npz")
        # numpy scalars leak into metadata from counters; the store must
        # coerce them rather than crash mid-checkpoint.
        store.save(
            {"round": np.int64(3), "lower": np.float64(1.5), "seeds": [4]},
            {"pool1": pool},
        )
        meta, pools = store.load()
        assert meta == {"round": 3, "lower": 1.5, "seeds": [4]}
        assert pools["pool1"].num_rr == 2
        assert list(pools["pool1"].rr_sets[0]) == [1, 2]

    def test_maybe_save_thins_to_interval(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.npz", every=3)
        saved = [
            store.maybe_save(lambda: ({"round": i}, {}))
            for i in range(1, 8)
        ]
        # First call always saves; then every third call after it.
        assert saved == [True, False, False, True, False, False, True]
        assert store.load()[0] == {"round": 7}

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "run.npz", every=0)

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "run.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(CheckpointError) as excinfo:
            CheckpointStore(path).load()
        assert excinfo.value.__cause__ is not None

    def test_clear_removes_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.npz")
        store.save({"round": 1})
        assert store.exists()
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent on a missing file


class TestResumeValidation:
    def test_resume_without_checkpoint_path_rejected(self, wc_graph):
        with pytest.raises(ConfigurationError):
            OPIMC(wc_graph).run(K, eps=EPS, seed=SEED, resume=True)

    def test_resume_with_mismatched_query_rejected(self, wc_graph, tmp_path):
        path = tmp_path / "run.npz"
        with pytest.raises(InjectedFault):
            OPIMC(wc_graph).run(
                K,
                eps=EPS,
                seed=SEED,
                checkpoint=path,
                fault_injector=FaultInjector(at_rr_set=400),
            )
        assert path.exists()
        with pytest.raises(CheckpointError):
            OPIMC(wc_graph).run(
                K + 1, eps=EPS, seed=SEED, checkpoint=path, resume=True
            )


class TestBitIdenticalResume:
    def test_opimc_crash_resume_matches_uninterrupted(
        self, wc_graph, tmp_path
    ):
        baseline = OPIMC(wc_graph).run(K, eps=EPS, seed=SEED)
        path = tmp_path / "opimc.npz"
        with pytest.raises(InjectedFault):
            OPIMC(wc_graph).run(
                K,
                eps=EPS,
                seed=SEED,
                checkpoint=path,
                fault_injector=FaultInjector(at_rr_set=400),
            )
        assert path.exists()
        resumed = OPIMC(wc_graph).run(
            K, eps=EPS, seed=SEED, checkpoint=path, resume=True
        )
        assert resumed.status == "complete"
        _same_execution(resumed, baseline)
        # A completed resume cleans up after itself.
        assert not path.exists()

    def test_opimc_resume_with_thinned_checkpoints(self, wc_graph, tmp_path):
        baseline = OPIMC(wc_graph).run(K, eps=EPS, seed=SEED)
        path = tmp_path / "opimc.npz"
        with pytest.raises(InjectedFault):
            OPIMC(wc_graph).run(
                K,
                eps=EPS,
                seed=SEED,
                checkpoint=path,
                checkpoint_every=2,
                fault_injector=FaultInjector(at_rr_set=900),
            )
        # With every=2 the surviving checkpoint is an *earlier* round, so
        # the resume replays more work — and must still land identically.
        resumed = OPIMC(wc_graph).run(
            K,
            eps=EPS,
            seed=SEED,
            checkpoint=path,
            checkpoint_every=2,
            resume=True,
        )
        _same_execution(resumed, baseline)

    def test_hist_crash_mid_im_phase_resume_matches(self, wc_graph, tmp_path):
        # fixed_b=2 with this seed puts RR set #600 inside the IM-Sentinel
        # phase, after at least one round checkpoint has been written — the
        # hardest resume path (two-phase state + restored RNG + pools).
        baseline = HIST(wc_graph, fixed_b=2).run(K, eps=EPS, seed=SEED)
        path = tmp_path / "hist.npz"
        with pytest.raises(InjectedFault):
            HIST(wc_graph, fixed_b=2).run(
                K,
                eps=EPS,
                seed=SEED,
                checkpoint=path,
                fault_injector=FaultInjector(at_rr_set=600),
            )
        assert path.exists()
        resumed = HIST(wc_graph, fixed_b=2).run(
            K, eps=EPS, seed=SEED, checkpoint=path, resume=True
        )
        assert resumed.status == "complete"
        _same_execution(resumed, baseline)
        assert not path.exists()

    def test_crash_before_first_checkpoint_restarts_cleanly(
        self, wc_graph, tmp_path
    ):
        baseline = HIST(wc_graph).run(K, eps=EPS, seed=SEED)
        path = tmp_path / "hist.npz"
        with pytest.raises(InjectedFault):
            HIST(wc_graph).run(
                K,
                eps=EPS,
                seed=SEED,
                checkpoint=path,
                # Dies in the sentinel phase, before any round boundary.
                fault_injector=FaultInjector(at_rr_set=50),
            )
        # resume=True with no checkpoint on disk degrades to a fresh run.
        resumed = HIST(wc_graph).run(
            K, eps=EPS, seed=SEED, checkpoint=path, resume=True
        )
        _same_execution(resumed, baseline)

    def test_checkpointed_complete_run_is_unchanged(self, wc_graph, tmp_path):
        plain = OPIMC(wc_graph).run(K, eps=EPS, seed=SEED)
        path = tmp_path / "opimc.npz"
        checkpointed = OPIMC(wc_graph).run(
            K, eps=EPS, seed=SEED, checkpoint=path
        )
        _same_execution(checkpointed, plain)
        assert not path.exists()  # cleared on completion
