"""Tests for linear-threshold RR-set generation."""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import cycle_graph, path_graph, preferential_attachment
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    uniform_weights,
)
from repro.rrsets.lt import LTGenerator


class TestPrecondition:
    def test_rejects_in_sums_above_one(self):
        g = uniform_weights(cycle_graph(5), 1.0)
        # cycle: each node one in-edge of prob 1 -> sums exactly 1, allowed
        LTGenerator(g)
        bad = build_graph(3, [0, 1], [2, 2], [0.8, 0.8])
        with pytest.raises(ValueError):
            LTGenerator(bad)


class TestWalkSemantics:
    def test_path_full_weight_gives_prefix(self, path10, rng):
        gen = LTGenerator(path10)
        for root in (0, 3, 9):
            assert sorted(gen.generate(rng, root=root)) == list(range(root + 1))

    def test_cycle_walk_terminates_on_revisit(self, cycle8, rng):
        gen = LTGenerator(cycle8)
        rr = gen.generate(rng, root=0)
        assert sorted(rr) == list(range(8))  # walks all the way round once

    def test_walk_is_a_simple_path(self, rng):
        g = lt_normalized_weights(
            exponential_weights(
                preferential_attachment(100, 3, seed=1, reciprocal=0.3), seed=2
            )
        )
        gen = LTGenerator(g)
        for _ in range(300):
            rr = gen.generate(rng)
            assert len(rr) == len(set(rr))

    def test_stop_probability(self, rng):
        # single edge 0 -> 1 with weight 0.3: RR(1) contains 0 w.p. 0.3
        g = build_graph(2, [0], [1], [0.3])
        gen = LTGenerator(g)
        hits = sum(len(gen.generate(rng, root=1)) == 2 for _ in range(30_000))
        assert abs(hits / 30_000 - 0.3) < 0.012

    def test_live_edge_choice_proportional_to_weight(self, rng):
        # two in-edges of node 2 with weights 0.6 / 0.2; no-edge w.p. 0.2
        g = build_graph(3, [0, 1], [2, 2], [0.6, 0.2])
        gen = LTGenerator(g)
        counts = {0: 0, 1: 0, None: 0}
        trials = 30_000
        for _ in range(trials):
            rr = gen.generate(rng, root=2)
            if len(rr) == 1:
                counts[None] += 1
            else:
                counts[rr[1]] += 1
        assert abs(counts[0] / trials - 0.6) < 0.012
        assert abs(counts[1] / trials - 0.2) < 0.012
        assert abs(counts[None] / trials - 0.2) < 0.012


class TestSentinel:
    def test_stops_at_sentinel(self, path10, rng):
        gen = LTGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[4] = True
        assert sorted(gen.generate(rng, root=8, stop_mask=stop)) == [4, 5, 6, 7, 8]
        assert gen.counters.sentinel_hits == 1

    def test_root_sentinel(self, path10, rng):
        gen = LTGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[8] = True
        assert gen.generate(rng, root=8, stop_mask=stop) == [8]


class TestCounters:
    def test_counts_walk_steps(self, path10, rng):
        gen = LTGenerator(path10)
        gen.generate(rng, root=9)
        assert gen.counters.rng_draws == 9  # one draw per walk step
        assert gen.counters.edges_examined == 9

    def test_mask_reset(self, path10, rng):
        gen = LTGenerator(path10)
        for root in range(10):
            gen.generate(rng, root=root)
        assert not gen._visited.any()
