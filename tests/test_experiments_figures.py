"""Smoke tests for the per-figure experiment functions at tiny scale.

The benchmarks run these at full size and assert the paper's shape; here
we only verify structure, determinism, and parameter plumbing, keeping the
unit suite fast.
"""

import pytest

from repro.experiments.extensions import lt_model_rows, seed_quality_rows
from repro.experiments.figures import (
    figure1_rows,
    figure2_rows,
    figure3_rows,
    figure4_rows,
    figure5_rows,
    figure6_rows,
    figure7_rows,
)

TINY = {"scale": 0.012, "seed": 1}


class TestFigure1:
    def test_structure(self):
        rows = figure1_rows(
            datasets=["pokec-like"],
            k=5,
            eps=0.5,
            algorithms=("opim-c", "subsim"),
            max_rr_sets=2000,
            **TINY,
        )
        assert len(rows) == 2
        assert {r["algorithm"] for r in rows} == {"opim-c", "subsim"}
        for row in rows:
            assert row["runtime_s"] > 0
            assert row["num_rr_sets"] > 0

    def test_cap_column_present(self):
        rows = figure1_rows(
            datasets=["pokec-like"],
            k=5,
            eps=0.5,
            algorithms=("imm",),
            max_rr_sets=100,
            **TINY,
        )
        assert rows[0]["capped"] in (True, False)


class TestFigure2:
    def test_structure(self):
        rows = figure2_rows(
            datasets=["pokec-like"],
            num_rr=200,
            distributions=("exponential",),
            **TINY,
        )
        assert {r["generator"] for r in rows} == {"vanilla", "subsim"}
        for row in rows:
            assert row["num_rr"] == 200


class TestFigure3:
    def test_structure(self):
        rows = figure3_rows(
            datasets=["pokec-like"], k=10, eps=0.4,
            target_size_fraction=0.15, **TINY,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["hist_avg_rr_size"] > 0
        assert row["size_reduction"] > 0


class TestFigures4And5:
    def test_figure4_covers_all_pairs(self):
        rows = figure4_rows(
            dataset="pokec-like", k_values=(2, 4), eps=0.4,
            target_size_fraction=0.15,
            algorithms=("opim-c", "hist"), **TINY,
        )
        assert len(rows) == 4

    def test_figure5_has_spread(self):
        rows = figure5_rows(
            dataset="pokec-like", k_values=(2, 4), eps=0.4,
            target_size_fraction=0.15, num_simulations=30, **TINY,
        )
        assert all("spread" in r and "spread_fraction_of_n" in r for r in rows)


class TestFigures6And7:
    def test_figure6_ladder(self):
        rows = figure6_rows(
            dataset="pokec-like", k=5, eps=0.4,
            size_fractions=(0.05, 0.15),
            algorithms=("opim-c", "hist"), **TINY,
        )
        targets = {r["target_avg_rr_size"] for r in rows}
        assert len(targets) == 2

    def test_figure7_records_p(self):
        rows = figure7_rows(
            dataset="pokec-like", k=5, eps=0.4,
            size_fractions=(0.1,),
            algorithms=("opim-c",), **TINY,
        )
        assert rows[0]["setting"].startswith("p=")


class TestExtensions:
    def test_lt_rows(self):
        rows = lt_model_rows(
            k=4, eps=0.4, algorithms=("opim-c-lt", "degree"),
            num_simulations=30, **TINY,
        )
        assert all("lt_spread" in r for r in rows)

    def test_seed_quality_sorted_descending(self):
        rows = seed_quality_rows(
            k=4, eps=0.4, algorithms=("subsim", "random"),
            num_simulations=30, **TINY,
        )
        spreads = [r["spread"] for r in rows]
        assert spreads == sorted(spreads, reverse=True)
