"""Unit tests for the per-node HLL coverage sketch primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.greedy import max_coverage_greedy
from repro.coverage.sketch import (
    CoverageSketch,
    SketchBackend,
    estimate_distinct,
    exact_coverage_scan,
    hash_set_ids,
    relative_std_error,
    sketch_max_coverage,
)
from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError


def _pool(graph, count, seed=5):
    pool = RRCollection(graph.n)
    pool.extend(count, VanillaICGenerator(graph), np.random.default_rng(seed))
    return pool


class TestHashing:
    def test_deterministic(self):
        ids = np.arange(1000, dtype=np.int64)
        j1, r1 = hash_set_ids(ids, 8, 42)
        j2, r2 = hash_set_ids(ids, 8, 42)
        np.testing.assert_array_equal(j1, j2)
        np.testing.assert_array_equal(r1, r2)

    def test_seed_changes_layout(self):
        ids = np.arange(1000, dtype=np.int64)
        j1, _ = hash_set_ids(ids, 8, 1)
        j2, _ = hash_set_ids(ids, 8, 2)
        assert not np.array_equal(j1, j2)

    def test_bucket_range_and_rho_positive(self):
        ids = np.arange(5000, dtype=np.int64)
        j, rho = hash_set_ids(ids, 6, 7)
        assert j.min() >= 0 and j.max() < 64
        assert rho.min() >= 1


class TestEstimation:
    @pytest.mark.parametrize("true_count", [50, 500, 5000])
    def test_estimate_within_error_band(self, true_count):
        # One "node" observed in true_count distinct RR sets.
        sketch = CoverageSketch(1, precision=10)
        for start in range(0, true_count, 256):
            stop = min(start + 256, true_count)
            for rr_id in range(start, stop):
                sketch.observe(rr_id, np.zeros(1, dtype=np.int64))
        est = float(estimate_distinct(sketch.registers)[0])
        tol = 5 * relative_std_error(10) * true_count
        assert abs(est - true_count) <= max(tol, 5)

    def test_empty_registers_estimate_zero(self):
        sketch = CoverageSketch(4, precision=8)
        np.testing.assert_allclose(
            estimate_distinct(sketch.registers), np.zeros(4)
        )

    def test_relative_std_error_halves_per_two_bits(self):
        assert relative_std_error(10) == pytest.approx(
            relative_std_error(8) / 2
        )


class TestIncrementalMaintenance:
    def test_observe_batch_matches_ingest_range(self, wc_graph):
        pool = _pool(wc_graph, 200)
        batch = CoverageSketch(wc_graph.n, precision=8)
        batch.ingest_range(pool, 0, pool.num_rr)

        incr = CoverageSketch(wc_graph.n, precision=8)
        sizes = np.diff(pool.rr_indptr[: pool.num_rr + 1])
        incr.observe_batch(
            0, pool.rr_nodes[: int(sizes.sum())], sizes.astype(np.int64)
        )
        np.testing.assert_array_equal(batch.registers, incr.registers)

    def test_attached_sketch_tracks_extend(self, wc_graph):
        pool = _pool(wc_graph, 100)
        sketch = pool.attach_sketch(CoverageSketch(wc_graph.n, precision=8))
        sketch.sync(pool)
        pool.extend(
            50, VanillaICGenerator(wc_graph), np.random.default_rng(9)
        )
        # The appended batch was scattered in incrementally — no rebuild.
        assert not sketch.stale
        assert sketch.num_ingested == pool.num_rr
        reference = CoverageSketch(wc_graph.n, precision=8)
        reference.ingest_range(pool, 0, pool.num_rr)
        np.testing.assert_array_equal(sketch.registers, reference.registers)

    def test_mid_pool_attach_degrades_to_stale(self, wc_graph):
        # A fresh sketch attached to a non-empty pool sees a non-contiguous
        # first append and must mark itself stale, never mis-count.
        pool = _pool(wc_graph, 100)
        sketch = pool.attach_sketch(CoverageSketch(wc_graph.n, precision=8))
        pool.extend(
            10, VanillaICGenerator(wc_graph), np.random.default_rng(9)
        )
        assert sketch.stale
        assert sketch.sync(pool)
        reference = CoverageSketch(wc_graph.n, precision=8)
        reference.ingest_range(pool, 0, pool.num_rr)
        np.testing.assert_array_equal(sketch.registers, reference.registers)

    def test_replace_sets_marks_stale_and_sync_rebuilds(self, wc_graph):
        pool = _pool(wc_graph, 100)
        sketch = CoverageSketch(wc_graph.n, precision=8)
        sketch.ingest_range(pool, 0, pool.num_rr)
        pool.attach_sketch(sketch)
        pool.replace_sets(
            np.array([3], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
            np.array([2], dtype=np.int64),
        )
        assert sketch.stale
        assert sketch.sync(pool)
        reference = CoverageSketch(wc_graph.n, precision=8)
        reference.ingest_range(pool, 0, pool.num_rr)
        np.testing.assert_array_equal(sketch.registers, reference.registers)

    def test_merge_is_register_max(self):
        a = CoverageSketch(2, precision=6)
        b = CoverageSketch(2, precision=6)
        a.observe(0, np.array([0], dtype=np.int64))
        b.observe(1, np.array([1], dtype=np.int64))
        expected = np.maximum(a.registers, b.registers)
        a.merge(b)
        np.testing.assert_array_equal(a.registers, expected)


class TestShardedUnion:
    def test_stride_offset_ingest_merges_losslessly(self, wc_graph):
        """Workers hash globally-distinct ids; register max = exact union.

        Splitting a pool round-robin across two "shards" and ingesting
        each with ``id_stride=2, id_offset=rank`` must merge to exactly
        the registers of one sketch over the unsplit pool — the property
        ShardPool.sketch_registers relies on.
        """
        full = _pool(wc_graph, 180)
        shards = [RRCollection(wc_graph.n), RRCollection(wc_graph.n)]
        for i in range(full.num_rr):
            shards[i % 2].add(full.set_nodes(i))
        parts = []
        for rank, coll in enumerate(shards):
            sketch = CoverageSketch(wc_graph.n, precision=8)
            sketch.ingest_range(
                coll, 0, coll.num_rr, id_stride=2, id_offset=rank
            )
            parts.append(sketch.registers)
        merged = np.maximum.reduce(parts)
        reference = CoverageSketch(wc_graph.n, precision=8)
        reference.ingest_range(full, 0, full.num_rr)
        np.testing.assert_array_equal(merged, reference.registers)


class TestSketchSelection:
    def test_close_to_exact_greedy(self, wc_graph):
        pool = _pool(wc_graph, 400)
        exact = max_coverage_greedy(pool, select=5, topk=5)
        sketch = CoverageSketch(wc_graph.n, precision=10)
        sketch.ingest_range(pool, 0, pool.num_rr)
        picked = sketch_max_coverage(
            sketch.registers, 5, num_rr=pool.num_rr, topk=5
        )
        assert len(picked.seeds) == 5
        assert picked.covered is None
        true_cov = exact_coverage_scan(pool, picked.seeds)
        # The sketch-picked seeds' exact coverage must land within the
        # certified band of the exact optimum.
        eps = 3.0 * relative_std_error(10)
        assert true_cov >= exact.coverage * (1 - eps)

    def test_exact_scan_matches_pool_coverage(self, wc_graph):
        pool = _pool(wc_graph, 150)
        seeds = max_coverage_greedy(pool, select=4, topk=4).seeds
        assert exact_coverage_scan(pool, seeds) == pool.coverage(seeds)

    def test_coverage_capped_at_num_rr(self, wc_graph):
        pool = _pool(wc_graph, 60)
        sketch = CoverageSketch(wc_graph.n, precision=6)
        sketch.ingest_range(pool, 0, pool.num_rr)
        picked = sketch_max_coverage(
            sketch.registers, 8, num_rr=pool.num_rr, topk=8
        )
        assert 0 <= picked.coverage <= pool.num_rr


class TestSketchBackendLadder:
    def test_escalate_walks_the_ladder(self):
        backend = SketchBackend(precision=8, max_precision=10)
        assert backend.can_escalate()
        assert backend.escalate() == 9
        assert backend.escalate() == 10
        assert not backend.can_escalate()
        assert backend.escalations == 2

    def test_epsilon_tightens_with_precision(self):
        coarse = SketchBackend(precision=6)
        fine = SketchBackend(precision=12)
        assert fine.epsilon_sketch < coarse.epsilon_sketch

    def test_certified_upper_inflates_and_caps(self, wc_graph):
        pool = _pool(wc_graph, 50)
        backend = SketchBackend(precision=8)
        inflated = backend.certified_upper_coverage(40.0, pool.num_rr)
        assert inflated == pytest.approx(40.0 * (1 + backend.epsilon_sketch))
        assert backend.certified_upper_coverage(1e9, pool.num_rr) == pool.num_rr

    def test_certificate_shape(self):
        backend = SketchBackend(precision=8, max_precision=12)
        cert = backend.certificate()
        assert cert["backend"] == "sketch"
        assert cert["precision"] == 8
        assert cert["epsilon_sketch"] == pytest.approx(backend.epsilon_sketch)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="precision"):
            SketchBackend(precision=2)
        with pytest.raises(ConfigurationError, match="max_precision"):
            SketchBackend(precision=10, max_precision=8)
        with pytest.raises(ConfigurationError, match="confidence"):
            SketchBackend(confidence=0.0)

    def test_celf_unsupported(self, wc_graph):
        pool = _pool(wc_graph, 30)
        with pytest.raises(ConfigurationError, match="CELF"):
            SketchBackend().celf(pool, 3)
