"""Tests for the index-free sorted-descending subset sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.sorted_sampler import sample_sorted_descending


class TestStructure:
    def test_empty(self, rng):
        assert sample_sorted_descending([], rng) == []

    def test_all_zero(self, rng):
        assert sample_sorted_descending([0.0, 0.0], rng) == []

    def test_all_one(self, rng):
        assert sorted(sample_sorted_descending([1.0] * 6, rng)) == list(range(6))

    def test_validate_rejects_unsorted(self, rng):
        with pytest.raises(ValueError):
            sample_sorted_descending([0.1, 0.9], rng, validate=True)

    def test_validate_accepts_sorted(self, rng):
        sample_sorted_descending([0.9, 0.1], rng, validate=True)

    def test_no_validation_by_default(self, rng):
        # Without validate the function trusts the caller (hot path).
        sample_sorted_descending([0.1, 0.9], rng)

    def test_unique_in_range(self, rng):
        probs = np.sort(np.linspace(0.01, 0.95, 23))[::-1]
        for _ in range(300):
            out = sample_sorted_descending(probs, rng)
            assert len(out) == len(set(out))
            assert all(0 <= i < 23 for i in out)


class TestDistribution:
    def test_marginal_inclusion(self, rng):
        probs = np.array([0.9, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05, 0.01])
        trials = 30_000
        counts = np.zeros(len(probs))
        for _ in range(trials):
            for i in sample_sorted_descending(probs, rng):
                counts[i] += 1
        freqs = counts / trials
        assert np.all(np.abs(freqs - probs) < 0.012)

    def test_marginals_with_ones_prefix(self, rng):
        probs = np.array([1.0, 1.0, 0.4, 0.1])
        trials = 30_000
        counts = np.zeros(4)
        for _ in range(trials):
            for i in sample_sorted_descending(probs, rng):
                counts[i] += 1
        freqs = counts / trials
        assert freqs[0] == 1.0 and freqs[1] == 1.0
        assert abs(freqs[2] - 0.4) < 0.012
        assert abs(freqs[3] - 0.1) < 0.012

    def test_independence(self, rng):
        probs = np.array([0.6, 0.5, 0.25, 0.1])
        trials = 30_000
        both = 0
        for _ in range(trials):
            out = set(sample_sorted_descending(probs, rng))
            if 1 in out and 3 in out:
                both += 1
        assert abs(both / trials - 0.5 * 0.1) < 0.012

    def test_long_tail_expected_size(self, rng):
        probs = np.sort(np.full(64, 0.02))[::-1]
        sizes = [
            len(sample_sorted_descending(probs, rng)) for _ in range(20_000)
        ]
        assert abs(np.mean(sizes) - 64 * 0.02) < 0.05


@settings(max_examples=80, deadline=None)
@given(
    probs=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=40),
    seed=st.integers(0, 2**31),
)
def test_sorted_structural_invariants(probs, seed):
    probs = sorted(probs, reverse=True)
    rng = np.random.default_rng(seed)
    out = sample_sorted_descending(probs, rng)
    assert len(out) == len(set(out))
    for i in out:
        assert 0 <= i < len(probs)
        assert probs[i] > 0.0
    must_have = {i for i, p in enumerate(probs) if p == 1.0}
    assert must_have <= set(out)
