"""Tests for the PageRank heuristic."""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankSeeds, pagerank_scores
from repro.graphs.csr import build_graph
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.utils.exceptions import ConfigurationError


class TestPageRankScores:
    def test_sums_to_one(self):
        g = preferential_attachment(200, 3, seed=1, reciprocal=0.3)
        scores = pagerank_scores(g)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_cycle_uniform(self):
        scores = pagerank_scores(cycle_graph(6))
        assert np.allclose(scores, 1 / 6, atol=1e-8)

    def test_star_center_collects_mass_forward(self):
        # Edges leaf -> center: forward PageRank concentrates at the center.
        g = star_graph(10, center_out=False)
        scores = pagerank_scores(g)
        assert scores[0] == scores.max()

    def test_reverse_ranks_broadcasters(self):
        # Edges center -> leaves: REVERSE PageRank ranks the center first,
        # which is exactly the influence-relevant ordering.
        g = star_graph(10, center_out=True)
        scores = pagerank_scores(g, reverse=True)
        assert scores[0] == scores.max()

    def test_dangling_mass_preserved(self):
        g = path_graph(4)  # node 3 dangles
        scores = pagerank_scores(g)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_damping_validation(self):
        g = path_graph(3)
        with pytest.raises(ConfigurationError):
            pagerank_scores(g, damping=1.0)
        with pytest.raises(ConfigurationError):
            pagerank_scores(g, damping=0.0)

    def test_known_two_node_chain(self):
        # 0 -> 1 with damping d: r0 = (1-d)/2, r1 = (1-d)/2 + d*r0 ... with
        # dangling node 1 redistributing. Verify the stationary equations.
        g = build_graph(2, [0], [1], [1.0])
        d = 0.85
        r = pagerank_scores(g, damping=d)
        # stationarity: r = (1-d)/n + d*(A r + dangling/n)
        expected_r1 = (1 - d) / 2 + d * (r[0] + r[1] / 2)
        assert r[1] == pytest.approx(expected_r1, abs=1e-6)


class TestPageRankSeeds:
    def test_star_picks_center(self):
        g = star_graph(10, center_out=True)
        res = PageRankSeeds(g).run(1, seed=0)
        assert res.seeds == [0]

    def test_distinct_seeds(self):
        g = preferential_attachment(150, 3, seed=2, reciprocal=0.3)
        res = PageRankSeeds(g).run(8, seed=0)
        assert len(set(res.seeds)) == 8

    def test_registry_entry(self):
        from repro.core.registry import get_algorithm

        g = preferential_attachment(100, 3, seed=2, reciprocal=0.3)
        res = get_algorithm("pagerank", g).run(3, seed=0)
        assert len(res.seeds) == 3

    def test_quality_beats_random(self, wc_graph):
        from repro.estimation.montecarlo import estimate_spread

        pr = PageRankSeeds(wc_graph).run(5, seed=0)
        pr_spread = estimate_spread(
            wc_graph, pr.seeds, num_simulations=300, seed=0
        ).mean
        rnd_spread = estimate_spread(
            wc_graph, [17, 34, 51, 68, 85], num_simulations=300, seed=0
        ).mean
        assert pr_spread > rnd_spread
