"""Tests for Walker's alias method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.alias import AliasTable


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasTable([0.5, -0.1])

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))

    def test_len(self):
        assert len(AliasTable([1, 2, 3])) == 3


class TestDistribution:
    def test_single_outcome(self, rng):
        table = AliasTable([3.0])
        assert all(table.sample(rng) == 0 for _ in range(50))

    def test_uniform_weights(self, rng):
        table = AliasTable([1.0] * 4)
        draws = table.sample_many(40_000, rng)
        freqs = np.bincount(draws, minlength=4) / 40_000
        assert np.all(np.abs(freqs - 0.25) < 0.01)

    def test_skewed_weights(self, rng):
        weights = np.array([8.0, 1.0, 1.0])
        table = AliasTable(weights)
        draws = np.array([table.sample(rng) for _ in range(30_000)])
        freqs = np.bincount(draws, minlength=3) / 30_000
        assert np.all(np.abs(freqs - weights / 10.0) < 0.012)

    def test_zero_weight_never_drawn(self, rng):
        table = AliasTable([1.0, 0.0, 1.0])
        draws = table.sample_many(20_000, rng)
        assert not (draws == 1).any()

    def test_unnormalised_weights_ok(self, rng):
        a = AliasTable([2, 6])
        draws = a.sample_many(30_000, rng)
        assert abs((draws == 1).mean() - 0.75) < 0.01

    def test_sample_many_matches_sample(self, rng):
        table = AliasTable([1, 2, 3, 4])
        single = np.array([table.sample(rng) for _ in range(20_000)])
        batch = table.sample_many(20_000, rng)
        f1 = np.bincount(single, minlength=4) / len(single)
        f2 = np.bincount(batch, minlength=4) / len(batch)
        assert np.all(np.abs(f1 - f2) < 0.015)


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30).filter(
        lambda w: sum(w) > 0
    ),
    seed=st.integers(0, 2**31),
)
def test_samples_always_in_range_and_positive_weight(weights, seed):
    rng = np.random.default_rng(seed)
    table = AliasTable(weights)
    for _ in range(20):
        i = table.sample(rng)
        assert 0 <= i < len(weights)
        # Zero-weight outcomes are impossible (up to fp dust in the builder).
        if weights[i] == 0.0:
            pytest.fail("sampled an outcome with zero weight")
