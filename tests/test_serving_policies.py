"""Unit tests for the serving-layer policies (no sockets involved)."""

import numpy as np
import pytest

from repro.core.results import IMResult
from repro.graphs.generators import preferential_attachment
from repro.graphs.io import save_edge_list, save_npz
from repro.graphs.weights import wc_weights
from repro.observability.registry import MetricsRegistry
from repro.runtime.budget import Budget
from repro.serving import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    GraphRegistry,
    RetryPolicy,
    ServerConfig,
    ServerFaultInjector,
    tenant_entropy,
)
from repro.utils.exceptions import (
    ConfigurationError,
    GraphFormatError,
    InjectedFault,
)


class TestRetryPolicy:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        policy = RetryPolicy(attempts=3, sleep=sleeps.append, seed=0)
        assert policy.call(lambda: 42) == 42
        assert sleeps == []

    def test_retries_then_succeeds(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("flap")
            return "ok"

        policy = RetryPolicy(attempts=3, backoff=0.1, sleep=sleeps.append, seed=0)
        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        # Exponential: second delay at least doubles the base.
        assert sleeps[1] > sleeps[0]

    def test_attempts_exhausted_reraises(self):
        policy = RetryPolicy(attempts=2, backoff=0.0, sleep=lambda _: None)
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("down")))

    def test_non_transient_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("format")

        policy = RetryPolicy(attempts=5, sleep=lambda _: None)
        with pytest.raises(ValueError):
            policy.call(broken, transient=lambda exc: isinstance(exc, OSError))
        assert calls["n"] == 1

    def test_max_total_wait_caps_retrying(self):
        sleeps = []
        policy = RetryPolicy(
            attempts=50,
            backoff=1.0,
            jitter=0.0,
            max_total_wait=5.0,
            sleep=sleeps.append,
        )
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("down")))
        # Delays 1, 2 fit (total 3); the next (4) would blow the 5s cap.
        assert sleeps == [1.0, 2.0]
        assert sum(sleeps) <= 5.0

    def test_jitter_is_seeded(self):
        def delays(seed):
            sleeps = []
            policy = RetryPolicy(
                attempts=4, backoff=0.1, jitter=0.5, seed=seed,
                sleep=sleeps.append,
            )
            with pytest.raises(OSError):
                policy.call(lambda: (_ for _ in ()).throw(OSError("x")))
            return sleeps

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_total_wait=-0.1)


class TestCircuitBreaker:
    def _clock(self):
        state = {"t": 0.0}

        def advance(dt):
            state["t"] += dt

        return (lambda: state["t"]), advance

    def test_opens_after_threshold(self):
        clock, _ = self._clock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(lambda: "never runs")
        assert info.value.retry_after == pytest.approx(10.0)

    def test_half_open_probe_closes_on_success(self):
        clock, advance = self._clock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        advance(6.0)
        assert breaker.state == "half-open"
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        clock, advance = self._clock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        advance(6.0)
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("still down")))
        assert breaker.state == "open"

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=2)
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        breaker.call(lambda: "fine")
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert breaker.state == "closed"


def _result(edges=100, rr_sets=10, avg_size=3.0):
    return IMResult(
        algorithm="subsim",
        seeds=[1],
        k=1,
        eps=0.3,
        delta=0.01,
        runtime_seconds=0.1,
        num_rr_sets=rr_sets,
        average_rr_size=avg_size,
        edges_examined=edges,
    )


class TestAdmissionController:
    def test_unlimited_budget_always_admits(self):
        controller = AdmissionController(Budget(), metrics=MetricsRegistry())
        for _ in range(5):
            assert controller.admit() is None
            controller.record_spend(_result())

    def test_sheds_after_edge_budget_spent(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            Budget(max_edges_examined=150), metrics=metrics
        )
        assert controller.admit() is None
        controller.record_spend(_result(edges=200))
        assert controller.admit() == "edges_examined"
        assert metrics.value("serving.shed") == 1
        assert metrics.value("serving.shed_budget") == 1
        assert metrics.value("serving.admitted") == 1

    def test_rr_set_and_node_axes(self):
        controller = AdmissionController(Budget(max_rr_sets=5))
        controller.record_spend(_result(rr_sets=6))
        assert controller.check() == "rr_sets"
        controller = AdmissionController(Budget(max_rr_nodes=10))
        controller.record_spend(_result(rr_sets=10, avg_size=2.0))
        assert controller.check() == "rr_nodes"

    def test_spend_reported(self):
        controller = AdmissionController(Budget())
        controller.record_spend(_result(edges=42, rr_sets=7, avg_size=2.0))
        assert controller.spend() == {
            "edges_examined": 42,
            "rr_sets": 7,
            "rr_nodes": 14,
        }


class TestServerFaultInjector:
    def test_request_axis_fires_once(self):
        faults = ServerFaultInjector(at_request=2)
        faults.on_request()
        with pytest.raises(InjectedFault):
            faults.on_request()
        faults.on_request()  # fired already: no further faults
        assert faults.counts["request"] == 3

    def test_worker_axis_delay_mode(self):
        sleeps = []
        faults = ServerFaultInjector(
            at_worker=1, mode="delay", delay_seconds=0.5, seed=3,
            sleep=sleeps.append,
        )
        faults.on_worker()
        assert len(sleeps) == 1
        assert sleeps[0] >= 0.5

    def test_snapshot_axis_truncates_file(self, tmp_path):
        path = tmp_path / "snap.npz"
        path.write_bytes(b"x" * 500)
        faults = ServerFaultInjector(at_snapshot=1, snapshot_truncate_bytes=16)
        faults.on_snapshot(path)
        assert path.stat().st_size == 16
        # Fires once: a second snapshot write is left alone.
        path.write_bytes(b"y" * 500)
        faults.on_snapshot(path)
        assert path.stat().st_size == 500

    def test_inherited_axes_still_work(self):
        faults = ServerFaultInjector(at_rr_set=1)
        with pytest.raises(InjectedFault):
            faults.on_rr_set()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerFaultInjector(at_request=0)
        with pytest.raises(ConfigurationError):
            ServerFaultInjector(snapshot_truncate_bytes=-1)


class TestGraphRegistry:
    @pytest.fixture
    def graph(self):
        return wc_weights(
            preferential_attachment(60, 3, seed=1, reciprocal=0.3)
        )

    def test_in_memory_graph(self, graph):
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        assert "g" in registry
        assert registry.get("g") is graph

    def test_unknown_name_rejected(self):
        registry = GraphRegistry()
        with pytest.raises(ConfigurationError):
            registry.get("nope")

    def test_lazy_load_edge_list_with_weights(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        registry = GraphRegistry()
        registry.add_path("g", str(path), weight_scheme="wc")
        loaded = registry.get("g")
        assert loaded.n == graph.n
        # Loading is cached: same object on repeat access.
        assert registry.get("g") is loaded

    def test_lazy_load_npz(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        registry = GraphRegistry()
        registry.add_path("g", str(path))
        assert registry.get("g") == graph

    def test_breaker_opens_on_persistent_failure(self, tmp_path):
        registry = GraphRegistry(
            retry=RetryPolicy(attempts=1, sleep=lambda _: None),
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )
        registry.add_path("missing", str(tmp_path / "absent.txt"))
        for _ in range(2):
            with pytest.raises(GraphFormatError):
                registry.get("missing")
        with pytest.raises(CircuitOpenError):
            registry.get("missing")

    def test_format_error_not_retried(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not an edge list at all\n")
        sleeps = []
        registry = GraphRegistry(
            retry=RetryPolicy(attempts=5, sleep=sleeps.append)
        )
        registry.add_path("bad", str(path))
        with pytest.raises(GraphFormatError):
            registry.get("bad")
        assert sleeps == []


class TestTenantEntropy:
    def test_pure_function_of_inputs(self):
        assert tenant_entropy(0, "alice", "g") == tenant_entropy(0, "alice", "g")

    def test_distinct_tenants_and_graphs(self):
        values = {
            tenant_entropy(0, "alice", "g"),
            tenant_entropy(0, "bob", "g"),
            tenant_entropy(0, "alice", "h"),
            tenant_entropy(1, "alice", "g"),
        }
        assert len(values) == 4

    def test_fits_in_numpy_seed_space(self):
        entropy = tenant_entropy(0, "x" * 100, "y" * 100)
        np.random.default_rng(np.random.SeedSequence(entropy))


class TestServerConfig:
    def test_defaults_valid(self):
        config = ServerConfig()
        assert config.workers >= 1
        assert config.lifetime_budget.unlimited

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(max_pending=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(query_retries=-1)
        with pytest.raises(ConfigurationError):
            ServerConfig(snapshot_every=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(default_deadline=0.0)


class TestGraphRegistryStaleness:
    """A replaced graph file must not keep serving the stale cached graph."""

    def _graph(self, seed):
        return wc_weights(
            preferential_attachment(60, 3, seed=seed, reciprocal=0.3)
        )

    def test_replaced_file_reloads_fresh_graph(self, tmp_path):
        import os

        old, new = self._graph(1), self._graph(2)
        path = tmp_path / "g.npz"
        save_npz(old, path)
        os.utime(path, ns=(1_000_000_000, 1_000_000_000))
        registry = GraphRegistry()
        registry.add_path("g", str(path))
        assert registry.get("g").fingerprint() == old.fingerprint()

        save_npz(new, path)
        os.utime(path, ns=(2_000_000_000, 2_000_000_000))
        reloaded = registry.get("g")
        assert reloaded.fingerprint() == new.fingerprint()
        # the fresh graph is cached under the new mtime
        assert registry.get("g") is reloaded

    def test_untouched_file_stays_cached(self, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(self._graph(1), path)
        registry = GraphRegistry()
        registry.add_path("g", str(path))
        first = registry.get("g")
        assert registry.get("g") is first
