"""Tests for vanilla IC RR-set generation (Algorithm 2)."""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.weights import uniform_weights
from repro.rrsets.vanilla import VanillaICGenerator


class TestDeterministicGraphs:
    def test_path_rr_is_prefix(self, path10, rng):
        gen = VanillaICGenerator(path10)
        for root in range(10):
            rr = gen.generate(rng, root=root)
            assert sorted(rr) == list(range(root + 1))
            assert rr[0] == root

    def test_cycle_rr_is_everything(self, cycle8, rng):
        gen = VanillaICGenerator(cycle8)
        rr = gen.generate(rng, root=3)
        assert sorted(rr) == list(range(8))

    def test_star_out_center_unreachable_from_leaf(self, star_out, rng):
        gen = VanillaICGenerator(star_out)
        rr = gen.generate(rng, root=3)
        assert sorted(rr) == [0, 3]  # leaf plus the broadcasting center

    def test_star_out_rr_of_center(self, star_out, rng):
        gen = VanillaICGenerator(star_out)
        assert gen.generate(rng, root=0) == [0]

    def test_star_in_rr_of_center_is_everything(self, star_in, rng):
        gen = VanillaICGenerator(star_in)
        assert sorted(gen.generate(rng, root=0)) == list(range(8))

    def test_zero_probability_blocks(self, rng):
        g = uniform_weights(path_graph(6), 0.0)
        gen = VanillaICGenerator(g)
        assert gen.generate(rng, root=5) == [5]


class TestRandomBehaviour:
    def test_root_always_first(self, wc_graph, rng):
        gen = VanillaICGenerator(wc_graph)
        for _ in range(100):
            rr = gen.generate(rng)
            assert 0 <= rr[0] < wc_graph.n

    def test_rr_nodes_unique(self, wc_graph, rng):
        gen = VanillaICGenerator(wc_graph)
        for _ in range(200):
            rr = gen.generate(rng)
            assert len(rr) == len(set(rr))

    def test_visited_mask_reset_between_calls(self, wc_graph, rng):
        gen = VanillaICGenerator(wc_graph)
        for _ in range(50):
            gen.generate(rng)
        assert not gen._visited.any()

    def test_single_edge_inclusion_probability(self, rng):
        g = build_graph(2, [0], [1], [0.3])
        gen = VanillaICGenerator(g)
        hits = sum(
            len(gen.generate(rng, root=1)) == 2 for _ in range(30_000)
        )
        assert abs(hits / 30_000 - 0.3) < 0.012

    def test_two_hop_inclusion_probability(self, rng):
        # 0 -> 1 (0.5), 1 -> 2 (0.4): Pr[0 in RR(2)] = 0.2
        g = build_graph(3, [0, 1], [1, 2], [0.5, 0.4])
        gen = VanillaICGenerator(g)
        hits = sum(0 in gen.generate(rng, root=2) for _ in range(30_000))
        assert abs(hits / 30_000 - 0.2) < 0.012

    def test_root_out_of_range_rejected(self, wc_graph, rng):
        gen = VanillaICGenerator(wc_graph)
        with pytest.raises(ValueError):
            gen.generate(rng, root=wc_graph.n)


class TestCounters:
    def test_edges_examined_counts_all_in_edges(self, path10, rng):
        gen = VanillaICGenerator(path10)
        gen.generate(rng, root=9)
        # Activating nodes 9..0 examines each node's single in-edge: 9 edges.
        assert gen.counters.edges_examined == 9
        assert gen.counters.rng_draws == 9

    def test_sets_and_sizes_accumulate(self, path10, rng):
        gen = VanillaICGenerator(path10)
        gen.generate(rng, root=4)
        gen.generate(rng, root=0)
        assert gen.counters.sets_generated == 2
        assert gen.counters.nodes_added == 6
        assert gen.counters.average_size() == 3.0

    def test_reset(self, path10, rng):
        gen = VanillaICGenerator(path10)
        gen.generate(rng, root=4)
        gen.counters.reset()
        assert gen.counters.sets_generated == 0
        assert gen.counters.edges_examined == 0


class TestSentinelStop:
    def test_stops_at_sentinel(self, path10, rng):
        gen = VanillaICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[5] = True
        rr = gen.generate(rng, root=9, stop_mask=stop)
        # walks 9, 8, 7, 6 then hits 5 and stops
        assert sorted(rr) == [5, 6, 7, 8, 9]
        assert gen.counters.sentinel_hits == 1

    def test_root_is_sentinel(self, path10, rng):
        gen = VanillaICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[9] = True
        assert gen.generate(rng, root=9, stop_mask=stop) == [9]

    def test_no_sentinel_encountered(self, path10, rng):
        gen = VanillaICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[9] = True  # downstream of root 3, never reached backwards
        rr = gen.generate(rng, root=3, stop_mask=stop)
        assert sorted(rr) == [0, 1, 2, 3]
        assert gen.counters.sentinel_hits == 0

    def test_mask_reset_after_sentinel_stop(self, path10, rng):
        gen = VanillaICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[5] = True
        gen.generate(rng, root=9, stop_mask=stop)
        assert not gen._visited.any()
