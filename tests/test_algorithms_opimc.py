"""Tests for OPIM-C and its SUBSIM configuration."""

import math

import pytest

from repro.algorithms.opimc import OPIMC
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.exceptions import ConfigurationError


class TestRun:
    def test_returns_k_distinct_seeds(self, wc_graph):
        res = OPIMC(wc_graph).run(5, eps=0.3, seed=0)
        assert len(res.seeds) == 5
        assert len(set(res.seeds)) == 5
        assert all(0 <= s < wc_graph.n for s in res.seeds)

    def test_certified_ratio_meets_target(self, wc_graph):
        eps = 0.3
        res = OPIMC(wc_graph).run(5, eps=eps, seed=0)
        target = 1 - 1 / math.e - eps
        # Early-stopped runs certify the ratio; theta_max runs may not,
        # but on this small graph stopping always happens early.
        assert res.approx_ratio_certified > target

    def test_bounds_ordered(self, wc_graph):
        res = OPIMC(wc_graph).run(5, eps=0.3, seed=0)
        assert 0 <= res.lower_bound <= res.upper_bound

    def test_result_metadata(self, wc_graph):
        res = OPIMC(wc_graph).run(3, eps=0.4, seed=1)
        assert res.algorithm == "opim-c"
        assert res.k == 3
        assert res.num_rr_sets > 0
        assert res.average_rr_size > 0
        assert res.runtime_seconds > 0
        assert res.extras["rounds"] >= 1

    def test_reproducible_with_seed(self, wc_graph):
        a = OPIMC(wc_graph).run(5, eps=0.3, seed=7)
        b = OPIMC(wc_graph).run(5, eps=0.3, seed=7)
        assert a.seeds == b.seeds
        assert a.num_rr_sets == b.num_rr_sets

    def test_different_seeds_may_differ_in_rr_counts(self, wc_graph):
        a = OPIMC(wc_graph).run(5, eps=0.3, seed=1)
        b = OPIMC(wc_graph).run(5, eps=0.3, seed=2)
        # Not a strict requirement, but the runs must both be valid.
        assert len(a.seeds) == len(b.seeds) == 5

    def test_k_equals_n(self):
        from repro.graphs.generators import cycle_graph

        g = cycle_graph(6)
        res = OPIMC(g).run(6, eps=0.4, seed=0)
        assert sorted(res.seeds) == list(range(6))

    def test_k_one(self, wc_graph):
        res = OPIMC(wc_graph).run(1, eps=0.4, seed=0)
        assert len(res.seeds) == 1


class TestSubsimConfiguration:
    def test_name_reflects_generator(self, wc_graph):
        algo = OPIMC(wc_graph, SubsimICGenerator)
        assert algo.name == "opim-c+subsim"

    def test_same_quality_as_vanilla(self, wc_graph):
        """SUBSIM only changes generation cost, not the seed distribution."""
        from repro.estimation.montecarlo import estimate_spread

        res_v = OPIMC(wc_graph).run(5, eps=0.2, seed=3)
        res_s = OPIMC(wc_graph, SubsimICGenerator).run(5, eps=0.2, seed=3)
        sp_v = estimate_spread(wc_graph, res_v.seeds, num_simulations=500, seed=0)
        sp_s = estimate_spread(wc_graph, res_s.seeds, num_simulations=500, seed=0)
        assert sp_s.mean == pytest.approx(sp_v.mean, rel=0.15)

    def test_fewer_edges_examined(self, wc_graph):
        res_v = OPIMC(wc_graph).run(5, eps=0.3, seed=3)
        res_s = OPIMC(wc_graph, SubsimICGenerator).run(5, eps=0.3, seed=3)
        assert res_s.edges_examined < res_v.edges_examined


class TestValidation:
    def test_k_out_of_range(self, wc_graph):
        with pytest.raises(ConfigurationError):
            OPIMC(wc_graph).run(0)
        with pytest.raises(ConfigurationError):
            OPIMC(wc_graph).run(wc_graph.n + 1)

    def test_eps_out_of_range(self, wc_graph):
        with pytest.raises(ConfigurationError):
            OPIMC(wc_graph).run(5, eps=0.0)
        with pytest.raises(ConfigurationError):
            OPIMC(wc_graph).run(5, eps=1.0)

    def test_delta_out_of_range(self, wc_graph):
        with pytest.raises(ConfigurationError):
            OPIMC(wc_graph).run(5, delta=0.0)

    def test_delta_defaults_to_inverse_n(self, wc_graph):
        res = OPIMC(wc_graph).run(2, eps=0.4, seed=0)
        assert res.delta == pytest.approx(1.0 / wc_graph.n)
