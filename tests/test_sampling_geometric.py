"""Tests for geometric-skip sampling (SUBSIM's core primitive)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.geometric import (
    geometric_jump,
    sample_equal_probability,
    truncated_geometric,
)


class TestGeometricJump:
    def test_p_one_always_first(self, rng):
        assert all(geometric_jump(1.0, rng) == 1 for _ in range(100))

    def test_p_zero_never_succeeds(self, rng):
        assert geometric_jump(0.0, rng) > 10**15

    def test_support_starts_at_one(self, rng):
        draws = [geometric_jump(0.9, rng) for _ in range(1000)]
        assert min(draws) == 1

    def test_mean_matches_distribution(self, rng):
        p = 0.25
        draws = [geometric_jump(p, rng) for _ in range(40_000)]
        # E[G(p)] = 1/p = 4; sd of the mean ~ sqrt(12)/200 ~ 0.017
        assert abs(np.mean(draws) - 1.0 / p) < 0.1

    def test_distribution_pmf(self, rng):
        p = 0.5
        draws = np.array([geometric_jump(p, rng) for _ in range(40_000)])
        for i in (1, 2, 3):
            expected = (1 - p) ** (i - 1) * p
            observed = (draws == i).mean()
            assert abs(observed - expected) < 0.01


class TestTruncatedGeometric:
    def test_within_bound(self, rng):
        draws = [truncated_geometric(0.1, 5, rng) for _ in range(2000)]
        assert min(draws) >= 1
        assert max(draws) <= 5

    def test_bound_one_degenerate(self, rng):
        assert all(truncated_geometric(0.3, 1, rng) == 1 for _ in range(50))

    def test_p_one(self, rng):
        assert truncated_geometric(1.0, 10, rng) == 1

    def test_matches_conditioned_distribution(self, rng):
        p, bound = 0.3, 4
        draws = np.array(
            [truncated_geometric(p, bound, rng) for _ in range(40_000)]
        )
        norm = 1.0 - (1.0 - p) ** bound
        for i in range(1, bound + 1):
            expected = (1 - p) ** (i - 1) * p / norm
            observed = (draws == i).mean()
            assert abs(observed - expected) < 0.012

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            truncated_geometric(0.5, 0, rng)
        with pytest.raises(ValueError):
            truncated_geometric(0.0, 3, rng)


class TestSampleEqualProbability:
    def test_empty_set(self, rng):
        assert sample_equal_probability(0, 0.5, rng) == []

    def test_p_zero(self, rng):
        assert sample_equal_probability(100, 0.0, rng) == []

    def test_p_one(self, rng):
        assert sample_equal_probability(7, 1.0, rng) == list(range(7))

    def test_indices_sorted_unique_in_range(self, rng):
        for _ in range(200):
            out = sample_equal_probability(20, 0.4, rng)
            assert out == sorted(set(out))
            assert all(0 <= i < 20 for i in out)

    def test_marginal_inclusion_probability(self, rng):
        h, p, trials = 12, 0.3, 30_000
        counts = np.zeros(h)
        for _ in range(trials):
            for i in sample_equal_probability(h, p, rng):
                counts[i] += 1
        freqs = counts / trials
        assert np.all(np.abs(freqs - p) < 0.012)

    def test_pairwise_independence(self, rng):
        h, p, trials = 6, 0.4, 30_000
        both = 0
        for _ in range(trials):
            out = set(sample_equal_probability(h, p, rng))
            if 1 in out and 4 in out:
                both += 1
        assert abs(both / trials - p * p) < 0.012

    def test_expected_size(self, rng):
        h, p = 50, 0.1
        sizes = [
            len(sample_equal_probability(h, p, rng)) for _ in range(20_000)
        ]
        assert abs(np.mean(sizes) - h * p) < 0.12

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            sample_equal_probability(-1, 0.5, rng)
        with pytest.raises(ValueError):
            sample_equal_probability(5, 1.5, rng)


@settings(max_examples=100, deadline=None)
@given(
    h=st.integers(0, 200),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
)
def test_equal_probability_structural_invariants(h, p, seed):
    rng = np.random.default_rng(seed)
    out = sample_equal_probability(h, p, rng)
    assert out == sorted(set(out))
    assert all(0 <= i < h for i in out)
    if p == 1.0:
        assert out == list(range(h))
    if p == 0.0 or h == 0:
        assert out == []
