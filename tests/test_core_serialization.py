"""Tests for IMResult JSON persistence."""

import math

import pytest

from repro.core.results import IMResult
from repro.core.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


def make_result(**overrides):
    base = dict(
        algorithm="hist+subsim",
        seeds=[5, 2, 9],
        k=3,
        eps=0.1,
        delta=0.01,
        runtime_seconds=1.25,
        num_rr_sets=1000,
        average_rr_size=12.5,
        edges_examined=54321,
        rng_draws=11111,
        lower_bound=40.0,
        upper_bound=70.0,
        phases={"sentinel": 0.5, "im_sentinel": 0.75},
        extras={"b": 2, "sentinel_verified": True},
    )
    base.update(overrides)
    return IMResult(**base)


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        revived = result_from_dict(result_to_dict(original))
        assert revived == original

    def test_file_round_trip(self, tmp_path):
        original = make_result()
        path = tmp_path / "result.json"
        save_result(original, path)
        assert load_result(path) == original

    def test_infinite_upper_bound_survives(self, tmp_path):
        original = make_result(upper_bound=float("inf"))
        path = tmp_path / "result.json"
        save_result(original, path)
        revived = load_result(path)
        assert math.isinf(revived.upper_bound)

    def test_missing_optional_fields_default(self):
        minimal = {
            "algorithm": "degree",
            "seeds": [1],
            "k": 1,
            "eps": 0.0,
            "delta": 0.0,
            "runtime_seconds": 0.1,
        }
        revived = result_from_dict(minimal)
        assert revived.num_rr_sets == 0
        assert revived.upper_bound == float("inf")

    def test_real_algorithm_result_round_trips(self, wc_graph, tmp_path):
        from repro.core.api import maximize_influence

        result = maximize_influence(wc_graph, 3, algorithm="subsim", eps=0.4, seed=0)
        path = tmp_path / "r.json"
        save_result(result, path)
        revived = load_result(path)
        assert revived.seeds == result.seeds
        assert revived.num_rr_sets == result.num_rr_sets
