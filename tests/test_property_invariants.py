"""Cross-module property tests: invariants that tie the layers together.

Each property here spans at least two subsystems (e.g. RR generation vs
deterministic traversal), catching integration drift that single-module
tests cannot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.greedy import max_coverage_greedy
from repro.estimation.structural import influence_envelope
from repro.graphs.csr import build_graph
from repro.graphs.traversal import reverse_reachable
from repro.rrsets.collection import RRCollection
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator

GENERATORS = (VanillaICGenerator, SubsimICGenerator, FastVanillaICGenerator)


def random_weighted_graph(data, max_n=12):
    n = data.draw(st.integers(2, max_n))
    max_edges = min(n * (n - 1), 30)
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.0, 1.0),
            ),
            max_size=max_edges,
        )
    )
    seen = set()
    src, dst, probs = [], [], []
    for u, v, p in pairs:
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        src.append(u)
        dst.append(v)
        probs.append(p)
    return build_graph(n, src, dst, probs)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**31), gen_idx=st.integers(0, 2))
def test_rr_set_is_subset_of_deterministic_reverse_reachability(
    data, seed, gen_idx
):
    """Whatever a stochastic generator returns must be reachable at p=1."""
    graph = random_weighted_graph(data)
    rng = np.random.default_rng(seed)
    generator = GENERATORS[gen_idx](graph)
    root = data.draw(st.integers(0, graph.n - 1))
    rr = generator.generate(rng, root=root)
    assert rr[0] == root
    assert len(rr) == len(set(rr))
    assert set(rr) <= reverse_reachable(graph, root)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**31))
def test_probability_one_edges_always_traversed(data, seed):
    """Edges with p = 1 into an activated node must fire in every RR set."""
    graph = random_weighted_graph(data)
    rng = np.random.default_rng(seed)
    for generator in (VanillaICGenerator(graph), SubsimICGenerator(graph)):
        root = data.draw(st.integers(0, graph.n - 1))
        rr = set(generator.generate(rng, root=root))
        src, dst, probs = graph.edges()
        for u, v, p in zip(src, dst, probs):
            if p == 1.0 and v in rr:
                assert u in rr


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**31))
def test_collection_estimate_within_structural_envelope(data, seed):
    """The RR influence estimate can never leave the reachability envelope."""
    graph = random_weighted_graph(data)
    rng = np.random.default_rng(seed)
    pool = RRCollection(graph.n)
    pool.extend(60, SubsimICGenerator(graph), rng)
    seeds = data.draw(
        st.lists(
            st.integers(0, graph.n - 1), min_size=1, max_size=3, unique=True
        )
    )
    estimate = pool.estimate_influence(seeds)
    lower, upper = influence_envelope(graph, seeds)
    # The estimator averages indicators, so it is bounded by n, and the
    # envelope must contain its expectation; with 60 samples allow wide
    # noise but never structural impossibility: the estimate counts only
    # RR sets whose roots are reachable from the seeds.
    assert 0.0 <= estimate <= graph.n
    if upper == graph.n:
        return
    # Every covered RR set's root is forward-reachable from the seeds.
    from repro.estimation.structural import reachable_set

    reach = reachable_set(graph, seeds)
    for rr_id in np.flatnonzero(pool.covered_mask(seeds)):
        assert int(pool.rr_sets[rr_id][0]) in reach


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**31))
def test_sentinel_stop_produces_prefix_of_unstopped_run(data, seed):
    """With identical randomness, a sentinel run returns a prefix of the
    unrestricted run's activation order."""
    graph = random_weighted_graph(data)
    root = data.draw(st.integers(0, graph.n - 1))
    sentinel = data.draw(st.integers(0, graph.n - 1))
    stop = np.zeros(graph.n, dtype=bool)
    stop[sentinel] = True

    gen_a = VanillaICGenerator(graph)
    gen_b = VanillaICGenerator(graph)
    full = gen_a.generate(np.random.default_rng(seed), root=root)
    stopped = gen_b.generate(np.random.default_rng(seed), root=root,
                             stop_mask=stop)
    assert stopped == full[: len(stopped)]
    if sentinel in full:
        assert stopped[-1] == sentinel


@settings(max_examples=30, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**31))
def test_greedy_coverage_bounded_by_pool_size(data, seed):
    graph = random_weighted_graph(data)
    rng = np.random.default_rng(seed)
    pool = RRCollection(graph.n)
    pool.extend(25, VanillaICGenerator(graph), rng)
    k = data.draw(st.integers(1, graph.n))
    result = max_coverage_greedy(pool, select=k)
    assert 0 <= result.coverage <= pool.num_rr
    assert result.upper_bound_coverage <= pool.num_rr + 1e-9
    # k = n covers everything coverable: every RR set has >= 1 node.
    if k == graph.n:
        assert result.coverage == pool.num_rr
