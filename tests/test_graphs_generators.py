"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    preferential_attachment,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from repro.utils.exceptions import ConfigurationError


def no_self_loops_or_duplicates(graph):
    src, dst, _ = graph.edges()
    assert (src != dst).all()
    assert len(set(zip(src, dst))) == len(src)


class TestErdosRenyi:
    def test_sizes(self):
        g = erdos_renyi(500, 4.0, seed=0)
        assert g.n == 500
        assert abs(g.m - 2000) < 200

    def test_clean_edges(self):
        no_self_loops_or_duplicates(erdos_renyi(100, 3.0, seed=1))

    def test_reproducible(self):
        assert erdos_renyi(100, 3.0, seed=5) == erdos_renyi(100, 3.0, seed=5)

    def test_undirected_is_symmetric(self):
        g = erdos_renyi(80, 2.0, seed=2, directed=False)
        src, dst, _ = g.edges()
        pairs = set(zip(src, dst))
        assert all((v, u) in pairs for u, v in pairs)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(1, 2.0)
        with pytest.raises(ConfigurationError):
            erdos_renyi(10, 0.0)


class TestPreferentialAttachment:
    def test_sizes(self):
        g = preferential_attachment(200, 4, seed=0)
        assert g.n == 200
        # (n - epn) arrivals each adding epn edges
        assert g.m == (200 - 4) * 4

    def test_heavy_tail(self):
        g = preferential_attachment(2000, 4, seed=0)
        in_deg = g.in_degree()
        # preferential attachment: max in-degree far above the mean
        assert in_deg.max() > 10 * in_deg.mean()

    def test_pure_growth_is_dag(self):
        g = preferential_attachment(100, 3, seed=1)
        src, dst, _ = g.edges()
        assert (src > dst).all()  # edges always point from newer to older

    def test_reciprocal_creates_back_edges(self):
        g = preferential_attachment(100, 3, seed=1, reciprocal=0.5)
        src, dst, _ = g.edges()
        assert (src < dst).sum() > 0

    def test_reciprocal_one_symmetric(self):
        g = preferential_attachment(60, 3, seed=1, reciprocal=1.0)
        src, dst, _ = g.edges()
        pairs = set(zip(src, dst))
        assert all((v, u) in pairs for u, v in pairs)

    def test_undirected_symmetric(self):
        g = preferential_attachment(60, 3, seed=1, directed=False)
        src, dst, _ = g.edges()
        pairs = set(zip(src, dst))
        assert all((v, u) in pairs for u, v in pairs)

    def test_clean_edges(self):
        no_self_loops_or_duplicates(preferential_attachment(150, 5, seed=3))

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment(4, 4)
        with pytest.raises(ConfigurationError):
            preferential_attachment(10, 0)
        with pytest.raises(ConfigurationError):
            preferential_attachment(10, 2, reciprocal=1.5)


class TestWattsStrogatz:
    def test_beta_zero_is_ring(self):
        g = watts_strogatz(20, 2, 0.0, seed=0)
        assert g.m == 40
        nbrs, _ = g.out_neighbors(0)
        assert set(nbrs) == {1, 2}

    def test_rewiring_changes_targets(self):
        ring = watts_strogatz(200, 3, 0.0, seed=0)
        rewired = watts_strogatz(200, 3, 0.9, seed=0)
        assert rewired != ring

    def test_clean_edges(self):
        no_self_loops_or_duplicates(watts_strogatz(100, 4, 0.3, seed=2))

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 0, 0.1)
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 10, 0.1)
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 2, 1.5)


class TestSBM:
    def test_within_denser_than_between(self):
        g = stochastic_block_model([100, 100], 0.05, 0.005, seed=0)
        src, dst, _ = g.edges()
        within = ((src < 100) == (dst < 100)).sum()
        between = len(src) - within
        assert within > 3 * between

    def test_node_count(self):
        g = stochastic_block_model([30, 40, 50], 0.02, 0.002, seed=1)
        assert g.n == 120

    def test_clean_edges(self):
        no_self_loops_or_duplicates(
            stochastic_block_model([50, 50], 0.05, 0.01, seed=2)
        )

    def test_rejects_bad_probs(self):
        with pytest.raises(ConfigurationError):
            stochastic_block_model([10, 10], 1.5, 0.1)


class TestDeterministicGraphs:
    def test_star_out(self):
        g = star_graph(5, center_out=True)
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 0

    def test_star_in(self):
        g = star_graph(5, center_out=False)
        assert g.in_degree(0) == 4
        assert g.out_degree(0) == 0

    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.out_degree(4) == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.m == 5
        assert all(g.out_degree(v) == 1 for v in range(5))

    def test_complete(self):
        g = complete_graph(4)
        assert g.m == 12
        no_self_loops_or_duplicates(g)

    def test_minimum_sizes_enforced(self):
        for factory in (star_graph, path_graph, cycle_graph, complete_graph):
            with pytest.raises(ConfigurationError):
                factory(1)
