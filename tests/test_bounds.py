"""Tests for concentration bounds, OPIM bounds, and theta thresholds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.combinatorics import log_binomial
from repro.bounds.concentration import (
    martingale_lower_tail,
    martingale_upper_tail,
    monte_carlo_sample_bound,
)
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import (
    imm_lambda_prime,
    imm_lambda_star,
    theta_max_im_sentinel,
    theta_max_opimc,
    theta_max_sentinel,
)


class TestLogBinomial:
    def test_exact_small_values(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 3) == pytest.approx(math.log(120))

    def test_boundaries(self):
        assert log_binomial(7, 0) == 0.0
        assert log_binomial(7, 7) == 0.0

    def test_impossible(self):
        assert log_binomial(3, 5) == float("-inf")
        assert log_binomial(3, -1) == float("-inf")

    def test_symmetry(self):
        assert log_binomial(100, 30) == pytest.approx(log_binomial(100, 70))

    def test_large_values_finite(self):
        assert math.isfinite(log_binomial(10**9, 1000))

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 200), k=st.integers(0, 200))
    def test_pascal_identity(self, n, k):
        if not 1 <= k <= n:
            return
        lhs = log_binomial(n + 1, k)
        rhs = np.logaddexp(log_binomial(n, k), log_binomial(n, k - 1))
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestMartingaleTails:
    def test_upper_tail_matches_formula(self):
        got = martingale_upper_tail(10.0, 5.0)
        want = math.exp(-25.0 / (20.0 + 10.0 / 3.0))
        assert got == pytest.approx(want)

    def test_lower_tail_matches_formula(self):
        got = martingale_lower_tail(10.0, 5.0)
        assert got == pytest.approx(math.exp(-25.0 / 20.0))

    def test_trivial_for_nonpositive_lambda(self):
        assert martingale_upper_tail(10.0, 0.0) == 1.0
        assert martingale_lower_tail(10.0, -1.0) == 1.0

    def test_decreasing_in_lambda(self):
        values = [martingale_upper_tail(5.0, lam) for lam in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_lower_tail_zero_mean(self):
        assert martingale_lower_tail(0.0, 1.0) == 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            martingale_upper_tail(-1.0, 1.0)

    def test_tails_empirically_valid(self, rng):
        """The bound must dominate the empirical tail of a Binomial."""
        theta, p = 2000, 0.01
        mean = theta * p
        lam = 10.0
        draws = rng.binomial(theta, p, size=20_000)
        empirical = (draws - mean >= lam).mean()
        assert empirical <= martingale_upper_tail(mean, lam) + 0.01


class TestMonteCarloBound:
    def test_formula(self):
        assert monte_carlo_sample_bound(1.0, math.exp(-1)) == 3

    def test_decreasing_in_eps(self):
        assert monte_carlo_sample_bound(0.1, 0.01) > monte_carlo_sample_bound(
            0.5, 0.01
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            monte_carlo_sample_bound(0.0, 0.1)
        with pytest.raises(ValueError):
            monte_carlo_sample_bound(0.1, 1.5)
        with pytest.raises(ValueError):
            monte_carlo_sample_bound(0.1, 0.1, mu=0.0)


class TestOpimBounds:
    def test_lower_below_point_estimate(self):
        n, theta, cov = 1000, 500, 100.0
        lower = influence_lower_bound(cov, theta, n, 0.01)
        assert lower <= n * cov / theta

    def test_upper_above_point_estimate(self):
        n, theta, cov = 1000, 500, 100.0
        upper = influence_upper_bound(cov, theta, n, 0.01)
        assert upper >= n * cov / theta

    def test_lower_clamped_at_zero(self):
        # Zero coverage carries no information: the bound is (exactly, up to
        # fp dust) zero, never negative.
        assert influence_lower_bound(0.0, 100, 1000, 0.01) == pytest.approx(
            0.0, abs=1e-9
        )
        assert influence_lower_bound(0.0, 100, 1000, 0.01) >= 0.0

    def test_bounds_tighten_with_more_samples(self):
        n = 1000
        gaps = []
        for theta in (100, 1000, 10_000):
            cov = 0.2 * theta  # same coverage fraction
            lo = influence_lower_bound(cov, theta, n, 0.01)
            hi = influence_upper_bound(cov, theta, n, 0.01)
            gaps.append(hi - lo)
        assert gaps[0] > gaps[1] > gaps[2]

    def test_bounds_loosen_with_smaller_delta(self):
        lo_tight = influence_lower_bound(100, 500, 1000, 0.1)
        lo_loose = influence_lower_bound(100, 500, 1000, 0.0001)
        assert lo_loose <= lo_tight
        hi_tight = influence_upper_bound(100, 500, 1000, 0.1)
        hi_loose = influence_upper_bound(100, 500, 1000, 0.0001)
        assert hi_loose >= hi_tight

    def test_lower_bound_holds_empirically(self, rng):
        """Eq. 1 must cover the true influence >= 1 - delta of the time."""
        n, theta, true_influence, delta = 1000, 400, 50.0, 0.1
        p = true_influence / n
        failures = 0
        trials = 2000
        for _ in range(trials):
            cov = rng.binomial(theta, p)
            if influence_lower_bound(cov, theta, n, delta) > true_influence:
                failures += 1
        assert failures / trials <= delta

    def test_upper_bound_holds_empirically(self, rng):
        n, theta, true_influence, delta = 1000, 400, 50.0, 0.1
        p = true_influence / n
        failures = 0
        trials = 2000
        for _ in range(trials):
            cov = rng.binomial(theta, p)
            if influence_upper_bound(cov, theta, n, delta) < true_influence:
                failures += 1
        assert failures / trials <= delta

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            influence_lower_bound(10, 0, 100, 0.1)
        with pytest.raises(ValueError):
            influence_upper_bound(10, 100, 100, 1.5)
        with pytest.raises(ValueError):
            influence_lower_bound(-1, 100, 100, 0.1)


class TestThetaThresholds:
    def test_all_positive(self):
        assert theta_max_opimc(1000, 10, 0.1, 0.001) > 0
        assert theta_max_sentinel(1000, 10, 0.1, 0.001) > 0
        assert theta_max_im_sentinel(1000, 10, 3, 0.1, 0.001) > 0

    def test_decreasing_in_eps(self):
        a = theta_max_opimc(1000, 10, 0.1, 0.001)
        b = theta_max_opimc(1000, 10, 0.3, 0.001)
        assert a > b

    def test_eps_quadratic_scaling(self):
        a = theta_max_sentinel(10_000, 10, 0.1, 0.001)
        b = theta_max_sentinel(10_000, 10, 0.2, 0.001)
        assert a / b == pytest.approx(4.0, rel=0.01)

    def test_im_sentinel_shrinks_with_b(self):
        # Larger sentinel set -> smaller residual problem -> fewer samples.
        full = theta_max_im_sentinel(10_000, 50, 0, 0.1, 0.001)
        half = theta_max_im_sentinel(10_000, 50, 25, 0.1, 0.001)
        most = theta_max_im_sentinel(10_000, 50, 49, 0.1, 0.001)
        assert full > half > most

    def test_im_sentinel_validates_b(self):
        with pytest.raises(ValueError):
            theta_max_im_sentinel(100, 10, 11, 0.1, 0.01)
        with pytest.raises(ValueError):
            theta_max_im_sentinel(100, 10, -1, 0.1, 0.01)

    def test_imm_lambdas_positive_and_ordered(self):
        n, k, eps, delta = 10_000, 10, 0.1, 1e-4
        lam_star = imm_lambda_star(n, k, eps, delta)
        lam_prime = imm_lambda_prime(n, k, math.sqrt(2) * eps, delta)
        assert lam_star > 0 and lam_prime > 0

    def test_common_validation(self):
        for fn in (theta_max_opimc, theta_max_sentinel):
            with pytest.raises(ValueError):
                fn(100, 0, 0.1, 0.01)
            with pytest.raises(ValueError):
                fn(100, 10, -0.1, 0.01)
            with pytest.raises(ValueError):
                fn(100, 10, 0.1, 0.0)
