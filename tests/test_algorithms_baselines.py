"""Tests for the baseline algorithms: IMM, TIM+, SSA, greedy-MC, heuristics."""

import numpy as np
import pytest

from repro.algorithms.greedy_mc import GreedyMonteCarlo
from repro.algorithms.heuristics import DegreeDiscount, DegreeTopK, RandomSeeds
from repro.algorithms.imm import IMM
from repro.algorithms.ssa import SSA
from repro.algorithms.tim import TIMPlus
from repro.estimation.montecarlo import estimate_spread
from repro.graphs.generators import star_graph
from repro.utils.exceptions import ConfigurationError


class TestIMM:
    def test_returns_valid_seeds(self, wc_graph):
        res = IMM(wc_graph, max_rr_sets=20_000).run(5, eps=0.4, seed=0)
        assert len(set(res.seeds)) == 5
        assert res.num_rr_sets > 0

    def test_opt_lower_bound_recorded(self, wc_graph):
        res = IMM(wc_graph, max_rr_sets=20_000).run(5, eps=0.4, seed=0)
        assert res.extras["opt_lower_bound"] >= 1.0

    def test_cap_respected_and_reported(self, wc_graph):
        res = IMM(wc_graph, max_rr_sets=500).run(5, eps=0.3, seed=0)
        assert res.num_rr_sets <= 500
        assert res.extras["capped"]

    def test_uncapped_on_tiny_graph(self):
        g = star_graph(30, center_out=False)
        res = IMM(g).run(1, eps=0.5, seed=0)
        assert res.seeds  # completes without a cap

    def test_invalid_cap_rejected(self, wc_graph):
        with pytest.raises(ValueError):
            IMM(wc_graph, max_rr_sets=0)

    def test_seed_quality(self, wc_graph):
        res = IMM(wc_graph, max_rr_sets=20_000).run(5, eps=0.3, seed=0)
        spread = estimate_spread(wc_graph, res.seeds, num_simulations=300, seed=0)
        random_spread = estimate_spread(
            wc_graph, [10, 20, 30, 40, 50], num_simulations=300, seed=0
        )
        assert spread.mean > random_spread.mean


class TestTIMPlus:
    def test_returns_valid_seeds(self, wc_graph):
        res = TIMPlus(wc_graph, max_rr_sets=20_000).run(5, eps=0.4, seed=0)
        assert len(set(res.seeds)) == 5

    def test_kpt_estimates_recorded(self, wc_graph):
        res = TIMPlus(wc_graph, max_rr_sets=20_000).run(5, eps=0.4, seed=0)
        assert res.extras["kpt_plus"] >= res.extras["kpt_star"] >= 1.0

    def test_cap_respected(self, wc_graph):
        res = TIMPlus(wc_graph, max_rr_sets=300).run(5, eps=0.3, seed=0)
        assert res.extras["theta"] <= 300

    def test_invalid_cap_rejected(self, wc_graph):
        with pytest.raises(ValueError):
            TIMPlus(wc_graph, max_rr_sets=-5)


class TestSSA:
    def test_returns_valid_seeds(self, wc_graph):
        res = SSA(wc_graph).run(5, eps=0.5, seed=0)
        assert len(set(res.seeds)) == 5
        assert res.extras["rounds"] >= 1

    def test_validation_flag_recorded(self, wc_graph):
        res = SSA(wc_graph).run(5, eps=0.5, seed=0)
        assert isinstance(res.extras["validated"], bool)

    def test_seed_quality(self, wc_graph):
        res = SSA(wc_graph).run(5, eps=0.4, seed=0)
        spread = estimate_spread(wc_graph, res.seeds, num_simulations=300, seed=0)
        random_spread = estimate_spread(
            wc_graph, [11, 22, 33, 44, 55], num_simulations=300, seed=0
        )
        assert spread.mean > random_spread.mean


class TestGreedyMonteCarlo:
    def test_star_graph_exact(self):
        g = star_graph(20, center_out=True)
        res = GreedyMonteCarlo(g, num_simulations=20).run(1, seed=0)
        assert res.seeds == [0]

    def test_distinct_seeds(self):
        g = star_graph(15, center_out=True)
        res = GreedyMonteCarlo(g, num_simulations=10).run(3, seed=0)
        assert len(set(res.seeds)) == 3

    def test_lt_model_supported(self, path10):
        res = GreedyMonteCarlo(path10, num_simulations=5, model="lt").run(
            1, seed=0
        )
        assert res.seeds == [0]  # path head reaches everyone

    def test_spread_estimate_recorded(self):
        g = star_graph(10, center_out=True)
        res = GreedyMonteCarlo(g, num_simulations=10).run(1, seed=0)
        assert res.extras["spread_estimate"] == pytest.approx(10.0)

    def test_validation(self, path10):
        with pytest.raises(ConfigurationError):
            GreedyMonteCarlo(path10, num_simulations=0)
        with pytest.raises(ConfigurationError):
            GreedyMonteCarlo(path10, model="nope")


class TestHeuristics:
    def test_degree_picks_highest_out_degree(self):
        g = star_graph(12, center_out=True)
        res = DegreeTopK(g).run(1, seed=0)
        assert res.seeds == [0]

    def test_degree_order(self, wc_graph):
        res = DegreeTopK(wc_graph).run(5, seed=0)
        out_deg = wc_graph.out_degree()
        degs = [out_deg[s] for s in res.seeds]
        assert degs == sorted(degs, reverse=True)

    def test_degree_discount_valid(self, wc_graph):
        res = DegreeDiscount(wc_graph).run(5, seed=0)
        assert len(set(res.seeds)) == 5

    def test_degree_discount_first_pick_is_max_degree(self, wc_graph):
        res = DegreeDiscount(wc_graph).run(1, seed=0)
        out_deg = wc_graph.out_degree()
        assert out_deg[res.seeds[0]] == out_deg.max()

    def test_random_seeds_distinct(self, wc_graph):
        res = RandomSeeds(wc_graph).run(10, seed=0)
        assert len(set(res.seeds)) == 10

    def test_random_reproducible(self, wc_graph):
        a = RandomSeeds(wc_graph).run(5, seed=3)
        b = RandomSeeds(wc_graph).run(5, seed=3)
        assert a.seeds == b.seeds

    def test_heuristics_report_no_rr_sets(self, wc_graph):
        for algo in (DegreeTopK(wc_graph), RandomSeeds(wc_graph)):
            res = algo.run(3, seed=0)
            assert res.num_rr_sets == 0
            assert res.average_rr_size == 0.0
