"""Tests for the CELF lazy-greedy alternative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.celf import celf_max_coverage
from repro.coverage.greedy import max_coverage_greedy
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ConfigurationError


def collection_from(sets, n):
    c = RRCollection(n)
    for s in sets:
        c.add(s)
    return c


class TestAgreementWithExactGreedy:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_identical_selection_random_instances(self, data):
        n = data.draw(st.integers(2, 8))
        num_sets = data.draw(st.integers(0, 12))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=1, max_size=n, unique=True
                )
            )
            for _ in range(num_sets)
        ]
        k = data.draw(st.integers(1, n))
        c = collection_from(sets, n)
        exact = max_coverage_greedy(c, select=k, track_upper_bound=False)
        lazy = celf_max_coverage(c, select=k)
        assert lazy.seeds == exact.seeds
        assert lazy.coverage == exact.coverage
        assert lazy.coverage_history == exact.coverage_history

    def test_agreement_on_rr_pools(self, wc_graph, rng):
        from repro.rrsets.vanilla import VanillaICGenerator

        c = RRCollection(wc_graph.n)
        c.extend(400, VanillaICGenerator(wc_graph), rng)
        exact = max_coverage_greedy(c, select=8, track_upper_bound=False)
        lazy = celf_max_coverage(c, select=8)
        assert lazy.seeds == exact.seeds

    def test_agreement_with_tie_break(self, wc_graph, rng):
        from repro.rrsets.vanilla import VanillaICGenerator

        c = RRCollection(wc_graph.n)
        c.extend(120, VanillaICGenerator(wc_graph), rng)
        out_deg = wc_graph.out_degree()
        exact = max_coverage_greedy(
            c, select=6, out_degree=out_deg, track_upper_bound=False
        )
        lazy = celf_max_coverage(c, select=6, out_degree=out_deg)
        assert lazy.seeds == exact.seeds

    def test_agreement_with_initial_covered(self, wc_graph, rng):
        from repro.rrsets.vanilla import VanillaICGenerator

        c = RRCollection(wc_graph.n)
        c.extend(200, VanillaICGenerator(wc_graph), rng)
        mask = c.covered_mask([0, 1])
        exact = max_coverage_greedy(
            c, select=5, initial_covered=mask, track_upper_bound=False
        )
        lazy = celf_max_coverage(c, select=5, initial_covered=mask)
        assert lazy.seeds == exact.seeds
        assert lazy.coverage == exact.coverage


class TestCelfSpecifics:
    def test_no_upper_bound(self):
        c = collection_from([[0]], n=2)
        res = celf_max_coverage(c, select=1)
        assert res.upper_bound_coverage == float("inf")

    def test_validation(self):
        c = collection_from([[0]], n=2)
        with pytest.raises(ConfigurationError):
            celf_max_coverage(c, select=0)
        with pytest.raises(ConfigurationError):
            celf_max_coverage(c, select=1, initial_covered=np.zeros(5, bool))

    def test_empty_pool(self):
        c = RRCollection(4)
        res = celf_max_coverage(c, select=2)
        assert res.coverage == 0
        assert len(set(res.seeds)) == 2
