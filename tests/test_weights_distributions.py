"""Statistical tests of the weight schemes' distributions.

`test_graphs_weights.py` checks structure (ranges, sums, tags); these
check *distributional* claims: the skewed schemes must actually be skewed
in the way the paper's Section 7 describes, with fixed seeds and
generous-but-meaningful tolerances.
"""

import numpy as np
import pytest

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import (
    exponential_weights,
    trivalency_weights,
    uniform_weights,
    wc_variant_weights,
    weibull_weights,
)


@pytest.fixture(scope="module")
def base():
    # Enough multi-in-degree nodes for distribution statistics.
    return preferential_attachment(800, 6, seed=31, reciprocal=0.3)


class TestExponentialShape:
    def test_within_node_skew_matches_exponential(self, base):
        """Normalised exponentials are Dirichlet(1,..,1): for a node of
        in-degree d, the max weight's expectation is H_d / d."""
        g = exponential_weights(base, seed=5)
        in_deg = g.in_degree()
        # Normalise each node's max share by its degree-specific
        # expectation E[max of Dirichlet(1^d)] = H_d / d, then pool.
        normalised = []
        for degree in (5, 6, 7, 8):
            h_d = sum(1.0 / i for i in range(1, degree + 1))
            expected = h_d / degree
            for v in np.flatnonzero(in_deg == degree):
                _, probs = g.in_neighbors(int(v))
                normalised.append(probs.max() / expected)
        assert len(normalised) > 50
        assert np.mean(normalised) == pytest.approx(1.0, abs=0.08)

    def test_more_skewed_than_wc(self, base):
        g = exponential_weights(base, seed=5)
        in_deg = g.in_degree()
        nodes = np.flatnonzero(in_deg >= 4)[:200]
        ratios = []
        for v in nodes:
            _, probs = g.in_neighbors(int(v))
            ratios.append(probs.max() / probs.min())
        # Under WC every ratio is 1; exponential weights are far apart.
        assert np.median(ratios) > 3.0


class TestWeibullShape:
    def test_extreme_dominance_occurs(self, base):
        """Tiny Weibull shapes make one edge dominate its node; over many
        nodes this must actually happen (share > 0.99 somewhere)."""
        g = weibull_weights(base, seed=5)
        in_deg = g.in_degree()
        dominated = 0
        for v in np.flatnonzero(in_deg >= 3):
            _, probs = g.in_neighbors(int(v))
            if probs.max() > 0.99:
                dominated += 1
        assert dominated > 0

    def test_different_seeds_different_weights(self, base):
        a = weibull_weights(base, seed=1)
        b = weibull_weights(base, seed=2)
        assert not np.allclose(a.out_probs, b.out_probs)


class TestTrivalencyFrequencies:
    def test_menu_choices_roughly_uniform(self, base):
        g = trivalency_weights(base, choices=(0.1, 0.01, 0.001), seed=3)
        values, counts = np.unique(g.out_probs, return_counts=True)
        assert len(values) == 3
        freqs = counts / counts.sum()
        assert np.all(np.abs(freqs - 1 / 3) < 0.03)


class TestWCVariantCap:
    def test_cap_engages_only_below_theta(self, base):
        theta = 3.0
        g = wc_variant_weights(base, theta)
        in_deg = g.in_degree()
        src, dst, probs = g.edges()
        capped = in_deg[dst] <= theta
        assert np.allclose(probs[capped], 1.0)
        assert np.allclose(probs[~capped], theta / in_deg[dst[~capped]])

    def test_influence_monotone_in_theta(self, base):
        """Higher theta -> strictly stronger cascades (mean RR size grows)."""
        from repro.experiments.calibration import average_rr_size

        sizes = [
            average_rr_size(wc_variant_weights(base, t), 150, seed=0)
            for t in (1.0, 2.0, 4.0)
        ]
        assert sizes[0] < sizes[1] < sizes[2]


class TestUniformIC:
    def test_influence_monotone_in_p(self, base):
        from repro.experiments.calibration import average_rr_size

        sizes = [
            average_rr_size(uniform_weights(base, p), 150, seed=0)
            for p in (0.02, 0.08, 0.2)
        ]
        assert sizes[0] < sizes[1] < sizes[2]
