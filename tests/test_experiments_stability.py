"""Tests for seed-set stability analysis."""

import pytest

from repro.experiments.stability import (
    StabilityReport,
    pairwise_jaccard,
    seed_set_jaccard,
    stability_report,
)
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


class TestJaccard:
    def test_identical(self):
        assert seed_set_jaccard([1, 2], [2, 1]) == 1.0

    def test_disjoint(self):
        assert seed_set_jaccard([1], [2]) == 0.0

    def test_partial(self):
        assert seed_set_jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert seed_set_jaccard([], []) == 1.0

    def test_pairwise_count(self):
        values = pairwise_jaccard([[1], [1], [2]])
        assert len(values) == 3
        assert sorted(values) == [0.0, 0.0, 1.0]


class TestReport:
    def test_core_and_mean(self):
        report = StabilityReport(
            algorithm="x", k=2,
            seed_sets=[{1, 2}, {1, 3}, {1, 2}],
            spreads=[10.0, 9.0, 10.0],
        )
        assert report.core_seeds == {1}
        assert 0.0 < report.mean_jaccard < 1.0
        assert report.spread_band == pytest.approx(0.1)

    def test_summary_row(self):
        report = StabilityReport(
            algorithm="x", k=2, seed_sets=[{1}], spreads=[5.0]
        )
        row = report.summary_row()
        assert row["core_seeds"] == 1
        assert row["mean_jaccard"] == 1.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def graph(self):
        return wc_weights(
            preferential_attachment(200, 3, seed=11, reciprocal=0.3)
        )

    def test_quality_stable_even_if_membership_churns(self, graph):
        report = stability_report(
            graph, "subsim", k=5, eps=0.3, runs=4,
            num_simulations=150, seed=0,
        )
        assert report.runs == 4
        # Quality must be stable...
        assert report.spread_band < 0.25
        # ...and the strongest hub should be a consensus pick.
        assert len(report.core_seeds) >= 1

    def test_deterministic_algorithm_fully_stable(self, graph):
        report = stability_report(
            graph, "degree", k=5, runs=3, num_simulations=50, seed=0
        )
        assert report.mean_jaccard == 1.0
        assert len(report.core_seeds) == 5
        assert report.spread_band == 0.0

    def test_random_algorithm_unstable(self, graph):
        report = stability_report(
            graph, "random", k=5, runs=4, num_simulations=50, seed=0
        )
        assert report.mean_jaccard < 0.5

    def test_validation(self, graph):
        with pytest.raises(ConfigurationError):
            stability_report(graph, "degree", k=2, runs=1)
