"""Tests for the Dagum-Karp-Luby-Ross sequential estimator."""

import numpy as np
import pytest

from repro.estimation.sequential import (
    estimate_mean_sequential,
    estimate_spread_sequential,
)
from repro.graphs.generators import path_graph, preferential_attachment, star_graph
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


class TestEstimateMean:
    def test_bernoulli_within_relative_error(self, rng):
        p = 0.3
        result = estimate_mean_sequential(
            lambda r: float(r.random() < p), eps=0.1, delta=0.05, rng=rng
        )
        assert result.converged
        assert abs(result.mean - p) <= 0.15 * p  # eps plus slack

    def test_constant_variable(self, rng):
        result = estimate_mean_sequential(
            lambda r: 1.0, eps=0.2, delta=0.1, rng=rng
        )
        assert result.converged
        assert result.mean == pytest.approx(1.0, rel=0.2)

    def test_smaller_mean_needs_more_samples(self, rng):
        counts = []
        for p in (0.5, 0.05):
            result = estimate_mean_sequential(
                lambda r: float(r.random() < p), eps=0.2, delta=0.1, rng=rng
            )
            counts.append(result.num_samples)
        assert counts[1] > 3 * counts[0]

    def test_zero_mean_hits_cap(self, rng):
        result = estimate_mean_sequential(
            lambda r: 0.0, eps=0.2, delta=0.1, rng=rng, max_samples=500
        )
        assert not result.converged
        assert result.num_samples == 500
        assert result.mean == 0.0

    def test_failure_probability_bounded(self):
        """The (eps, delta) contract must hold over repeated runs."""
        p, eps, delta = 0.4, 0.2, 0.1
        failures = 0
        trials = 200
        master = np.random.default_rng(0)
        for _ in range(trials):
            result = estimate_mean_sequential(
                lambda r: float(r.random() < p), eps=eps, delta=delta, rng=master
            )
            if abs(result.mean - p) > eps * p:
                failures += 1
        assert failures / trials <= delta + 0.05

    def test_out_of_range_sample_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            estimate_mean_sequential(lambda r: 2.0, eps=0.2, delta=0.1, rng=rng)

    def test_parameter_validation(self, rng):
        sampler = lambda r: 0.5
        with pytest.raises(ConfigurationError):
            estimate_mean_sequential(sampler, eps=0.0, delta=0.1, rng=rng)
        with pytest.raises(ConfigurationError):
            estimate_mean_sequential(sampler, eps=0.2, delta=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            estimate_mean_sequential(sampler, eps=0.2, delta=0.1, rng=rng,
                                     max_samples=0)


class TestEstimateSpread:
    def test_deterministic_path(self):
        result = estimate_spread_sequential(
            path_graph(10), [0], eps=0.2, delta=0.1, seed=0
        )
        assert result.converged
        assert result.mean == pytest.approx(10.0, rel=0.2)

    def test_matches_fixed_budget_estimator(self):
        from repro.estimation.montecarlo import estimate_spread

        g = wc_weights(preferential_attachment(200, 3, seed=4, reciprocal=0.3))
        seeds = [0, 1, 2]
        fixed = estimate_spread(g, seeds, num_simulations=4000, seed=0).mean
        adaptive = estimate_spread_sequential(
            g, seeds, eps=0.1, delta=0.05, seed=1
        )
        assert adaptive.mean == pytest.approx(fixed, rel=0.15)

    def test_high_spread_converges_fast(self):
        g = star_graph(100, center_out=True)
        result = estimate_spread_sequential(g, [0], eps=0.2, delta=0.1, seed=0)
        assert result.converged
        # spread/n = 1: the sample count equals ceil(upsilon) ~ 260 at
        # (eps, delta) = (0.2, 0.1) — the distribution-independent floor.
        assert result.num_samples < 400

    def test_lt_model(self):
        result = estimate_spread_sequential(
            path_graph(6), [0], model="lt", eps=0.3, delta=0.1, seed=0
        )
        assert result.mean == pytest.approx(6.0, rel=0.3)

    def test_validation(self):
        g = path_graph(4)
        with pytest.raises(ConfigurationError):
            estimate_spread_sequential(g, [], seed=0)
        with pytest.raises(ConfigurationError):
            estimate_spread_sequential(g, [9], seed=0)
        with pytest.raises(ConfigurationError):
            estimate_spread_sequential(g, [0], model="x", seed=0)
