"""Tests for the dual-CSR graph structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import CSRGraph, build_graph
from repro.utils.exceptions import GraphFormatError


def tiny():
    # 0 -> 1 (0.5), 0 -> 2 (0.25), 2 -> 1 (1.0), 1 -> 0 (0.1)
    return build_graph(
        3,
        [0, 0, 2, 1],
        [1, 2, 1, 0],
        [0.5, 0.25, 1.0, 0.1],
    )


class TestBuild:
    def test_counts(self):
        g = tiny()
        assert g.n == 3
        assert g.m == 4

    def test_out_neighbors(self):
        g = tiny()
        nbrs, probs = g.out_neighbors(0)
        assert list(nbrs) == [1, 2]
        assert list(probs) == [0.5, 0.25]

    def test_in_neighbors_sorted_descending_by_prob(self):
        g = tiny()
        nbrs, probs = g.in_neighbors(1)
        assert list(probs) == sorted(probs, reverse=True)
        assert set(nbrs) == {0, 2}
        assert probs[0] == 1.0  # the 2 -> 1 edge dominates

    def test_degrees(self):
        g = tiny()
        assert g.out_degree(0) == 2
        assert g.in_degree(1) == 2
        assert list(g.out_degree()) == [2, 1, 1]
        assert list(g.in_degree()) == [1, 2, 1]

    def test_in_prob_sums(self):
        g = tiny()
        assert g.in_prob_sums[1] == pytest.approx(1.5)
        assert g.in_prob_sums[0] == pytest.approx(0.1)

    def test_in_prob_sums_isolated_node(self):
        g = build_graph(4, [0], [1], [0.5])
        assert g.in_prob_sums[2] == 0.0
        assert g.in_prob_sums[3] == 0.0

    def test_uniform_in_flags(self):
        g = tiny()
        assert bool(g.uniform_in[0])  # single in-edge counts as uniform
        assert not bool(g.uniform_in[1])  # 1.0 vs 0.5 differ

    def test_edges_round_trip(self):
        g = tiny()
        src, dst, probs = g.edges()
        rebuilt = build_graph(3, src, dst, probs)
        assert rebuilt == g

    def test_transpose_reverses_edges(self):
        g = tiny()
        t = g.transpose()
        assert t.m == g.m
        nbrs, _ = t.out_neighbors(1)
        assert set(nbrs) == {0, 2}

    def test_transpose_twice_is_identity(self):
        g = tiny()
        assert g.transpose().transpose() == g

    def test_average_degree(self):
        assert tiny().average_degree() == pytest.approx(4 / 3)


class TestValidation:
    def test_rejects_out_of_range_ids(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [0], [5], [0.5])

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [-1], [0], [0.5])

    def test_rejects_self_loops(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [1], [1], [0.5])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [0, 0], [1, 1], [0.5, 0.6])

    def test_rejects_probability_above_one(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [0], [1], [1.5])

    def test_rejects_negative_probability(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [0], [1], [-0.1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, [0], [1, 0], [0.5])

    def test_empty_graph_allowed(self):
        g = build_graph(3, [], [], [])
        assert g.m == 0
        assert list(g.in_prob_sums) == [0.0, 0.0, 0.0]


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    edge_data=st.data(),
)
def test_csr_invariants_random_graphs(n, edge_data):
    """CSR arrays stay mutually consistent for arbitrary edge sets."""
    max_edges = min(n * (n - 1), 60)
    pairs = edge_data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1), st.floats(0, 1)
            ),
            max_size=max_edges,
        )
    )
    seen = set()
    src, dst, probs = [], [], []
    for u, v, p in pairs:
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        src.append(u)
        dst.append(v)
        probs.append(p)
    g = build_graph(n, src, dst, probs)
    # indptr monotone, totals agree
    assert g.out_indptr[0] == 0 and g.out_indptr[-1] == g.m
    assert g.in_indptr[0] == 0 and g.in_indptr[-1] == g.m
    assert (np.diff(g.out_indptr) >= 0).all()
    assert (np.diff(g.in_indptr) >= 0).all()
    # every edge appears once in each direction's arrays
    fwd = set(zip(*g.edges()[:2]))
    assert fwd == seen
    # per-node in-blocks sorted descending
    for v in range(n):
        _, p = g.in_neighbors(v)
        assert list(p) == sorted(p, reverse=True)
    # in_prob_sums matches a direct computation
    direct = np.zeros(n)
    for u, v, p in zip(src, dst, probs):
        direct[v] += p
    assert np.allclose(direct, g.in_prob_sums)
