"""Tests for timing helpers."""

import time

import pytest

from repro.utils.timing import Stopwatch, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestStopwatch:
    def test_accumulates_multiple_spans(self):
        sw = Stopwatch()
        for _ in range(3):
            sw.start("a")
            time.sleep(0.003)
            sw.stop("a")
        assert sw.total("a") >= 0.008

    def test_independent_names(self):
        sw = Stopwatch()
        sw.start("a")
        sw.stop("a")
        assert sw.total("b") == 0.0

    def test_stop_returns_span(self):
        sw = Stopwatch()
        sw.start("x")
        assert sw.stop("x") >= 0.0

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start("x")
        with pytest.raises(RuntimeError):
            sw.start("x")

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop("never")

    def test_as_dict_snapshot(self):
        sw = Stopwatch()
        sw.start("a")
        sw.stop("a")
        d = sw.as_dict()
        assert set(d) == {"a"}
        d["a"] = -1.0  # mutating the snapshot must not affect the stopwatch
        assert sw.total("a") >= 0.0
