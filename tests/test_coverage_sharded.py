"""Scatter-gather selection must be *identical* to the single-pool path.

One set of RR sets, materialized twice: once in a plain
:class:`RRCollection`, once scattered (rank-major, same global order)
into a :class:`ShardPool`.  Greedy and CELF must then make the same
selections, produce the same histories/bounds/metrics, and gather the
same covered mask — the "provably identical" contract of
:mod:`repro.coverage.sharded`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.celf import celf_max_coverage
from repro.coverage.greedy import max_coverage_greedy
from repro.engine.shards import ShardedRRBank
from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import wc_weights
from repro.observability import MetricsRegistry
from repro.rrsets.collection import RRCollection
from repro.rrsets.fanout import shard_counts
from repro.rrsets.shardpool import ShardPool
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.exceptions import ConfigurationError

NUM_SETS = 400
SHARDS = 3


@pytest.fixture(scope="module")
def graph():
    return wc_weights(erdos_renyi(250, 4.0, seed=13))


@pytest.fixture(scope="module")
def pools(graph):
    """(single RRCollection, warm ShardPool, adopted ShardedRRBank)."""
    rng = np.random.default_rng(21)
    gen = SubsimICGenerator(graph)
    sets = [gen.generate(rng) for _ in range(NUM_SETS)]
    counts = shard_counts(NUM_SETS, SHARDS)
    single = RRCollection(graph.n)
    shards_data, start = [], 0
    for c in counts:
        chunk = sets[start:start + c]
        start += c
        nodes = (
            np.concatenate(chunk) if chunk else np.empty(0, np.int64)
        )
        sizes = np.array([len(s) for s in chunk], dtype=np.int64)
        shards_data.append((nodes, sizes))
        for s in chunk:  # single pool mirrors the rank-major global order
            single.add(s)
    pool = ShardPool(graph, SHARDS)
    pool.adopt("r", shards_data, SubsimICGenerator)
    bank = ShardedRRBank(
        graph, SubsimICGenerator(graph), pool, role="r", entropy=1
    )
    bank._appends.append(list(counts))
    bank._rank_totals = list(counts)
    yield single, pool, bank
    pool.close()


def _assert_same(result_a, result_b):
    assert result_a.seeds == result_b.seeds
    assert result_a.coverage == result_b.coverage
    assert result_a.coverage_history == result_b.coverage_history
    assert result_a.upper_bound_coverage == result_b.upper_bound_coverage
    np.testing.assert_array_equal(result_a.covered, result_b.covered)


class TestGreedyIdentity:
    def test_full_view(self, graph, pools):
        single, _, bank = pools
        out_deg = np.diff(graph.out_indptr)
        m_single, m_sharded = MetricsRegistry(), MetricsRegistry()
        a = max_coverage_greedy(
            single, 8, out_degree=out_deg, metrics=m_single
        )
        b = max_coverage_greedy(
            bank.view(NUM_SETS), 8, out_degree=out_deg, metrics=m_sharded
        )
        _assert_same(a, b)
        for key in ("coverage.selections", "coverage.gain_decrements"):
            assert m_single.value(key) == m_sharded.value(key)

    def test_prefix_view(self, pools):
        single, _, bank = pools
        prefix = single.prefix(150)
        a = max_coverage_greedy(prefix, 5)
        b = max_coverage_greedy(bank.view(150), 5)
        _assert_same(a, b)

    def test_sentinel_path(self, graph, pools):
        # HIST's IM-Sentinel phase: sentinels pre-cover their sets and are
        # barred from re-selection.
        single, _, bank = pools
        sentinels = [int(np.argmax(single.coverage_counts())), 3]
        view = bank.view(NUM_SETS)
        a = max_coverage_greedy(
            single, 4, topk=6,
            initial_covered=single.covered_mask(sentinels),
            excluded=sentinels,
        )
        b = max_coverage_greedy(
            view, 4, topk=6,
            initial_covered=view.covered_mask(sentinels),
            excluded=sentinels,
        )
        _assert_same(a, b)

    def test_raw_mask_rejected(self, pools):
        _, _, bank = pools
        with pytest.raises(ConfigurationError):
            max_coverage_greedy(
                bank.view(NUM_SETS), 3,
                initial_covered=np.zeros(NUM_SETS, dtype=bool),
            )


class TestCelfIdentity:
    def test_full_view(self, graph, pools):
        single, _, bank = pools
        out_deg = np.diff(graph.out_indptr)
        m_single, m_sharded = MetricsRegistry(), MetricsRegistry()
        a = celf_max_coverage(
            single, 8, out_degree=out_deg, metrics=m_single
        )
        b = celf_max_coverage(
            bank.view(NUM_SETS), 8, out_degree=out_deg, metrics=m_sharded
        )
        _assert_same(a, b)
        assert m_single.value("coverage.selections") == m_sharded.value(
            "coverage.selections"
        )

    def test_raw_mask_rejected(self, pools):
        _, _, bank = pools
        with pytest.raises(ConfigurationError):
            celf_max_coverage(
                bank.view(NUM_SETS), 3,
                initial_covered=np.zeros(NUM_SETS, dtype=bool),
            )


class TestViewQueries:
    def test_coverage_and_influence(self, pools):
        single, _, bank = pools
        view = bank.view(NUM_SETS)
        seeds = [1, 5, 9]
        assert view.coverage(seeds) == single.coverage(seeds)
        assert view.estimate_influence(seeds) == pytest.approx(
            single.estimate_influence(seeds)
        )
        np.testing.assert_array_equal(
            view.coverage_counts(), single.coverage_counts()
        )

    def test_per_set_sums_with_stop(self, graph, pools):
        single, _, bank = pools
        view = bank.view(NUM_SETS)
        values = np.arange(graph.n, dtype=np.float64)
        np.testing.assert_allclose(
            view.per_set_sums(values, stop=300),
            single.per_set_sums(values, stop=300),
        )
