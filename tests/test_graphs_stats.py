"""Tests for graph statistics."""

import numpy as np

from repro.graphs.generators import path_graph, star_graph
from repro.graphs.stats import degree_histogram, graph_summary
from repro.graphs.weights import wc_weights


class TestGraphSummary:
    def test_star_summary(self):
        s = graph_summary(star_graph(10, center_out=True))
        assert s.n == 10
        assert s.m == 9
        assert s.max_out_degree == 9
        assert s.max_in_degree == 1

    def test_avg_degree(self):
        s = graph_summary(path_graph(5))
        assert s.avg_degree == 4 / 5

    def test_avg_in_prob_sum_wc(self):
        g = wc_weights(star_graph(10, center_out=True))
        s = graph_summary(g)
        # 9 leaves each with in-sum 1, the center with 0.
        assert abs(s.avg_in_prob_sum - 0.9) < 1e-9

    def test_as_row_keys(self):
        row = graph_summary(path_graph(4)).as_row()
        assert {"n", "m", "avg_degree", "weight_model"} <= set(row)


class TestDegreeHistogram:
    def test_out_histogram_star(self):
        h = degree_histogram(star_graph(6, center_out=True), "out")
        assert h[0] == 5  # leaves
        assert h[5] == 1  # center

    def test_in_histogram_star(self):
        h = degree_histogram(star_graph(6, center_out=True), "in")
        assert h[1] == 5
        assert h[0] == 1

    def test_counts_sum_to_n(self):
        g = path_graph(7)
        assert degree_histogram(g, "in").sum() == 7

    def test_bad_direction(self):
        import pytest

        with pytest.raises(ValueError):
            degree_histogram(path_graph(3), "sideways")
