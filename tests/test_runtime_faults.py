"""Deterministic fault injection: exact firing points, modes, and axes."""

import pytest

from repro.core.registry import get_algorithm
from repro.runtime import CheckpointStore, FaultInjector
from repro.utils.exceptions import (
    ConfigurationError,
    ExecutionInterrupted,
    InjectedFault,
)

K = 5
EPS = 0.3
SEED = 3


class TestInjectorUnits:
    def test_fires_at_exact_nth_rr_set(self):
        inj = FaultInjector(at_rr_set=3)
        inj.on_rr_set()
        inj.on_rr_set()
        with pytest.raises(InjectedFault):
            inj.on_rr_set()
        assert inj.counts["rr_set"] == 3

    def test_edge_axis_counts_cumulatively(self):
        # Edge events arrive in batches; the fault fires on the batch whose
        # cumulative count first crosses the target.
        inj = FaultInjector(at_edge=10)
        inj.on_edges(4)
        inj.on_edges(5)  # cumulative 9: still short of 10
        with pytest.raises(InjectedFault):
            inj.on_edges(4)  # crosses 10 inside this batch
        assert inj.counts["edge"] == 13

    def test_fires_exactly_once(self):
        inj = FaultInjector(at_rr_set=1)
        with pytest.raises(InjectedFault):
            inj.on_rr_set()
        inj.on_rr_set()  # already fired: now a no-op
        assert inj.fired["rr_set"]
        assert not inj.pending()

    def test_pending_tracks_unfired_targets(self):
        inj = FaultInjector(at_rr_set=2, at_io=1)
        assert inj.pending()
        with pytest.raises(InjectedFault):
            inj.on_io()
        assert inj.pending()  # rr_set target still armed
        inj.on_rr_set()
        with pytest.raises(InjectedFault):
            inj.on_rr_set()
        assert not inj.pending()

    def test_delay_mode_sleeps_instead_of_raising(self):
        slept = []
        inj = FaultInjector(
            at_rr_set=2, mode="delay", delay_seconds=0.5, sleep=slept.append
        )
        inj.on_rr_set()
        inj.on_rr_set()  # no raise in delay mode
        assert len(slept) == 1
        assert slept[0] >= 0.5  # base delay plus non-negative jitter

    def test_delay_jitter_is_seed_deterministic(self):
        def record(seed):
            slept = []
            inj = FaultInjector(
                at_rr_set=1,
                mode="delay",
                delay_seconds=0.1,
                jitter=0.5,
                seed=seed,
                sleep=slept.append,
            )
            inj.on_rr_set()
            return slept[0]

        assert record(7) == record(7)
        assert record(7) != record(8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "explode"},
            {"at_rr_set": 0},
            {"at_edge": -1},
            {"at_io": 0},
            {"delay_seconds": -0.1},
            {"jitter": -1.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultInjector(**kwargs)


class TestIoAxis:
    def test_fires_on_nth_checkpoint_write(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.npz")
        store.fault_injector = FaultInjector(at_io=2)
        store.save({"round": 1})
        with pytest.raises(InjectedFault):
            store.save({"round": 2})
        # The fault fires before the write touches disk, so the previous
        # checkpoint survives the "crash" intact.
        meta, pools = CheckpointStore(tmp_path / "ckpt.npz").load()
        assert meta == {"round": 1}

    def test_fires_on_checkpoint_read(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.npz")
        store.save({"round": 1})
        store.fault_injector = FaultInjector(at_io=1)
        with pytest.raises(InjectedFault):
            store.load()


class TestFaultsInsideRuns:
    def test_injected_fault_is_not_a_graceful_interruption(self):
        # The whole point: a crash must NOT be absorbed into a partial
        # result the way budget/cancellation interruptions are.
        assert not issubclass(InjectedFault, ExecutionInterrupted)

    @pytest.mark.parametrize("name", ["opim-c", "hist", "subsim"])
    def test_rr_fault_propagates_out_of_run(self, wc_graph, name):
        algo = get_algorithm(name, wc_graph)
        with pytest.raises(InjectedFault):
            algo.run(
                K,
                eps=EPS,
                seed=SEED,
                fault_injector=FaultInjector(at_rr_set=50),
            )

    def test_edge_fault_propagates_out_of_run(self, wc_graph):
        algo = get_algorithm("opim-c", wc_graph)
        with pytest.raises(InjectedFault):
            algo.run(
                K,
                eps=EPS,
                seed=SEED,
                fault_injector=FaultInjector(at_edge=500),
            )

    def test_unfired_injector_changes_nothing(self, wc_graph):
        plain = get_algorithm("opim-c", wc_graph).run(K, eps=EPS, seed=SEED)
        watched = get_algorithm("opim-c", wc_graph).run(
            K,
            eps=EPS,
            seed=SEED,
            fault_injector=FaultInjector(at_rr_set=10**9),
        )
        assert watched.status == "complete"
        assert watched.seeds == plain.seeds
        assert watched.num_rr_sets == plain.num_rr_sets
