"""Tests for the sampling engine: schedules, sessions, cross-query reuse."""

import numpy as np
import pytest

from repro.core.registry import get_algorithm
from repro.engine.schedule import SamplingSchedule
from repro.engine.session import BankProvider, QuerySession
from repro.utils.exceptions import CheckpointError, ConfigurationError


class TestSamplingSchedule:
    def test_doubling_geometry(self):
        sched = SamplingSchedule(100, 1600, 5)
        assert [sched.theta_at(i) for i in range(1, 6)] == [
            100, 200, 400, 800, 1600,
        ]

    def test_theta_max_clamps(self):
        sched = SamplingSchedule(100, 500, 4)
        assert sched.theta_at(4) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSchedule(0, 10, 1)
        with pytest.raises(ValueError):
            SamplingSchedule(10, 5, 1)
        with pytest.raises(ValueError):
            SamplingSchedule(10, 20, 0)
        with pytest.raises(ValueError):
            SamplingSchedule(10, 20, 2).theta_at(0)


class TestBankProvider:
    def test_needs_exactly_one_rng_source(self, wc_graph):
        with pytest.raises(ConfigurationError):
            BankProvider(wc_graph)
        with pytest.raises(ConfigurationError):
            BankProvider(
                wc_graph, rng=np.random.default_rng(0), entropy=1
            )

    def test_transient_banks_share_the_run_rng(self, wc_graph):
        rng = np.random.default_rng(0)
        provider = BankProvider.transient(wc_graph, rng)
        from repro.rrsets.vanilla import VanillaICGenerator

        bank1 = provider.get("a", lambda: VanillaICGenerator(wc_graph))
        bank2 = provider.get("b", lambda: VanillaICGenerator(wc_graph))
        assert bank1 is not bank2
        assert bank1.rng is rng and bank2.rng is rng
        assert not bank1.reusable and not bank2.reusable

    def test_session_streams_depend_only_on_role(self, wc_graph):
        from repro.rrsets.vanilla import VanillaICGenerator

        def make():
            return VanillaICGenerator(wc_graph)

        p1 = BankProvider(wc_graph, entropy=42, reuse=True)
        p1.begin_query(None)
        a_first = p1.get("r1", make)
        a_first.ensure(10)

        # Same role requested after other roles, in another provider: the
        # stream origin is identical.
        p2 = BankProvider(wc_graph, entropy=42, reuse=True)
        p2.begin_query(None)
        p2.get("zzz", make).ensure(3)
        a_second = p2.get("r1", make)
        a_second.ensure(10)
        for i in range(10):
            np.testing.assert_array_equal(
                a_first.pool.set_nodes(i), a_second.pool.set_nodes(i)
            )

    def test_non_reusable_roles_not_cached(self, wc_graph):
        from repro.rrsets.vanilla import VanillaICGenerator

        def make():
            return VanillaICGenerator(wc_graph)

        p = BankProvider(wc_graph, entropy=1, reuse=True)
        p.begin_query(None)
        cached = p.get("plain", make)
        masked = p.get(
            "masked", make, stop_mask=np.zeros(wc_graph.n, dtype=bool)
        )
        p.end_query()
        p.begin_query(None)
        assert p.get("plain", make) is cached
        assert p.get(
            "masked", make, stop_mask=np.zeros(wc_graph.n, dtype=bool)
        ) is not masked


class TestWarmColdIdentity:
    """A warm query must be bit-identical to the same query run cold."""

    @pytest.mark.parametrize("algorithm", ["opim-c", "subsim"])
    def test_second_query_matches_cold(self, wc_graph, algorithm):
        warm = QuerySession(wc_graph, algorithm, seed=17)
        warm.maximize(4, eps=0.3)
        warm_second = warm.maximize(8, eps=0.3)

        cold = QuerySession(wc_graph, algorithm, seed=17)
        cold.maximize(4, eps=0.3)  # advance query index identically
        cold_direct = QuerySession(wc_graph, algorithm, seed=17)
        cold_direct.queries_served = 1
        cold_result = cold_direct.maximize(8, eps=0.3)

        assert warm_second.seeds == cold_result.seeds
        assert warm_second.num_rr_sets == cold_result.num_rr_sets
        assert warm_second.lower_bound == cold_result.lower_bound
        assert warm_second.upper_bound == cold_result.upper_bound

    def test_warm_query_reuses_sets(self, wc_graph):
        session = QuerySession(wc_graph, "subsim", seed=5)
        first = session.maximize(10, eps=0.3)
        second = session.maximize(4, eps=0.3)
        assert first.extras["session"]["sets_reused"] == 0
        assert second.extras["session"]["sets_reused"] > 0
        assert (
            second.extras["session"]["sets_generated"]
            <= first.extras["session"]["sets_generated"]
        )

    def test_session_metrics_accumulate(self, wc_graph):
        session = QuerySession(wc_graph, "subsim", seed=5)
        session.maximize(6, eps=0.3)
        session.maximize(6, eps=0.3)
        generated = session.metrics.value("bank.sets_generated")
        reused = session.metrics.value("bank.sets_reused")
        assert generated > 0
        # An identical second query is served entirely from the pool.
        assert reused == generated


class TestSessionAcrossAlgorithms:
    @pytest.mark.parametrize(
        "algorithm,kwargs",
        [
            ("opim-c", {}),
            ("subsim", {}),
            ("hist", {}),
            ("hist+subsim", {}),
            ("imm", {"max_rr_sets": 2000}),
            ("tim+", {"max_rr_sets": 2000}),
            ("ssa", {}),
            ("d-ssa", {}),
            ("borgs-ris", {"scale_tau": 1e-4, "max_rr_sets": 5000}),
        ],
    )
    def test_two_queries_smoke(self, wc_graph, algorithm, kwargs):
        session = QuerySession(wc_graph, algorithm, seed=3, **kwargs)
        r1 = session.maximize(3, eps=0.4)
        r2 = session.maximize(5, eps=0.4)
        assert len(r1.seeds) == 3
        assert len(r2.seeds) == 5
        assert r1.extras["session"]["query_index"] == 1
        assert r2.extras["session"]["query_index"] == 2


class TestSessionPersistence:
    def test_save_restore_matches_live_session(self, wc_graph, tmp_path):
        path = str(tmp_path / "session.npz")
        live = QuerySession(wc_graph, "subsim", seed=23)
        live.maximize(5, eps=0.3)
        live.save(path)
        continued = live.maximize(9, eps=0.3)

        restored = QuerySession(wc_graph, "subsim", seed=23).restore(path)
        assert restored.queries_served == 1
        resumed = restored.maximize(9, eps=0.3)
        assert resumed.seeds == continued.seeds
        assert resumed.num_rr_sets == continued.num_rr_sets

    def test_restore_rejects_other_algorithm(self, wc_graph, tmp_path):
        path = str(tmp_path / "session.npz")
        QuerySession(wc_graph, "subsim", seed=1).save(path)
        with pytest.raises(CheckpointError):
            QuerySession(wc_graph, "opim-c", seed=1).restore(path)

    def test_restore_rejects_other_graph(self, wc_graph, er_graph, tmp_path):
        path = str(tmp_path / "session.npz")
        s = QuerySession(wc_graph, "subsim", seed=1)
        s.maximize(3, eps=0.4)
        s.save(path)
        with pytest.raises(CheckpointError):
            QuerySession(er_graph, "subsim", seed=1).restore(path)

    def test_session_seed_must_be_int(self, wc_graph):
        with pytest.raises(ConfigurationError):
            QuerySession(wc_graph, "subsim", seed="nope")


class TestSessionRunCheckpointConflict:
    def test_banks_with_run_checkpoint_rejected(self, wc_graph, tmp_path):
        session = QuerySession(wc_graph, "opim-c", seed=2)
        algo = get_algorithm("opim-c", wc_graph)
        with pytest.raises(ConfigurationError):
            algo.run(
                3,
                eps=0.4,
                checkpoint=str(tmp_path / "run.npz"),
                banks=session.provider,
            )


class TestDynamicDeltas:
    """QuerySession.apply_delta: in-place bank repair across queries."""

    def _graph(self, n=300):
        from repro.graphs.generators import preferential_attachment
        from repro.graphs.weights import wc_weights

        return wc_weights(
            preferential_attachment(n, 3, seed=1, reciprocal=0.3)
        )

    def _uncovered_edge(self, session):
        """An in-edge of a node that NO persistent bank's pool covers."""
        banks = session.provider.persistent_banks().values()
        coverage = sum(bank.pool.coverage_counts() for bank in banks)
        graph = session.graph
        for v in np.flatnonzero(coverage == 0):
            lo, hi = graph.in_indptr[v], graph.in_indptr[v + 1]
            if hi > lo:
                return (int(graph.in_indices[lo]), int(v))
        raise AssertionError("no uncovered node with in-edges")

    def test_zero_dirty_delta_keeps_answers_seed_for_seed(self):
        from repro.graphs.dynamic import GraphDelta

        # large enough that the warm pools leave some node uncovered
        session = QuerySession(self._graph(n=2_000), "subsim", seed=11)
        session.maximize(8, eps=0.4)
        edge = self._uncovered_edge(session)
        info = session.apply_delta(GraphDelta(deletes=[edge]))
        assert info["sets_repaired"] == 0
        warm = session.maximize(8, eps=0.4)

        cold_graph = self._graph(n=2_000)
        cold_graph.apply_delta(GraphDelta(deletes=[edge]))
        cold = QuerySession(cold_graph, "subsim", seed=11).maximize(
            8, eps=0.4
        )
        assert warm.seeds == cold.seeds
        assert warm.num_rr_sets == cold.num_rr_sets
        assert warm.rng_draws == cold.rng_draws

    def test_dirty_delta_repairs_in_place_and_emits_metrics(self):
        from repro.graphs.dynamic import GraphDelta

        session = QuerySession(self._graph(), "subsim", seed=11)
        session.maximize(8, eps=0.4)
        graph = session.graph
        # the highest-coverage node guarantees dirty sets
        banks = session.provider.persistent_banks().values()
        coverage = sum(bank.pool.coverage_counts() for bank in banks)
        v = int(np.argmax(coverage))
        assert graph.in_indptr[v + 1] > graph.in_indptr[v]
        u = int(graph.in_indices[graph.in_indptr[v]])
        info = session.apply_delta(GraphDelta(deletes=[(u, v)]))
        assert info["sets_repaired"] > 0
        assert 0.0 < info["dirty_fraction"] <= 1.0
        assert info["delta_epoch"] == 1
        assert session.metrics.value("generation.repaired") == (
            info["sets_repaired"]
        )
        assert session.metrics.gauge("generation.dirty_fraction") == (
            pytest.approx(info["dirty_fraction"])
        )
        # the repaired session still answers queries
        result = session.maximize(8, eps=0.4)
        assert len(result.seeds) == 8

    def test_delta_is_deterministic_across_identical_sessions(self):
        from repro.graphs.dynamic import GraphDelta

        results = []
        for _ in range(2):
            session = QuerySession(self._graph(), "subsim", seed=11)
            session.maximize(8, eps=0.4)
            graph = session.graph
            src, dst, _ = graph.edges()
            delta = GraphDelta(deletes=[(int(src[0]), int(dst[0]))])
            info = session.apply_delta(delta)
            second = session.maximize(8, eps=0.4)
            results.append((info["sets_repaired"], second.seeds,
                            second.num_rr_sets, second.rng_draws))
        assert results[0] == results[1]

    def test_sharded_session_delta_is_deterministic(self):
        from repro.graphs.dynamic import GraphDelta

        results = []
        for _ in range(2):
            session = QuerySession(
                self._graph(), "subsim", seed=11, shards=2
            )
            try:
                session.maximize(8, eps=0.4)
                graph = session.graph
                src, dst, _ = graph.edges()
                delta = GraphDelta(deletes=[(int(src[0]), int(dst[0]))])
                info = session.apply_delta(delta)
                second = session.maximize(8, eps=0.4)
                results.append(
                    (info["sets_repaired"], second.seeds,
                     second.num_rr_sets)
                )
            finally:
                session.close()
        assert results[0] == results[1]
