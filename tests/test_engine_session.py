"""Tests for the sampling engine: schedules, sessions, cross-query reuse."""

import numpy as np
import pytest

from repro.core.registry import get_algorithm
from repro.engine.schedule import SamplingSchedule
from repro.engine.session import BankProvider, QuerySession
from repro.utils.exceptions import CheckpointError, ConfigurationError


class TestSamplingSchedule:
    def test_doubling_geometry(self):
        sched = SamplingSchedule(100, 1600, 5)
        assert [sched.theta_at(i) for i in range(1, 6)] == [
            100, 200, 400, 800, 1600,
        ]

    def test_theta_max_clamps(self):
        sched = SamplingSchedule(100, 500, 4)
        assert sched.theta_at(4) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSchedule(0, 10, 1)
        with pytest.raises(ValueError):
            SamplingSchedule(10, 5, 1)
        with pytest.raises(ValueError):
            SamplingSchedule(10, 20, 0)
        with pytest.raises(ValueError):
            SamplingSchedule(10, 20, 2).theta_at(0)


class TestBankProvider:
    def test_needs_exactly_one_rng_source(self, wc_graph):
        with pytest.raises(ConfigurationError):
            BankProvider(wc_graph)
        with pytest.raises(ConfigurationError):
            BankProvider(
                wc_graph, rng=np.random.default_rng(0), entropy=1
            )

    def test_transient_banks_share_the_run_rng(self, wc_graph):
        rng = np.random.default_rng(0)
        provider = BankProvider.transient(wc_graph, rng)
        from repro.rrsets.vanilla import VanillaICGenerator

        bank1 = provider.get("a", lambda: VanillaICGenerator(wc_graph))
        bank2 = provider.get("b", lambda: VanillaICGenerator(wc_graph))
        assert bank1 is not bank2
        assert bank1.rng is rng and bank2.rng is rng
        assert not bank1.reusable and not bank2.reusable

    def test_session_streams_depend_only_on_role(self, wc_graph):
        from repro.rrsets.vanilla import VanillaICGenerator

        def make():
            return VanillaICGenerator(wc_graph)

        p1 = BankProvider(wc_graph, entropy=42, reuse=True)
        p1.begin_query(None)
        a_first = p1.get("r1", make)
        a_first.ensure(10)

        # Same role requested after other roles, in another provider: the
        # stream origin is identical.
        p2 = BankProvider(wc_graph, entropy=42, reuse=True)
        p2.begin_query(None)
        p2.get("zzz", make).ensure(3)
        a_second = p2.get("r1", make)
        a_second.ensure(10)
        for i in range(10):
            np.testing.assert_array_equal(
                a_first.pool.set_nodes(i), a_second.pool.set_nodes(i)
            )

    def test_non_reusable_roles_not_cached(self, wc_graph):
        from repro.rrsets.vanilla import VanillaICGenerator

        def make():
            return VanillaICGenerator(wc_graph)

        p = BankProvider(wc_graph, entropy=1, reuse=True)
        p.begin_query(None)
        cached = p.get("plain", make)
        masked = p.get(
            "masked", make, stop_mask=np.zeros(wc_graph.n, dtype=bool)
        )
        p.end_query()
        p.begin_query(None)
        assert p.get("plain", make) is cached
        assert p.get(
            "masked", make, stop_mask=np.zeros(wc_graph.n, dtype=bool)
        ) is not masked


class TestWarmColdIdentity:
    """A warm query must be bit-identical to the same query run cold."""

    @pytest.mark.parametrize("algorithm", ["opim-c", "subsim"])
    def test_second_query_matches_cold(self, wc_graph, algorithm):
        warm = QuerySession(wc_graph, algorithm, seed=17)
        warm.maximize(4, eps=0.3)
        warm_second = warm.maximize(8, eps=0.3)

        cold = QuerySession(wc_graph, algorithm, seed=17)
        cold.maximize(4, eps=0.3)  # advance query index identically
        cold_direct = QuerySession(wc_graph, algorithm, seed=17)
        cold_direct.queries_served = 1
        cold_result = cold_direct.maximize(8, eps=0.3)

        assert warm_second.seeds == cold_result.seeds
        assert warm_second.num_rr_sets == cold_result.num_rr_sets
        assert warm_second.lower_bound == cold_result.lower_bound
        assert warm_second.upper_bound == cold_result.upper_bound

    def test_warm_query_reuses_sets(self, wc_graph):
        session = QuerySession(wc_graph, "subsim", seed=5)
        first = session.maximize(10, eps=0.3)
        second = session.maximize(4, eps=0.3)
        assert first.extras["session"]["sets_reused"] == 0
        assert second.extras["session"]["sets_reused"] > 0
        assert (
            second.extras["session"]["sets_generated"]
            <= first.extras["session"]["sets_generated"]
        )

    def test_session_metrics_accumulate(self, wc_graph):
        session = QuerySession(wc_graph, "subsim", seed=5)
        session.maximize(6, eps=0.3)
        session.maximize(6, eps=0.3)
        generated = session.metrics.value("bank.sets_generated")
        reused = session.metrics.value("bank.sets_reused")
        assert generated > 0
        # An identical second query is served entirely from the pool.
        assert reused == generated


class TestSessionAcrossAlgorithms:
    @pytest.mark.parametrize(
        "algorithm,kwargs",
        [
            ("opim-c", {}),
            ("subsim", {}),
            ("hist", {}),
            ("hist+subsim", {}),
            ("imm", {"max_rr_sets": 2000}),
            ("tim+", {"max_rr_sets": 2000}),
            ("ssa", {}),
            ("d-ssa", {}),
            ("borgs-ris", {"scale_tau": 1e-4, "max_rr_sets": 5000}),
        ],
    )
    def test_two_queries_smoke(self, wc_graph, algorithm, kwargs):
        session = QuerySession(wc_graph, algorithm, seed=3, **kwargs)
        r1 = session.maximize(3, eps=0.4)
        r2 = session.maximize(5, eps=0.4)
        assert len(r1.seeds) == 3
        assert len(r2.seeds) == 5
        assert r1.extras["session"]["query_index"] == 1
        assert r2.extras["session"]["query_index"] == 2


class TestSessionPersistence:
    def test_save_restore_matches_live_session(self, wc_graph, tmp_path):
        path = str(tmp_path / "session.npz")
        live = QuerySession(wc_graph, "subsim", seed=23)
        live.maximize(5, eps=0.3)
        live.save(path)
        continued = live.maximize(9, eps=0.3)

        restored = QuerySession(wc_graph, "subsim", seed=23).restore(path)
        assert restored.queries_served == 1
        resumed = restored.maximize(9, eps=0.3)
        assert resumed.seeds == continued.seeds
        assert resumed.num_rr_sets == continued.num_rr_sets

    def test_restore_rejects_other_algorithm(self, wc_graph, tmp_path):
        path = str(tmp_path / "session.npz")
        QuerySession(wc_graph, "subsim", seed=1).save(path)
        with pytest.raises(CheckpointError):
            QuerySession(wc_graph, "opim-c", seed=1).restore(path)

    def test_restore_rejects_other_graph(self, wc_graph, er_graph, tmp_path):
        path = str(tmp_path / "session.npz")
        s = QuerySession(wc_graph, "subsim", seed=1)
        s.maximize(3, eps=0.4)
        s.save(path)
        with pytest.raises(CheckpointError):
            QuerySession(er_graph, "subsim", seed=1).restore(path)

    def test_session_seed_must_be_int(self, wc_graph):
        with pytest.raises(ConfigurationError):
            QuerySession(wc_graph, "subsim", seed="nope")


class TestSessionRunCheckpointConflict:
    def test_banks_with_run_checkpoint_rejected(self, wc_graph, tmp_path):
        session = QuerySession(wc_graph, "opim-c", seed=2)
        algo = get_algorithm("opim-c", wc_graph)
        with pytest.raises(ConfigurationError):
            algo.run(
                3,
                eps=0.4,
                checkpoint=str(tmp_path / "run.npz"),
                banks=session.provider,
            )
