"""Tests for the Lemma 3 / Lemma 4 empirical validators."""

import pytest

from repro.experiments.theory_checks import (
    check_lemma3,
    check_lemma4_wc,
    theory_check_rows,
)
from repro.graphs.generators import preferential_attachment, star_graph
from repro.graphs.weights import uniform_weights, wc_weights
from repro.utils.exceptions import ConfigurationError


class TestLemma3:
    @pytest.mark.parametrize("h,p", [(10, 0.1), (100, 0.05), (50, 0.5)])
    def test_cost_matches_one_plus_mu(self, h, p):
        check = check_lemma3(h, p, trials=20_000, seed=0)
        assert check.ratio == pytest.approx(1.0, abs=0.05)

    def test_tiny_probability_cost_is_constant(self):
        check = check_lemma3(10_000, 1e-5, trials=5000, seed=0)
        # mu ~ 0.1: cost ~ 1.1 regardless of h = 10^4.
        assert check.measured_cost < 1.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            check_lemma3(10, 0.1, trials=0)


class TestLemma4:
    def test_bound_holds_on_pa_graph(self):
        g = wc_weights(preferential_attachment(300, 4, seed=3, reciprocal=0.3))
        check = check_lemma4_wc(g, num_rr=3000, num_influence_samples=6000,
                                seed=0)
        # Under WC the lemma is tight: both sides estimate the same
        # quantity, so the slack must hover around 1 (heavy-tail MC noise).
        assert 0.75 <= check.slack <= 1.33

    def test_bound_holds_on_star(self):
        g = wc_weights(star_graph(50, center_out=True))
        check = check_lemma4_wc(g, num_rr=2000, num_influence_samples=2000,
                                seed=1)
        assert 0.75 <= check.slack <= 1.33

    def test_rejects_non_wc_graphs(self):
        g = uniform_weights(preferential_attachment(50, 3, seed=1), 0.1)
        with pytest.raises(ConfigurationError):
            check_lemma4_wc(g)

    def test_summary_row(self):
        g = wc_weights(preferential_attachment(150, 3, seed=2, reciprocal=0.3))
        row = theory_check_rows(g, seed=0)
        assert 0.75 <= row["lemma4_slack"] <= 1.33
        assert {"lemma3_measured", "lemma4_bound"} <= set(row)
