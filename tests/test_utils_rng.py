"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, random_unit, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9)
        b = as_generator(2).integers(0, 10**9)
        assert a != b

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(as_generator(np.int64(5)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            as_generator(1.5)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_generators(7, 3)
        draws = [g.integers(0, 10**9) for g in children]
        assert len(set(draws)) == 3

    def test_reproducible_from_same_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(9, 4)]
        b = [g.integers(0, 10**9) for g in spawn_generators(9, 4)]
        assert a == b

    def test_accepts_generator_parent(self):
        parent = np.random.default_rng(3)
        children = spawn_generators(parent, 2)
        assert len(children) == 2


class TestRandomUnit:
    def test_in_open_interval(self, rng):
        values = [random_unit(rng) for _ in range(1000)]
        assert all(0.0 < v < 1.0 for v in values)
