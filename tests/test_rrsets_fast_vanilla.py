"""Tests for the vectorised vanilla generator (engineering extra)."""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.vanilla import VanillaICGenerator


class TestDeterministic:
    def test_path_prefix(self, path10, rng):
        gen = FastVanillaICGenerator(path10)
        assert sorted(gen.generate(rng, root=6)) == list(range(7))

    def test_cycle(self, cycle8, rng):
        gen = FastVanillaICGenerator(cycle8)
        assert sorted(gen.generate(rng, root=0)) == list(range(8))


class TestDistributionEquivalence:
    def test_matches_loop_vanilla(self):
        g = wc_weights(preferential_attachment(60, 3, seed=8, reciprocal=0.4))
        trials = 20_000
        root = 2
        freqs = []
        for gen_cls, seed in ((VanillaICGenerator, 0), (FastVanillaICGenerator, 1)):
            rng = np.random.default_rng(seed)
            gen = gen_cls(g)
            counts = np.zeros(g.n)
            for _ in range(trials):
                for node in gen.generate(rng, root=root):
                    counts[node] += 1
            freqs.append(counts / trials)
        assert np.max(np.abs(freqs[0] - freqs[1])) < 0.02

    def test_single_edge_probability(self, rng):
        g = build_graph(2, [0], [1], [0.25])
        gen = FastVanillaICGenerator(g)
        hits = sum(len(gen.generate(rng, root=1)) == 2 for _ in range(30_000))
        assert abs(hits / 30_000 - 0.25) < 0.012


class TestSentinelAndCounters:
    def test_sentinel_stop(self, path10, rng):
        gen = FastVanillaICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[5] = True
        assert sorted(gen.generate(rng, root=9, stop_mask=stop)) == [5, 6, 7, 8, 9]

    def test_counters_match_examined_edges(self, path10, rng):
        gen = FastVanillaICGenerator(path10)
        gen.generate(rng, root=9)
        assert gen.counters.edges_examined == 9

    def test_usable_in_opimc(self, wc_graph):
        from repro.algorithms.opimc import OPIMC

        res = OPIMC(wc_graph, FastVanillaICGenerator).run(4, eps=0.4, seed=0)
        assert len(res.seeds) == 4
        assert res.algorithm == "opim-c+fast-vanilla"
