"""Tests for graph deltas and incremental CSR mutation.

The load-bearing invariant: :meth:`CSRGraph.apply_delta` performs block
surgery that leaves the CSR arrays **bit-identical** to a from-scratch
``build_graph`` on the mutated edge set — that is what lets RR-set repair
argue that clean sets replay unchanged.  The hypothesis properties at the
bottom drive random graphs through random deltas and assert exactly that,
with and without :meth:`CSRGraph.compact`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import CSRGraph, build_graph
from repro.graphs.dynamic import GraphDelta
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import GraphFormatError


def small_graph():
    """A fresh 40-node graph (tests mutate it, so never a shared fixture)."""
    return wc_weights(preferential_attachment(40, 3, seed=5, reciprocal=0.3))


def edge_dict(graph):
    src, dst, prob = graph.edges()
    return {
        (int(u), int(v)): float(p)
        for u, v, p in zip(src, dst, prob)
    }


def assert_graphs_bit_identical(actual, expected):
    for slot in (
        "out_indptr", "out_indices", "out_probs",
        "in_indptr", "in_indices", "in_probs",
        "in_prob_sums",
    ):
        np.testing.assert_array_equal(
            getattr(actual, slot), getattr(expected, slot), err_msg=slot
        )
    assert actual.m == expected.m
    assert actual.fingerprint() == expected.fingerprint()


class TestGraphDelta:
    def test_payload_round_trip(self):
        delta = GraphDelta(
            inserts=[(0, 1, 0.5), (2, 3, 0.25)],
            deletes=[(4, 5)],
            updates=[(6, 7, 0.75)],
        )
        clone = GraphDelta.from_payload(delta.to_payload())
        assert clone.to_payload() == delta.to_payload()
        assert clone.num_changes == 4

    def test_touched_nodes_are_unique_destinations(self):
        delta = GraphDelta(
            inserts=[(0, 9, 0.5)],
            deletes=[(1, 9), (2, 7)],
            updates=[(3, 8, 0.1)],
        )
        np.testing.assert_array_equal(delta.touched_nodes(), [7, 8, 9])

    def test_self_loop_insert_rejected(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            GraphDelta(inserts=[(3, 3, 0.5)])

    def test_probability_range_checked(self):
        with pytest.raises(GraphFormatError, match="\\[0, 1\\]"):
            GraphDelta(inserts=[(0, 1, 1.5)])
        with pytest.raises(GraphFormatError, match="\\[0, 1\\]"):
            GraphDelta(updates=[(0, 1, -0.1)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphFormatError, match=">= 0"):
            GraphDelta(deletes=[(-1, 2)])

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(GraphFormatError, match="unknown delta fields"):
            GraphDelta.from_payload({"inserts": [], "upserts": []})

    def test_edge_in_two_groups_rejected_on_validate(self):
        graph = small_graph()
        src, dst, _ = graph.edges()
        u, v = int(src[0]), int(dst[0])
        delta = GraphDelta(deletes=[(u, v)], updates=[(u, v, 0.5)])
        with pytest.raises(GraphFormatError, match="at most once"):
            delta.validate_against(graph)


class TestApplyDelta:
    def test_delete_missing_edge_rejected(self):
        graph = small_graph()
        edges = edge_dict(graph)
        pair = next(
            (u, v)
            for u in range(graph.n)
            for v in range(graph.n)
            if u != v and (u, v) not in edges
        )
        with pytest.raises(GraphFormatError, match="no such edge"):
            graph.apply_delta(GraphDelta(deletes=[pair]))

    def test_insert_existing_edge_rejected(self):
        graph = small_graph()
        (u, v), _ = next(iter(sorted(edge_dict(graph).items())))
        with pytest.raises(GraphFormatError, match="already exists"):
            graph.apply_delta(GraphDelta(inserts=[(u, v, 0.5)]))

    def test_mixed_delta_matches_scratch_build(self):
        graph = small_graph()
        edges = edge_dict(graph)
        (du, dv), _ = sorted(edges.items())[0]
        (uu, uv), _ = sorted(edges.items())[1]
        iu, iv = next(
            (a, b)
            for a in range(graph.n)
            for b in range(graph.n)
            if a != b and (a, b) not in edges
        )
        touched = graph.apply_delta(GraphDelta(
            inserts=[(iu, iv, 0.4)],
            deletes=[(du, dv)],
            updates=[(uu, uv, 0.2)],
        ))
        np.testing.assert_array_equal(touched, np.unique([dv, uv, iv]))
        del edges[(du, dv)]
        edges[(uu, uv)] = 0.2
        edges[(iu, iv)] = 0.4
        rows = sorted(edges.items())
        expected = build_graph(
            graph.n,
            [u for (u, _), _ in rows],
            [v for (_, v), _ in rows],
            [p for _, p in rows],
            weight_model=graph.weight_model,
        )
        assert_graphs_bit_identical(graph, expected)

    def test_epoch_and_fingerprint_advance(self):
        graph = small_graph()
        before = graph.fingerprint()
        (u, v), _ = next(iter(sorted(edge_dict(graph).items())))
        graph.apply_delta(GraphDelta(deletes=[(u, v)]))
        assert graph.delta_epoch == 1
        assert graph.fingerprint() != before

    def test_empty_delta_is_a_noop(self):
        graph = small_graph()
        before = graph.fingerprint()
        touched = graph.apply_delta(GraphDelta())
        assert len(touched) == 0
        assert graph.delta_epoch == 0
        assert graph.fingerprint() == before

    def test_compact_preserves_content_and_epoch(self):
        graph = small_graph()
        (u, v), p = next(iter(sorted(edge_dict(graph).items())))
        graph.apply_delta(GraphDelta(updates=[(u, v, p / 2)]))
        fingerprint = graph.fingerprint()
        graph.compact()
        assert graph.delta_epoch == 1
        assert graph.fingerprint() == fingerprint

    def test_auto_compaction_fires_every_nth_delta(self, monkeypatch):
        monkeypatch.setattr(CSRGraph, "COMPACT_EVERY", 2)
        graph = small_graph()
        rows = iter(sorted(edge_dict(graph).items()))
        compactions = []
        original = CSRGraph.compact
        monkeypatch.setattr(
            CSRGraph,
            "compact",
            lambda self: (compactions.append(self.delta_epoch),
                          original(self)),
        )
        for _ in range(4):
            (u, v), p = next(rows)
            graph.apply_delta(GraphDelta(updates=[(u, v, p / 2)]))
        assert compactions == [2, 4]


# ----------------------------------------------------------------------
# hypothesis: surgery == scratch build, for arbitrary graphs and deltas
# ----------------------------------------------------------------------

def random_graph_and_delta(data, max_n=10):
    n = data.draw(st.integers(2, max_n))
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.01, 1.0),
            ),
            max_size=min(n * (n - 1), 25),
        )
    )
    edges = {}
    for u, v, p in pairs:
        if u != v and (u, v) not in edges:
            edges[(u, v)] = p
    rows = sorted(edges.items())
    graph = build_graph(
        n,
        [u for (u, _), _ in rows],
        [v for (_, v), _ in rows],
        [p for _, p in rows],
    )

    existing = list(rows)
    k_touch = data.draw(st.integers(0, len(existing)))
    touch_idx = data.draw(
        st.lists(
            st.integers(0, len(existing) - 1),
            min_size=0, max_size=k_touch, unique=True,
        )
    ) if existing else []
    deletes, updates = [], []
    touched_pairs = set()
    for i in touch_idx:
        (u, v), _ = existing[i]
        touched_pairs.add((u, v))
        if data.draw(st.booleans()):
            deletes.append((u, v))
            del edges[(u, v)]
        else:
            p = data.draw(st.floats(0.01, 1.0))
            updates.append((u, v, p))
            edges[(u, v)] = p
    # an edge may appear in at most one delta group, so a pair already
    # deleted above cannot also be drawn as an insert
    free = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and (u, v) not in edges and (u, v) not in touched_pairs
    ]
    k_ins = data.draw(st.integers(0, min(len(free), 5)))
    inserts = []
    for i in data.draw(
        st.lists(
            st.integers(0, len(free) - 1),
            min_size=0, max_size=k_ins, unique=True,
        )
    ) if free else []:
        u, v = free[i]
        p = data.draw(st.floats(0.01, 1.0))
        inserts.append((u, v, p))
        edges[(u, v)] = p
    delta = GraphDelta(inserts=inserts, deletes=deletes, updates=updates)
    return graph, delta, edges


def scratch_build(n, edges):
    rows = sorted(edges.items())
    return build_graph(
        n,
        [u for (u, _), _ in rows],
        [v for (_, v), _ in rows],
        [p for _, p in rows],
    )


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_apply_delta_is_bit_identical_to_scratch_build(data):
    graph, delta, edges = random_graph_and_delta(data)
    graph.apply_delta(delta, auto_compact=False)
    assert_graphs_bit_identical(graph, scratch_build(graph.n, edges))


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_apply_delta_then_compact_is_bit_identical(data):
    graph, delta, edges = random_graph_and_delta(data)
    graph.apply_delta(delta, auto_compact=False)
    graph.compact()
    assert_graphs_bit_identical(graph, scratch_build(graph.n, edges))


@settings(max_examples=40, deadline=None)
@given(data=st.data(), extra=st.integers(0, 2**31))
def test_stacked_deltas_match_single_scratch_build(data, extra):
    """Several deltas in sequence still land exactly on the scratch build."""
    graph, delta, edges = random_graph_and_delta(data)
    graph.apply_delta(delta, auto_compact=False)
    rng = np.random.default_rng(extra)
    live = sorted(edges)
    if live:
        u, v = live[int(rng.integers(len(live)))]
        p = float(rng.uniform(0.01, 1.0))
        graph.apply_delta(
            GraphDelta(updates=[(u, v, p)]), auto_compact=False
        )
        edges[(u, v)] = p
    assert_graphs_bit_identical(graph, scratch_build(graph.n, edges))
