"""Precise accounting tests for generation counters.

`edges_examined` is the quantity the paper's analysis bounds (see
CONTRIBUTING.md's "sacred counter" rule); these tests pin its exact
semantics per generator on crafted graphs.
"""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.weights import uniform_weights, wc_weights
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator


class TestVanillaAccounting:
    def test_examines_every_in_edge_of_activated_nodes(self, rng):
        # star_in: root 0 activates all 7 leaves; leaves have no in-edges.
        g = star_graph(8, center_out=False)
        gen = VanillaICGenerator(g)
        gen.generate(rng, root=0)
        assert gen.counters.edges_examined == 7
        assert gen.counters.rng_draws == 7  # one coin per edge, root given

    def test_no_root_draw_when_root_given(self, path10, rng):
        gen = VanillaICGenerator(path10)
        gen.generate(rng, root=0)  # node 0 has no in-edges
        assert gen.counters.edges_examined == 0
        assert gen.counters.rng_draws == 0

    def test_root_draw_counted_when_sampled(self, path10, rng):
        gen = VanillaICGenerator(path10)
        gen.generate(rng)
        assert gen.counters.rng_draws >= 1


class TestSubsimAccounting:
    def test_wc_expected_one_examination_per_activation(self):
        """Under WC each activated node contributes ~ sum(p) = 1 trial hit."""
        g = wc_weights(star_graph(200, center_out=False))
        gen = SubsimICGenerator(g)
        rng = np.random.default_rng(0)
        trials = 5000
        for _ in range(trials):
            gen.generate(rng, root=0)
        # Root 0 has 199 in-edges each of p = 1/199: expected hits = 1.
        per_generation = gen.counters.edges_examined / trials
        assert per_generation == pytest.approx(1.0, abs=0.06)

    def test_uniform_ic_expected_mu(self):
        g = uniform_weights(star_graph(100, center_out=False), 0.05)
        gen = SubsimICGenerator(g)
        rng = np.random.default_rng(0)
        trials = 5000
        for _ in range(trials):
            gen.generate(rng, root=0)
        # mu = 99 * 0.05 = 4.95 expected examinations at the root.
        per_generation = gen.counters.edges_examined / trials
        assert per_generation == pytest.approx(4.95, rel=0.06)

    def test_probability_one_counts_all_edges(self, rng):
        g = star_graph(10, center_out=False)  # probs all 1.0
        gen = SubsimICGenerator(g)
        gen.generate(rng, root=0)
        assert gen.counters.edges_examined == 9

    def test_rng_draws_positive_when_sampling(self):
        g = wc_weights(star_graph(50, center_out=False))
        gen = SubsimICGenerator(g)
        rng = np.random.default_rng(0)
        gen.generate(rng, root=0)
        assert gen.counters.rng_draws >= 1


class TestSentinelHitAccounting:
    @pytest.mark.parametrize(
        "gen_cls", [VanillaICGenerator, SubsimICGenerator, FastVanillaICGenerator]
    )
    def test_hits_counted_per_generation(self, gen_cls, path10, rng):
        gen = gen_cls(path10)
        stop = np.zeros(10, dtype=bool)
        stop[0] = True  # upstream end: always reached from any root
        for _ in range(20):
            gen.generate(rng, stop_mask=stop)
        assert gen.counters.sentinel_hits == 20

    def test_no_hits_without_mask(self, path10, rng):
        gen = VanillaICGenerator(path10)
        for _ in range(10):
            gen.generate(rng)
        assert gen.counters.sentinel_hits == 0


class TestAverageSize:
    def test_matches_manual_average(self, rng):
        g = path_graph(4)
        gen = VanillaICGenerator(g)
        lengths = [len(gen.generate(rng, root=r)) for r in (0, 1, 2, 3)]
        assert gen.counters.average_size() == pytest.approx(
            sum(lengths) / 4
        )

    def test_empty_counter_average(self):
        gen = VanillaICGenerator(path_graph(3))
        assert gen.counters.average_size() == 0.0
