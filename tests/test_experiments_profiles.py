"""Tests for the RR-size profiler."""

import numpy as np
import pytest

from repro.experiments.profiles import profile_rr_sizes
from repro.graphs.generators import path_graph, preferential_attachment
from repro.graphs.weights import wc_variant_weights, wc_weights
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def high_graph():
    base = preferential_attachment(300, 4, seed=5, reciprocal=0.3)
    return wc_variant_weights(base, 2.5)


class TestProfile:
    def test_basic_statistics(self, high_graph):
        profile = profile_rr_sizes(high_graph, num_samples=300, seed=0)
        assert profile.count == 300
        assert 1 <= profile.mean <= high_graph.n
        assert profile.percentile(50) <= profile.percentile(99)
        assert profile.maximum >= profile.percentile(99) - 1

    def test_deterministic_graph_sizes(self):
        g = path_graph(6)
        profile = profile_rr_sizes(g, num_samples=200, seed=0)
        # RR set of root i is exactly i+1 nodes; mean ~ (1+..+6)/6 = 3.5
        assert profile.mean == pytest.approx(3.5, abs=0.4)
        assert profile.maximum == 6

    def test_sentinel_shrinks_profile(self, high_graph):
        free = profile_rr_sizes(high_graph, num_samples=300, seed=0)
        # The strongest hubs as sentinels.
        hubs = np.argsort(high_graph.out_degree())[-10:].tolist()
        stopped = profile_rr_sizes(
            high_graph, num_samples=300, sentinel_seeds=hubs, seed=0
        )
        assert stopped.mean < free.mean
        assert stopped.percentile(90) <= free.percentile(90)

    def test_tail_mass(self, high_graph):
        profile = profile_rr_sizes(high_graph, num_samples=300, seed=0)
        assert profile.tail_mass(0) == pytest.approx(1.0)
        assert profile.tail_mass(high_graph.n) == 0.0
        mid = profile.tail_mass(int(profile.percentile(50)))
        assert 0.0 <= mid <= 1.0

    def test_summary_row_keys(self, high_graph):
        row = profile_rr_sizes(high_graph, num_samples=50, seed=0).summary_row()
        assert {"count", "mean", "p90", "p99", "max"} <= set(row)

    def test_histogram_renders(self, high_graph):
        profile = profile_rr_sizes(high_graph, num_samples=100, seed=0)
        chart = profile.histogram_chart(title="t")
        assert "== t ==" in chart

    def test_validation(self, high_graph):
        with pytest.raises(ConfigurationError):
            profile_rr_sizes(high_graph, num_samples=0)
        with pytest.raises(ConfigurationError):
            profile_rr_sizes(high_graph, sentinel_seeds=[99999])
