"""Tests for structural influence bounds."""

import pytest

from repro.estimation.montecarlo import estimate_spread
from repro.estimation.rr_estimator import rr_influence_estimate
from repro.estimation.structural import influence_envelope, reachable_set
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.graphs.weights import uniform_weights, wc_weights
from repro.utils.exceptions import ConfigurationError


class TestReachableSet:
    def test_path(self):
        assert reachable_set(path_graph(5), [2]) == {2, 3, 4}

    def test_union_of_seeds(self):
        g = star_graph(6, center_out=True)
        assert reachable_set(g, [1, 2]) == {1, 2}
        assert reachable_set(g, [0]) == set(range(6))

    def test_empty_seeds(self):
        assert reachable_set(path_graph(3), []) == set()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reachable_set(path_graph(3), [7])


class TestEnvelope:
    def test_bounds_ordered(self):
        g = wc_weights(preferential_attachment(150, 3, seed=1, reciprocal=0.3))
        lower, upper = influence_envelope(g, [0, 1])
        assert lower == 2.0
        assert upper >= lower

    def test_deterministic_graph_envelope_tight(self):
        lower, upper = influence_envelope(cycle_graph(7), [3])
        assert (lower, upper) == (1.0, 7.0)

    def test_every_estimator_inside_envelope(self):
        g = uniform_weights(
            preferential_attachment(100, 3, seed=4, reciprocal=0.3), 0.2
        )
        seeds = [0, 5]
        lower, upper = influence_envelope(g, seeds)
        mc = estimate_spread(g, seeds, num_simulations=500, seed=0).mean
        rr = rr_influence_estimate(g, seeds, num_rr=5000, seed=1)
        for value in (mc, rr):
            assert lower - 1e-9 <= value <= upper + 1e-9

    def test_duplicates_collapsed(self):
        lower, _ = influence_envelope(path_graph(4), [1, 1, 1])
        assert lower == 1.0
