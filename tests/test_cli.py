"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import preferential_attachment
from repro.graphs.io import save_edge_list, save_npz
from repro.graphs.weights import wc_weights


@pytest.fixture
def graph_file(tmp_path):
    g = preferential_attachment(150, 3, seed=1, reciprocal=0.3)
    path = tmp_path / "g.txt"
    save_edge_list(g, path)
    return str(path)


@pytest.fixture
def weighted_npz(tmp_path):
    g = wc_weights(preferential_attachment(150, 3, seed=1, reciprocal=0.3))
    path = tmp_path / "g.npz"
    save_npz(g, path)
    return str(path)


class TestGenerate:
    def test_pa_with_weights(self, tmp_path, capsys):
        out = tmp_path / "out.npz"
        rc = main([
            "generate", "--model", "pa", "--n", "200", "--degree", "3",
            "--weights", "wc", "--seed", "1", "--output", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "200 nodes" in capsys.readouterr().out

    def test_dataset_standin(self, tmp_path):
        out = tmp_path / "d.npz"
        rc = main([
            "generate", "--model", "pokec-like", "--scale", "0.02",
            "--output", str(out),
        ])
        assert rc == 0

    def test_edge_list_output(self, tmp_path):
        out = tmp_path / "g.txt"
        rc = main([
            "generate", "--model", "er", "--n", "100", "--degree", "2",
            "--output", str(out),
        ])
        assert rc == 0
        assert out.read_text().startswith("#")

    def test_bad_weight_scheme(self, tmp_path, capsys):
        rc = main([
            "generate", "--model", "pa", "--n", "50", "--degree", "2",
            "--weights", "nonsense", "--output", str(tmp_path / "x.npz"),
        ])
        assert rc == 2
        assert "unknown weight scheme" in capsys.readouterr().err


class TestSummarize:
    def test_prints_stats(self, weighted_npz, capsys):
        assert main(["summarize", weighted_npz]) == 0
        out = capsys.readouterr().out
        assert "150" in out
        assert "avg_degree" in out


class TestRun:
    def test_json_output(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--eps", "0.4", "--seed", "0",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["seeds"]) == 3
        assert payload["algorithm"] == "opim-c+subsim"

    def test_weights_applied_on_the_fly(self, graph_file, capsys):
        rc = main([
            "run", graph_file, "--algorithm", "degree", "--k", "2",
            "--weights", "wc",
        ])
        assert rc == 0
        assert len(json.loads(capsys.readouterr().out)["seeds"]) == 2

    def test_evaluate_flag(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "degree", "--k", "2",
            "--evaluate", "--simulations", "50",
        ])
        assert rc == 0
        assert "expected_spread" in json.loads(capsys.readouterr().out)

    def test_batch_size_flag(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--eps", "0.4", "--seed", "0", "--batch-size", "64",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["seeds"]) == 3
        assert payload["status"] == "complete"

    def test_workers_flag(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--eps", "0.4", "--seed", "0", "--batch-size", "64",
            "--workers", "2",
        ])
        assert rc == 0
        assert len(json.loads(capsys.readouterr().out)["seeds"]) == 3

    def test_workers_with_resume_rejected(self, weighted_npz, tmp_path, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--checkpoint", str(tmp_path / "c.npz"), "--resume",
            "--workers", "2",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "--resume" in err

    def test_bad_batch_size_rejected(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--batch-size", "0",
        ])
        assert rc == 2
        assert "--batch-size" in capsys.readouterr().err


class TestEvaluate:
    def test_spread_of_explicit_seeds(self, weighted_npz, capsys):
        rc = main([
            "evaluate", weighted_npz, "--seeds", "0,1,2",
            "--simulations", "50",
        ])
        assert rc == 0
        assert "expected spread" in capsys.readouterr().out


class TestAudit:
    def test_certificate_printed(self, weighted_npz, capsys):
        rc = main([
            "audit", weighted_npz, "--seeds", "0,1,2", "--k", "3",
            "--num-rr", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "certificate" in out
        assert "OPT_3" in out

    def test_attribution_flag(self, weighted_npz, capsys):
        rc = main([
            "audit", weighted_npz, "--seeds", "0,1", "--k", "2",
            "--num-rr", "1000", "--attribution", "--simulations", "30",
        ])
        assert rc == 0
        assert "attribution" in capsys.readouterr().out

    def test_empty_seed_error(self, weighted_npz, capsys):
        rc = main([
            "audit", weighted_npz, "--seeds", "0", "--k", "0",
        ])
        assert rc == 2


class TestCalibrate:
    def test_wc_variant(self, graph_file, capsys):
        rc = main([
            "calibrate", graph_file, "--mode", "wc-variant", "--target", "20",
        ])
        assert rc == 0
        assert "theta" in capsys.readouterr().out

    def test_uniform(self, graph_file, capsys):
        rc = main([
            "calibrate", graph_file, "--mode", "uniform", "--target", "20",
        ])
        assert rc == 0
        assert "p =" in capsys.readouterr().out


class TestRRStats:
    def test_compares_generators(self, weighted_npz, capsys):
        rc = main([
            "rr-stats", weighted_npz, "--count", "200",
            "--generators", "vanilla,subsim,fast-vanilla",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vanilla" in out and "subsim" in out

    def test_unknown_generator(self, weighted_npz, capsys):
        rc = main(["rr-stats", weighted_npz, "--generators", "warp-drive"])
        assert rc == 2


class TestProfile:
    def test_prints_distribution(self, weighted_npz, capsys):
        rc = main(["profile", weighted_npz, "--count", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RR-set size profile" in out
        assert "p99" in out

    def test_with_sentinels(self, weighted_npz, capsys):
        rc = main([
            "profile", weighted_npz, "--count", "100", "--sentinels", "0,1",
        ])
        assert rc == 0

    def test_bad_sentinel(self, weighted_npz):
        rc = main([
            "profile", weighted_npz, "--count", "10", "--sentinels", "99999",
        ])
        assert rc == 2


class TestStability:
    def test_report_printed(self, weighted_npz, capsys):
        rc = main([
            "stability", weighted_npz, "--algorithm", "degree", "--k", "3",
            "--runs", "2", "--simulations", "20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed-set stability" in out
        assert "core seeds" in out


class TestExperiment:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2", "--scale", "0.02"])
        assert rc == 0
        assert "pokec-like" in capsys.readouterr().out


class TestReport:
    def test_report_from_fixture_dir(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1_wc_running_time.txt").write_text("body\n")
        rc = main(["report", "--results-dir", str(results)])
        assert rc == 0
        assert "Reproduction report" in capsys.readouterr().out

    def test_report_missing_dir_errors(self, tmp_path, capsys):
        rc = main(["report", "--results-dir", str(tmp_path / "nope")])
        assert rc == 2


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_algorithm_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "g", "--algorithm", "x", "--k", "1"])


class TestInterrupt:
    """Ctrl-C during ``run`` degrades to a partial result + exit 130."""

    def _stub_algorithm(self, monkeypatch, behavior):
        class Stub:
            def run(self, k, **kwargs):
                return behavior(k, kwargs)

        monkeypatch.setattr(
            "repro.cli.get_algorithm", lambda *a, **kw: Stub()
        )

    def test_sigint_prints_partial_and_exits_130(
        self, weighted_npz, monkeypatch, capsys
    ):
        import signal as signal_module

        from repro.core.results import IMResult
        from repro.utils.exceptions import CancelledError

        def behavior(k, kwargs):
            token = kwargs["cancel"]
            assert token is not None and not token.cancelled
            # Simulate Ctrl-C mid-run: the CLI's handler must cancel the
            # token instead of letting KeyboardInterrupt unwind the stack.
            signal_module.raise_signal(signal_module.SIGINT)
            assert token.cancelled
            try:
                token.raise_if_cancelled()
            except CancelledError:
                pass
            return IMResult(
                algorithm="subsim", seeds=[1, 2], k=k, eps=0.3, delta=0.01,
                runtime_seconds=0.1, lower_bound=10.0, upper_bound=40.0,
                status="partial", stop_reason="cancelled",
            )

        self._stub_algorithm(monkeypatch, behavior)
        rc = main(["run", weighted_npz, "--algorithm", "subsim", "--k", "2"])
        captured = capsys.readouterr()
        assert rc == 130
        payload = json.loads(captured.out)
        assert payload["status"] == "partial"
        assert payload["stop_reason"] == "cancelled"
        assert payload["certificate"]["complete"] is False
        assert payload["certificate"]["ratio"] == 0.25
        assert "partial results" in captured.err

    def test_hard_keyboard_interrupt_exits_130_without_traceback(
        self, weighted_npz, monkeypatch, capsys
    ):
        def behavior(k, kwargs):
            raise KeyboardInterrupt

        self._stub_algorithm(monkeypatch, behavior)
        rc = main(["run", weighted_npz, "--algorithm", "subsim", "--k", "2"])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err

    def test_budget_partial_keeps_exit_zero(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "5",
            "--eps", "0.4", "--max-edges", "1",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "partial"
        assert payload["certificate"]["complete"] is False


class TestServeCli:
    def test_query_subcommand_against_live_server(self, capsys):
        from repro.graphs.generators import preferential_attachment
        from repro.serving import GraphRegistry, QueryServer, ServerConfig

        graph = wc_weights(
            preferential_attachment(120, 3, seed=1, reciprocal=0.3)
        )
        registry = GraphRegistry()
        registry.add_graph("pa", graph)
        with QueryServer(
            ServerConfig(eps=0.4, seed=3), registry=registry
        ) as server:
            host, port = server.address
            rc = main([
                "query", "--host", host, "--port", str(port),
                "--graph", "pa", "--k", "3", "--tenant", "cli",
            ])
            out = json.loads(capsys.readouterr().out)
            assert rc == 0
            assert out["status"] == "complete"
            assert len(out["seeds"]) == 3

            rc = main([
                "query", "--host", host, "--port", str(port),
                "--graph", "ghost", "--k", "3",
            ])
            assert rc == 2

    def test_bad_graph_spec_rejected(self, capsys):
        rc = main(["serve", "--graph", "no-equals-sign"])
        assert rc == 2
        assert "NAME=PATH" in capsys.readouterr().err


class TestShardsFlag:
    def test_run_with_shards(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--eps", "0.4", "--seed", "3", "--shards", "2",
            "--batch-size", "16",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "complete"
        assert len(payload["seeds"]) == 3

    def test_ks_share_one_warm_pool(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim",
            "--ks", "2,3", "--eps", "0.4", "--seed", "3",
            "--shards", "2", "--batch-size", "16",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [q["k"] for q in payload["queries"]] == [2, 3]

    def test_spill_dir_without_shards_rejected(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--k", "3", "--seed", "1",
            "--spill-dir", "/tmp/nope",
        ])
        assert rc == 2
        assert "spill" in capsys.readouterr().err.lower()

    def test_workers_and_shards_conflict(self, weighted_npz, capsys):
        rc = main([
            "run", weighted_npz, "--algorithm", "subsim", "--k", "3",
            "--seed", "1", "--shards", "2", "--workers", "2",
        ])
        assert rc == 2
