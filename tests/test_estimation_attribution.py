"""Tests for per-seed attribution."""

import pytest

from repro.estimation.attribution import (
    attribution_table,
    incremental_contributions,
    marginal_contributions,
)
from repro.graphs.csr import build_graph
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


def two_stars():
    """Two disjoint out-stars: centers 0 (5 leaves) and 6 (2 leaves)."""
    src = [0] * 5 + [6] * 2
    dst = [1, 2, 3, 4, 5, 7, 8]
    return build_graph(9, src, dst, [1.0] * 7)


class TestMarginal:
    def test_disjoint_stars_exact(self):
        g = two_stars()
        records = marginal_contributions(g, [0, 6], num_simulations=20, seed=0)
        by_seed = {r.seed: r.contribution for r in records}
        assert by_seed[0] == pytest.approx(6.0)
        assert by_seed[6] == pytest.approx(3.0)
        assert records[0].seed == 0  # sorted most-valuable first

    def test_redundant_seed_contributes_its_node_only(self):
        g = star_graph(8, center_out=True)
        # leaf 3 is covered by the center anyway: marginal == 1 (itself).
        records = marginal_contributions(g, [0, 3], num_simulations=20, seed=0)
        by_seed = {r.seed: r.contribution for r in records}
        assert by_seed[3] == pytest.approx(0.0)  # leaf already activated by 0

    def test_share_fractions(self):
        g = two_stars()
        records = marginal_contributions(g, [0, 6], num_simulations=20, seed=0)
        assert all(0.0 <= r.share <= 1.0 for r in records)

    def test_single_seed(self):
        g = path_graph(5)
        records = marginal_contributions(g, [0], num_simulations=10, seed=0)
        assert records[0].contribution == pytest.approx(5.0)

    def test_validation(self):
        g = path_graph(4)
        with pytest.raises(ConfigurationError):
            marginal_contributions(g, [])
        with pytest.raises(ConfigurationError):
            marginal_contributions(g, [99])


class TestIncremental:
    def test_telescopes_to_full_spread(self):
        g = wc_weights(two_stars())
        records = incremental_contributions(
            g, [0, 6, 1], num_simulations=300, seed=0
        )
        total = sum(r.contribution for r in records)
        assert total == pytest.approx(records[0].full_spread, abs=1e-9)

    def test_order_matters(self):
        g = star_graph(8, center_out=True)
        first_center = incremental_contributions(
            g, [0, 3], num_simulations=20, seed=0
        )
        first_leaf = incremental_contributions(
            g, [3, 0], num_simulations=20, seed=0
        )
        # Center first: leaf adds 0.  Leaf first: leaf adds 1.
        assert first_center[1].contribution == pytest.approx(0.0)
        assert first_leaf[0].contribution == pytest.approx(1.0)

    def test_preserves_input_order(self):
        g = path_graph(6)
        records = incremental_contributions(g, [3, 0], num_simulations=10, seed=0)
        assert [r.seed for r in records] == [3, 0]


class TestTable:
    def test_rows_shape(self):
        g = two_stars()
        rows = attribution_table(
            marginal_contributions(g, [0, 6], num_simulations=10, seed=0)
        )
        assert rows[0].keys() == {"seed", "contribution", "share"}
