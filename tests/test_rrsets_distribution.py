"""Distributional identity tests across the whole RR stack.

The deepest consistency law available (Lemma 1, specialised to singletons):

    Pr[u in a random RR set] = I({u}) / n

so per-node appearance frequencies over many random RR sets must match
forward-simulated singleton spreads — for every generator and weight
scheme.  These tests close the loop between the reverse (RR) and forward
(cascade) halves of the library.
"""

import numpy as np
import pytest

from repro.estimation.montecarlo import estimate_spread
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import (
    exponential_weights,
    trivalency_weights,
    uniform_weights,
    wc_variant_weights,
    wc_weights,
)
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator


@pytest.fixture(scope="module")
def base():
    return preferential_attachment(60, 3, seed=21, reciprocal=0.4)


def appearance_frequencies(graph, generator_cls, num_rr, seed, **kwargs):
    rng = np.random.default_rng(seed)
    generator = generator_cls(graph, **kwargs)
    counts = np.zeros(graph.n)
    for _ in range(num_rr):
        for node in generator.generate(rng):
            counts[node] += 1
    return counts / num_rr


WEIGHTERS = {
    "wc": lambda g: wc_weights(g),
    "wc_variant": lambda g: wc_variant_weights(g, 2.0),
    "uniform": lambda g: uniform_weights(g, 0.15),
    "exponential": lambda g: exponential_weights(g, seed=5),
    "trivalency": lambda g: trivalency_weights(g, choices=(0.4, 0.1), seed=5),
}


class TestLemma1Singletons:
    """RR appearance frequency == forward singleton spread / n."""

    @pytest.mark.parametrize("scheme", sorted(WEIGHTERS))
    def test_vanilla_matches_forward_simulation(self, base, scheme):
        graph = WEIGHTERS[scheme](base)
        freqs = appearance_frequencies(graph, VanillaICGenerator, 30_000, 3)
        # Check the five most frequent nodes (best signal-to-noise).
        for node in np.argsort(freqs)[-5:]:
            spread = estimate_spread(
                graph, [int(node)], num_simulations=4000, seed=7
            ).mean
            assert freqs[node] == pytest.approx(
                spread / graph.n, abs=0.02
            ), (scheme, node)

    @pytest.mark.parametrize("scheme", sorted(WEIGHTERS))
    def test_subsim_matches_vanilla_frequencies(self, base, scheme):
        graph = WEIGHTERS[scheme](base)
        f_vanilla = appearance_frequencies(graph, VanillaICGenerator, 25_000, 3)
        f_subsim = appearance_frequencies(graph, SubsimICGenerator, 25_000, 4)
        assert np.max(np.abs(f_vanilla - f_subsim)) < 0.02, scheme

    def test_fast_vanilla_matches_too(self, base):
        graph = wc_weights(base)
        f_vanilla = appearance_frequencies(graph, VanillaICGenerator, 25_000, 3)
        f_fast = appearance_frequencies(graph, FastVanillaICGenerator, 25_000, 5)
        assert np.max(np.abs(f_vanilla - f_fast)) < 0.02


class TestSizeDistributionQuantiles:
    """Full size-distribution agreement (not just means) between generators."""

    @pytest.mark.parametrize("scheme", ["wc_variant", "exponential"])
    def test_quantiles_agree(self, base, scheme):
        graph = WEIGHTERS[scheme](base)
        sizes = {}
        for key, cls in (("v", VanillaICGenerator), ("s", SubsimICGenerator)):
            rng = np.random.default_rng(11)
            generator = cls(graph)
            sizes[key] = np.sort(
                [len(generator.generate(rng)) for _ in range(20_000)]
            )
        for q in (25, 50, 75, 90, 99):
            a = np.percentile(sizes["v"], q)
            b = np.percentile(sizes["s"], q)
            assert abs(a - b) <= max(1.0, 0.08 * max(a, b)), (scheme, q)
