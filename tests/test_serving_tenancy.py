"""Per-tenant byte caps and the server-wide coverage-backend default."""

from __future__ import annotations

import pytest

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.serving.config import ServerConfig
from repro.serving.sessions import SessionManager
from repro.utils.exceptions import ConfigurationError, ReproError


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(150, 3, seed=1, reciprocal=0.3))


class TestConfigValidation:
    def test_tenant_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="tenant_byte_caps"):
            ServerConfig(tenant_byte_caps={"t1": 0})

    def test_coverage_backend_validated(self):
        with pytest.raises(ConfigurationError, match="coverage_backend"):
            ServerConfig(coverage_backend="bogus")
        for spec in ("exact", "sketch", "auto"):
            assert ServerConfig(coverage_backend=spec).coverage_backend == spec


class TestTenantByteCaps:
    def test_named_tenant_gets_override_others_the_default(self, graph):
        manager = SessionManager(
            ServerConfig(
                algorithm="subsim",
                seed=7,
                byte_cap=1_000_000,
                tenant_byte_caps={"whale": 8_000_000, "minnow": 4_096},
            )
        )
        caps = {}
        for tenant in ("whale", "minnow", "anyone-else"):
            with manager.lease(tenant, "g", graph) as session:
                caps[tenant] = session.provider.byte_cap
        assert caps == {
            "whale": 8_000_000,
            "minnow": 4_096,
            "anyone-else": 1_000_000,
        }

    def test_override_without_global_default(self, graph):
        manager = SessionManager(
            ServerConfig(
                algorithm="subsim",
                seed=7,
                tenant_byte_caps={"capped": 2_048},
            )
        )
        with manager.lease("capped", "g", graph) as session:
            assert session.provider.byte_cap == 2_048
        with manager.lease("free", "g", graph) as session:
            assert session.provider.byte_cap is None

    def test_capped_tenant_still_answers_like_uncapped(self, graph):
        manager = SessionManager(
            ServerConfig(
                algorithm="subsim",
                eps=0.4,
                seed=7,
                tenant_byte_caps={"tiny": 1},
            )
        )
        answers = {}
        for tenant in ("tiny", "roomy"):
            for _ in range(2):
                with manager.lease(tenant, "g", graph) as session:
                    answers.setdefault(tenant, []).append(
                        session.maximize(4, eps=0.4).seeds
                    )
        # Eviction between queries changes cost, never answers — and the
        # per-tenant entropy keeps each tenant deterministic.
        assert answers["tiny"][0] == answers["tiny"][1]
        assert answers["roomy"][0] == answers["roomy"][1]


class TestCoverageBackendDefault:
    def test_sessions_inherit_server_backend(self, graph):
        manager = SessionManager(
            ServerConfig(algorithm="subsim", seed=7, coverage_backend="sketch")
        )
        with manager.lease("t", "g", graph) as session:
            assert session.provider.coverage_backend == "sketch"
            result = session.maximize(4, eps=0.4)
        assert result.extras["coverage_backend"]["backend"] == "sketch"

    def test_exact_default_leaves_no_certificate(self, graph):
        manager = SessionManager(ServerConfig(algorithm="subsim", seed=7))
        with manager.lease("t", "g", graph) as session:
            result = session.maximize(4, eps=0.4)
        assert result.extras.get("coverage_backend") is None


class TestTenantByteCapCli:
    def test_parse_pairs(self):
        from repro.cli import _parse_tenant_byte_caps

        assert _parse_tenant_byte_caps(None) == {}
        assert _parse_tenant_byte_caps(
            ["whale=8000000", "minnow=4096"]
        ) == {"whale": 8_000_000, "minnow": 4_096}

    @pytest.mark.parametrize("bad", ["no-equals", "=123", "t=notanumber"])
    def test_malformed_spec_rejected(self, bad):
        from repro.cli import _parse_tenant_byte_caps

        with pytest.raises(ReproError, match="tenant-byte-cap"):
            _parse_tenant_byte_caps([bad])

    def test_serve_parser_accepts_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--graph", "g=/tmp/g.npz",
            "--tenant-byte-cap", "whale=8000000",
            "--tenant-byte-cap", "minnow=4096",
            "--coverage-backend", "sketch",
        ])
        assert args.tenant_byte_cap == ["whale=8000000", "minnow=4096"]
        assert args.coverage_backend == "sketch"

    def test_run_parser_accepts_coverage_backend(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "run", "/tmp/g.npz", "--coverage-backend", "sketch",
        ])
        assert args.coverage_backend == "sketch"
