"""Tests for the public facade, registry, and result objects."""

import pytest

from repro.core.api import InfluenceMaximizer, maximize_influence
from repro.core.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.results import IMResult
from repro.utils.exceptions import ConfigurationError


class TestRegistry:
    def test_known_names_present(self):
        names = available_algorithms()
        for expected in (
            "opim-c",
            "subsim",
            "hist",
            "hist+subsim",
            "imm",
            "tim+",
            "ssa",
            "degree",
            "opim-c-lt",
        ):
            assert expected in names

    def test_get_algorithm_instantiates(self, wc_graph):
        algo = get_algorithm("opim-c", wc_graph)
        assert algo.name == "opim-c"

    def test_unknown_name_rejected(self, wc_graph):
        with pytest.raises(ConfigurationError):
            get_algorithm("definitely-not-real", wc_graph)

    def test_kwargs_forwarded(self, wc_graph):
        algo = get_algorithm("imm", wc_graph, max_rr_sets=123)
        assert algo.max_rr_sets == 123

    def test_register_custom(self, wc_graph):
        from repro.algorithms.heuristics import RandomSeeds

        register_algorithm("test-custom-algo", lambda g, **kw: RandomSeeds(g))
        algo = get_algorithm("test-custom-algo", wc_graph)
        assert algo.run(2, seed=0).seeds

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_algorithm("opim-c", lambda g, **kw: None)


class TestFacade:
    def test_maximize_returns_result(self, wc_graph):
        result = InfluenceMaximizer(wc_graph).maximize(
            3, algorithm="subsim", eps=0.4, seed=0
        )
        assert isinstance(result, IMResult)
        assert len(result.seeds) == 3

    def test_functional_spelling(self, wc_graph):
        result = maximize_influence(wc_graph, 3, algorithm="degree", seed=0)
        assert len(result.seeds) == 3

    def test_evaluate(self, wc_graph):
        maximizer = InfluenceMaximizer(wc_graph)
        result = maximizer.maximize(3, algorithm="degree", seed=0)
        est = maximizer.evaluate(result, num_simulations=100, seed=0)
        assert est.mean >= 3.0

    def test_algorithm_kwargs_forwarded(self, wc_graph):
        result = maximize_influence(
            wc_graph, 3, algorithm="imm", eps=0.4, seed=0, max_rr_sets=1000
        )
        assert result.num_rr_sets <= 1000

    def test_batch_size_and_workers_forwarded_to_run(self, wc_graph):
        # Regression: these are run() parameters, not constructor kwargs —
        # they used to fall into **algorithm_kwargs and blow up the
        # algorithm constructor with a TypeError.
        result = InfluenceMaximizer(wc_graph).maximize(
            3, algorithm="subsim", eps=0.4, seed=0, batch_size=16, workers=1
        )
        assert len(result.seeds) == 3
        functional = maximize_influence(
            wc_graph, 3, algorithm="subsim", eps=0.4, seed=0,
            batch_size=16, workers=1,
        )
        assert functional.seeds == result.seeds

class TestFacadeSessions:
    def test_session_returns_query_session(self, wc_graph):
        from repro.engine.session import QuerySession

        session = InfluenceMaximizer(wc_graph).session("subsim", seed=4)
        assert isinstance(session, QuerySession)
        assert len(session.maximize(3, eps=0.4).seeds) == 3

    def test_reuse_pool_shares_sets_across_calls(self, wc_graph):
        maximizer = InfluenceMaximizer(wc_graph)
        first = maximizer.maximize(
            6, algorithm="subsim", eps=0.3, seed=9, reuse_pool=True
        )
        second = maximizer.maximize(
            3, algorithm="subsim", eps=0.3, seed=9, reuse_pool=True
        )
        assert first.extras["session"]["query_index"] == 1
        assert second.extras["session"]["query_index"] == 2
        assert second.extras["session"]["sets_reused"] > 0

    def test_reuse_pool_rejects_run_checkpoints(self, wc_graph, tmp_path):
        with pytest.raises(ConfigurationError):
            InfluenceMaximizer(wc_graph).maximize(
                3, algorithm="subsim", seed=0, reuse_pool=True,
                checkpoint=str(tmp_path / "c.npz"),
            )


class TestFastVariant:
    def test_opim_c_fast_registered(self, wc_graph):
        result = maximize_influence(
            wc_graph, 3, algorithm="opim-c-fast", eps=0.4, seed=0
        )
        assert len(result.seeds) == 3
        assert result.algorithm == "opim-c+fast-vanilla"

    def test_fast_and_slow_same_quality(self, wc_graph):
        from repro.estimation.montecarlo import estimate_spread

        slow = maximize_influence(wc_graph, 4, algorithm="opim-c", eps=0.3, seed=2)
        fast = maximize_influence(
            wc_graph, 4, algorithm="opim-c-fast", eps=0.3, seed=2
        )
        sp_slow = estimate_spread(
            wc_graph, slow.seeds, num_simulations=300, seed=0
        ).mean
        sp_fast = estimate_spread(
            wc_graph, fast.seeds, num_simulations=300, seed=0
        ).mean
        assert sp_fast >= 0.85 * sp_slow


class TestEvaluateModels:
    def test_evaluate_lt_model(self):
        from repro.graphs.generators import star_graph

        g = star_graph(6, center_out=True)
        maximizer = InfluenceMaximizer(g)
        result = maximizer.maximize(1, algorithm="degree", seed=0)
        assert result.seeds == [0]  # the broadcasting center
        est = maximizer.evaluate(result, model="lt", num_simulations=20, seed=0)
        assert est.mean == 6.0  # full-weight LT star is deterministic


class TestIMResult:
    def make(self, **overrides):
        base = dict(
            algorithm="x",
            seeds=[3, 1, 2],
            k=3,
            eps=0.1,
            delta=0.01,
            runtime_seconds=1.0,
        )
        base.update(overrides)
        return IMResult(**base)

    def test_seed_set(self):
        assert self.make().seed_set == {1, 2, 3}

    def test_certified_ratio(self):
        r = self.make(lower_bound=4.0, upper_bound=8.0)
        assert r.approx_ratio_certified == 0.5

    def test_certified_ratio_degenerate(self):
        assert self.make().approx_ratio_certified == 0.0
        assert self.make(upper_bound=0.0).approx_ratio_certified == 0.0

    def test_summary_row_keys(self):
        row = self.make().summary_row()
        assert {"algorithm", "k", "runtime_s", "num_rr_sets"} <= set(row)
