"""Tests for SUBSIM RR-set generation (Algorithm 3 + Section 3.3).

The crucial property: SUBSIM draws RR sets from *exactly the same
distribution* as the vanilla generator — only cheaper.  These tests verify
distributional equivalence on graphs small enough for tight statistics, the
cost advantage on larger ones, and all three general-IC modes.
"""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import preferential_attachment, star_graph
from repro.graphs.weights import (
    exponential_weights,
    uniform_weights,
    wc_weights,
)
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator

MODES = ("sorted", "bucket", "indexed")


class TestDeterministicGraphs:
    def test_path_rr_is_prefix(self, path10, rng):
        gen = SubsimICGenerator(path10)
        for root in (0, 4, 9):
            assert sorted(gen.generate(rng, root=root)) == list(range(root + 1))

    def test_cycle_rr_is_everything(self, cycle8, rng):
        gen = SubsimICGenerator(cycle8)
        assert sorted(gen.generate(rng, root=2)) == list(range(8))

    def test_star_in_center(self, star_in, rng):
        gen = SubsimICGenerator(star_in)
        assert sorted(gen.generate(rng, root=0)) == list(range(8))

    def test_zero_probability_blocks(self, rng):
        g = uniform_weights(star_graph(6, center_out=False), 0.0)
        gen = SubsimICGenerator(g)
        assert gen.generate(rng, root=0) == [0]

    def test_invalid_mode_rejected(self, path10):
        with pytest.raises(ValueError):
            SubsimICGenerator(path10, general_mode="nope")


class TestEquivalenceWithVanilla:
    """Per-node inclusion probabilities must match Algorithm 2's."""

    @staticmethod
    def inclusion_frequencies(generator, root, n, trials, seed):
        rng = np.random.default_rng(seed)
        counts = np.zeros(n)
        for _ in range(trials):
            for node in generator.generate(rng, root=root):
                counts[node] += 1
        return counts / trials

    def test_wc_inclusion_matches(self):
        g = wc_weights(preferential_attachment(40, 3, seed=2, reciprocal=0.4))
        root = 1  # an early node: rich reverse reachability
        trials = 20_000
        f_vanilla = self.inclusion_frequencies(
            VanillaICGenerator(g), root, g.n, trials, seed=10
        )
        f_subsim = self.inclusion_frequencies(
            SubsimICGenerator(g), root, g.n, trials, seed=11
        )
        assert np.max(np.abs(f_vanilla - f_subsim)) < 0.02

    @pytest.mark.parametrize("mode", MODES)
    def test_skewed_inclusion_matches(self, mode):
        g = exponential_weights(
            preferential_attachment(40, 3, seed=2, reciprocal=0.4), seed=3
        )
        root = 1
        trials = 20_000
        f_vanilla = self.inclusion_frequencies(
            VanillaICGenerator(g), root, g.n, trials, seed=10
        )
        f_subsim = self.inclusion_frequencies(
            SubsimICGenerator(g, general_mode=mode), root, g.n, trials, seed=11
        )
        assert np.max(np.abs(f_vanilla - f_subsim)) < 0.02

    def test_uniform_ic_size_distribution_matches(self):
        g = uniform_weights(
            preferential_attachment(60, 3, seed=4, reciprocal=0.3), 0.15
        )
        trials = 20_000
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(1)
        van = VanillaICGenerator(g)
        sub = SubsimICGenerator(g)
        sizes_a = np.array([len(van.generate(rng_a)) for _ in range(trials)])
        sizes_b = np.array([len(sub.generate(rng_b)) for _ in range(trials)])
        assert abs(sizes_a.mean() - sizes_b.mean()) < 0.15
        assert abs(np.median(sizes_a) - np.median(sizes_b)) <= 1

    def test_single_edge_probability(self, rng):
        g = build_graph(2, [0], [1], [0.3])
        gen = SubsimICGenerator(g)
        hits = sum(len(gen.generate(rng, root=1)) == 2 for _ in range(30_000))
        assert abs(hits / 30_000 - 0.3) < 0.012


class TestCostAdvantage:
    def test_subsim_examines_fewer_edges_under_wc(self):
        g = wc_weights(preferential_attachment(800, 8, seed=5, reciprocal=0.3))
        rng = np.random.default_rng(0)
        van = VanillaICGenerator(g)
        sub = SubsimICGenerator(g)
        for _ in range(500):
            van.generate(rng)
            sub.generate(rng)
        # Under WC, vanilla examines ~d_in per activation; SUBSIM ~1.
        assert van.counters.edges_examined > 3 * sub.counters.edges_examined

    def test_examined_close_to_mu_plus_one(self):
        # For each activated node SUBSIM examines ~ (1 + mu) positions in
        # expectation; under WC mu = 1, so examined / activations <= ~2.
        g = wc_weights(preferential_attachment(500, 6, seed=6, reciprocal=0.3))
        rng = np.random.default_rng(0)
        sub = SubsimICGenerator(g)
        for _ in range(1000):
            sub.generate(rng)
        ratio = sub.counters.edges_examined / sub.counters.nodes_added
        assert ratio < 2.5


class TestSentinelStop:
    def test_stops_on_path(self, path10, rng):
        gen = SubsimICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[5] = True
        assert sorted(gen.generate(rng, root=9, stop_mask=stop)) == [5, 6, 7, 8, 9]
        assert gen.counters.sentinel_hits == 1

    def test_root_sentinel(self, path10, rng):
        gen = SubsimICGenerator(path10)
        stop = np.zeros(10, dtype=bool)
        stop[2] = True
        assert gen.generate(rng, root=2, stop_mask=stop) == [2]

    @pytest.mark.parametrize("mode", MODES)
    def test_sentinel_in_general_mode(self, mode, rng):
        g = exponential_weights(
            preferential_attachment(60, 3, seed=7, reciprocal=0.4), seed=8
        )
        gen = SubsimICGenerator(g, general_mode=mode)
        stop = np.ones(g.n, dtype=bool)  # everything is a sentinel
        for _ in range(100):
            rr = gen.generate(rng, stop_mask=stop)
            assert len(rr) == 1  # root itself stops generation

    def test_mask_reset_after_generation(self, wc_graph, rng):
        gen = SubsimICGenerator(wc_graph)
        for _ in range(100):
            gen.generate(rng)
        assert not gen._visited.any()


class TestExtremeProbabilities:
    def test_probability_one_uniform_block(self, rng):
        # All in-probs exactly 1: deterministic full activation.
        g = star_graph(30, center_out=False)
        gen = SubsimICGenerator(g)
        assert sorted(gen.generate(rng, root=0)) == list(range(30))

    def test_tiny_probabilities_no_overflow(self, rng):
        # Regression: huge geometric jumps used to overflow int64 addition.
        n = 50
        src = np.repeat(np.arange(1, n, dtype=np.int64), 1)
        g = build_graph(
            n,
            src,
            np.zeros(n - 1, dtype=np.int64),
            np.full(n - 1, 1e-200),
        )
        gen = SubsimICGenerator(g)
        for _ in range(200):
            assert gen.generate(rng, root=0) == [0]

    def test_mixed_one_and_tiny_sorted_block(self, rng):
        # in-block of node 0: probs [1.0, 1e-9] - exercises the degenerate
        # ceiling path of the sorted sampler.
        g = build_graph(3, [1, 2], [0, 0], [1.0, 1e-9])
        gen = SubsimICGenerator(g)
        rr = gen.generate(rng, root=0)
        assert 1 in rr
