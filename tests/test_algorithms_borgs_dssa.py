"""Tests for the Borgs et al. RIS baseline and D-SSA."""

import pytest

from repro.algorithms.borgs import BorgsRIS
from repro.algorithms.dssa import DSSA
from repro.estimation.montecarlo import estimate_spread
from repro.utils.exceptions import ConfigurationError


class TestBorgsRIS:
    def test_returns_valid_seeds(self, wc_graph):
        algo = BorgsRIS(wc_graph, scale_tau=1e-4, max_rr_sets=20_000)
        res = algo.run(5, eps=0.3, seed=0)
        assert len(set(res.seeds)) == 5

    def test_edge_budget_formula(self, wc_graph):
        algo = BorgsRIS(wc_graph)
        b1 = algo.edge_budget(5, 0.5)
        b2 = algo.edge_budget(10, 0.5)
        assert b2 == pytest.approx(2 * b1, rel=0.01)  # linear in k
        b3 = algo.edge_budget(5, 0.25)
        assert b3 == pytest.approx(8 * b1, rel=0.01)  # eps^-3

    def test_budget_respected(self, wc_graph):
        algo = BorgsRIS(wc_graph, scale_tau=1e-4, max_rr_sets=None)
        res = algo.run(3, eps=0.5, seed=0)
        budget = res.extras["edge_budget"]
        # One RR set may overshoot by its own size, never by more.
        assert res.edges_examined < budget + wc_graph.m

    def test_faithful_budget_recorded(self, wc_graph):
        algo = BorgsRIS(wc_graph, scale_tau=0.001)
        res = algo.run(3, eps=0.5, seed=0)
        assert res.extras["budget_scaled"]
        assert res.extras["faithful_edge_budget"] > res.extras["edge_budget"]

    def test_seed_quality(self, wc_graph):
        algo = BorgsRIS(wc_graph, scale_tau=1e-4, max_rr_sets=20_000)
        res = algo.run(5, eps=0.3, seed=0)
        spread = estimate_spread(wc_graph, res.seeds, num_simulations=300, seed=0)
        rand = estimate_spread(
            wc_graph, [9, 18, 27, 36, 45], num_simulations=300, seed=0
        )
        assert spread.mean > rand.mean

    def test_validation(self, wc_graph):
        with pytest.raises(ConfigurationError):
            BorgsRIS(wc_graph, scale_tau=0.0)


class TestDSSA:
    def test_returns_valid_seeds(self, wc_graph):
        res = DSSA(wc_graph).run(5, eps=0.5, seed=0)
        assert len(set(res.seeds)) == 5
        assert res.extras["rounds"] >= 1

    def test_agreement_flag(self, wc_graph):
        res = DSSA(wc_graph).run(5, eps=0.5, seed=0)
        assert isinstance(res.extras["agreed"], bool)

    def test_reproducible(self, wc_graph):
        a = DSSA(wc_graph).run(5, eps=0.5, seed=7)
        b = DSSA(wc_graph).run(5, eps=0.5, seed=7)
        assert a.seeds == b.seeds

    def test_seed_quality_matches_opimc(self, wc_graph):
        from repro.algorithms.opimc import OPIMC

        dssa = DSSA(wc_graph).run(5, eps=0.3, seed=0)
        opim = OPIMC(wc_graph).run(5, eps=0.3, seed=0)
        sp_d = estimate_spread(wc_graph, dssa.seeds, num_simulations=400, seed=0)
        sp_o = estimate_spread(wc_graph, opim.seeds, num_simulations=400, seed=0)
        # Same guarantee: D-SSA must not be materially worse (it often runs
        # longer than OPIM-C at the same eps and lands slightly better).
        assert sp_d.mean >= 0.85 * sp_o.mean

    def test_registry_entries(self, wc_graph):
        from repro.core.registry import get_algorithm

        for name in ("d-ssa", "borgs-ris"):
            kwargs = {"scale_tau": 1e-4} if name == "borgs-ris" else {}
            algo = get_algorithm(name, wc_graph, **kwargs)
            assert algo.run(3, eps=0.5, seed=0).seeds
