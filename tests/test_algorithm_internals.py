"""White-box tests of algorithm internals and schedules.

Behavioural tests elsewhere treat algorithms as black boxes; these verify
the *mechanisms* the paper describes: pool doubling, schedule ceilings,
phase interactions, and the statistical sanity of intermediate estimates.
"""

import math

import numpy as np
import pytest

from repro.algorithms.hist import SentinelSetPhase
from repro.algorithms.imm import IMM
from repro.algorithms.opimc import OPIMC
from repro.bounds.thresholds import theta_max_opimc, theta_max_sentinel
from repro.estimation.montecarlo import estimate_spread
from repro.graphs.generators import preferential_attachment, star_graph
from repro.graphs.weights import uniform_weights, wc_variant_weights, wc_weights


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(250, 3, seed=13, reciprocal=0.3))


class TestOPIMCSchedule:
    def test_pool_sizes_follow_doubling(self, graph):
        res = OPIMC(graph).run(5, eps=0.3, seed=0)
        theta0 = max(1, math.ceil(3 * math.log(1 / res.delta)))
        rounds = res.extras["rounds"]
        # Two pools, each doubled (rounds - 1) times from theta0.
        expected = 2 * theta0 * 2 ** (rounds - 1)
        assert res.num_rr_sets == expected

    def test_never_exceeds_two_theta_max(self, graph):
        res = OPIMC(graph).run(5, eps=0.3, seed=0)
        cap = res.extras["theta_max"]
        assert res.num_rr_sets <= 4 * cap  # 2 pools, last double may overshoot

    def test_easier_eps_stops_sooner(self, graph):
        hard = OPIMC(graph).run(5, eps=0.1, seed=0)
        easy = OPIMC(graph).run(5, eps=0.5, seed=0)
        assert easy.num_rr_sets <= hard.num_rr_sets

    def test_high_influence_needs_fewer_samples(self):
        base = preferential_attachment(250, 3, seed=13, reciprocal=0.3)
        low = OPIMC(wc_weights(base)).run(5, eps=0.3, seed=0)
        high = OPIMC(wc_variant_weights(base, 3.0)).run(5, eps=0.3, seed=0)
        # OPT is larger in the high-influence graph, so the bound ratio
        # clears sooner (fewer, bigger RR sets).
        assert high.num_rr_sets <= low.num_rr_sets

    def test_certified_bound_is_conservative(self, graph):
        """The certified lower bound must not exceed the true influence."""
        res = OPIMC(graph).run(5, eps=0.3, seed=0)
        truth = estimate_spread(
            graph, res.seeds, num_simulations=3000, seed=1
        )
        assert res.lower_bound <= truth.mean + 3 * truth.stderr
        assert res.upper_bound >= truth.mean - 3 * truth.stderr


class TestIMMPhases:
    def test_opt_lower_bound_below_true_optimum_proxy(self, graph):
        res = IMM(graph, max_rr_sets=30_000).run(5, eps=0.3, seed=0)
        lb = res.extras["opt_lower_bound"]
        # The spread of IMM's own seeds is a lower bound on OPT; the
        # phase-1 LB must not exceed OPT, so compare against the seeds'
        # spread with generous MC slack.
        spread = estimate_spread(
            graph, res.seeds, num_simulations=2000, seed=1
        )
        assert lb <= (spread.mean + 4 * spread.stderr) * 1.15

    def test_more_accuracy_more_samples(self, graph):
        loose = IMM(graph, max_rr_sets=10**7).run(3, eps=0.6, seed=0)
        tight = IMM(graph, max_rr_sets=10**7).run(3, eps=0.35, seed=0)
        assert tight.num_rr_sets > loose.num_rr_sets


class TestSentinelPhaseInternals:
    @pytest.fixture(scope="class")
    def high_graph(self):
        base = preferential_attachment(300, 4, seed=3, reciprocal=0.3)
        return wc_variant_weights(base, 2.5)

    def test_selection_pool_within_ceiling(self, high_graph, rng):
        k, eps1, delta1 = 10, 0.15, 0.005
        res = SentinelSetPhase(high_graph).run(k, eps1, delta1, rng)
        ceiling = theta_max_sentinel(high_graph.n, k, eps1, delta1)
        assert res.selection_rr_sets <= 2 * ceiling

    def test_sentinels_are_ordered_by_greedy(self, high_graph, rng):
        """The sentinel set is a greedy prefix: its first element must be
        a maximum-coverage node (the most influential single node)."""
        res = SentinelSetPhase(high_graph).run(10, 0.15, 0.005, rng)
        first = res.seeds[0]
        spread_first = estimate_spread(
            high_graph, [first], num_simulations=300, seed=0
        ).mean
        # Compare against a random node's spread: must be far higher.
        spread_rand = estimate_spread(
            high_graph, [high_graph.n // 2], num_simulations=300, seed=0
        ).mean
        assert spread_first > spread_rand

    def test_verified_flag_matches_outcome(self, high_graph, rng):
        res = SentinelSetPhase(high_graph).run(10, 0.15, 0.005, rng)
        assert isinstance(res.verified, bool)
        if res.verified:
            assert res.b >= 1

    def test_star_graph_single_sentinel_suffices(self, rng):
        """On an out-star the center is the whole story: b should be small
        and the center must be the first sentinel."""
        g = star_graph(100, center_out=True)
        res = SentinelSetPhase(g).run(5, 0.2, 0.01, rng)
        assert res.seeds[0] == 0


class TestThetaMaxConsistency:
    def test_sentinel_ceiling_above_opimc_for_same_params(self):
        # Eq. 3 drops the (1 - 1/e) factors, so it is looser (larger).
        n, k = 2000, 10
        assert theta_max_sentinel(n, k, 0.1, 0.01) >= theta_max_opimc(
            n, k, 0.1, 0.01
        )

    def test_scales_linearly_with_n_over_k(self):
        a = theta_max_opimc(1000, 10, 0.2, 0.01)
        b = theta_max_opimc(2000, 10, 0.2, 0.01)
        # n doubles, ln C(n,k) grows slightly: ratio a bit above 2.
        assert 1.9 < b / a < 2.4
