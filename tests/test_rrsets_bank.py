"""Tests for RR banks and prefix views (the sampling-engine substrate)."""

import numpy as np
import pytest

from repro.rrsets.bank import RRBank
from repro.rrsets.collection import RRCollection, RRPrefixView
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.checkpoint import counters_to_dict
from repro.utils.exceptions import CheckpointError, ConfigurationError


def _filled(graph, count, seed=0):
    gen = VanillaICGenerator(graph)
    pool = RRCollection(graph.n)
    pool.extend(count, gen, np.random.default_rng(seed))
    return pool


def _bank(graph, seed=0, **kwargs):
    return RRBank(
        graph,
        VanillaICGenerator(graph),
        np.random.default_rng(seed),
        **kwargs,
    )


class TestPrefixView:
    def test_matches_truncated_pool(self, wc_graph):
        pool = _filled(wc_graph, 80)
        theta = 30
        view = pool.prefix(theta)
        assert isinstance(view, RRPrefixView)
        assert view.num_rr == theta
        assert view.n == pool.n
        # Every per-set accessor agrees with the underlying sets.
        sizes = view.set_sizes()
        for i in range(theta):
            nodes = view.set_nodes(i)
            np.testing.assert_array_equal(nodes, pool.set_nodes(i))
            assert sizes[i] == len(nodes)
        assert view.total_size == int(sizes.sum())
        assert view.average_size() == pytest.approx(sizes.mean())

    def test_coverage_counts_naive(self, wc_graph):
        pool = _filled(wc_graph, 60)
        view = pool.prefix(25)
        naive = np.zeros(pool.n, dtype=np.int64)
        for i in range(25):
            naive[pool.set_nodes(i)] += 1
        np.testing.assert_array_equal(view.coverage_counts(), naive)

    def test_rrs_containing_cut(self, wc_graph):
        pool = _filled(wc_graph, 60)
        view = pool.prefix(25)
        for node in range(0, pool.n, 17):
            ids = view.rrs_containing(node)
            full = pool.rrs_containing(node)
            np.testing.assert_array_equal(ids, full[full < 25])

    def test_coverage_and_mask(self, wc_graph):
        pool = _filled(wc_graph, 60)
        view = pool.prefix(25)
        seeds = [0, 5, 11]
        mask = view.covered_mask(seeds)
        assert mask.shape == (25,)
        naive = sum(
            1
            for i in range(25)
            if set(seeds) & set(int(v) for v in pool.set_nodes(i))
        )
        assert int(mask.sum()) == naive
        assert view.coverage(seeds) == naive

    def test_out_of_range_set_rejected(self, wc_graph):
        pool = _filled(wc_graph, 20)
        view = pool.prefix(10)
        with pytest.raises(IndexError):
            view.set_nodes(10)
        with pytest.raises(IndexError):
            view.nodes_of_sets(np.array([3, 10]))

    def test_full_prefix_returns_collection(self, wc_graph):
        pool = _filled(wc_graph, 20)
        assert pool.prefix(20) is pool
        assert pool.prefix(25) is pool

    def test_bad_theta_rejected(self, wc_graph):
        pool = _filled(wc_graph, 20)
        with pytest.raises(ValueError):
            RRPrefixView(pool, 21)
        with pytest.raises(ValueError):
            RRPrefixView(pool, -1)


class TestBankGrowth:
    def test_prefix_stability(self, wc_graph):
        """Growing past theta never changes the first theta sets."""
        warm = _bank(wc_graph, seed=11, reusable=True)
        warm.ensure(40)
        warm.ensure(160)
        cold = _bank(wc_graph, seed=11, reusable=True)
        cold.ensure(40)
        for i in range(40):
            np.testing.assert_array_equal(
                warm.pool.set_nodes(i), cold.pool.set_nodes(i)
            )

    def test_ensure_returns_prefix_view(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        view = bank.ensure(30)
        assert view.num_rr == 30
        bank.ensure(60)
        assert bank.view(30).num_rr == 30
        assert bank.view(999).num_rr == 60

    def test_take_sequential_and_skip_rejected(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        first = bank.take(0)
        assert len(first) >= 1
        bank.take(1)
        with pytest.raises(IndexError):
            bank.take(5)
        # Re-taking an existing index serves the stored set.
        np.testing.assert_array_equal(bank.take(0), bank.pool.set_nodes(0))

    def test_counters_at_marks(self, wc_graph):
        bank = _bank(wc_graph, seed=3, reusable=True)
        bank.ensure(20)
        at_20 = counters_to_dict(bank.generator.counters)
        bank.ensure(80)
        # Exact at a recorded boundary, even after later growth.
        assert counters_to_dict(bank.counters_at(20)) == at_20
        # Interior sizes fall back to the nearest mark at or below.
        assert counters_to_dict(bank.counters_at(33)) == at_20
        # The frontier reports the live counters.
        assert bank.counters_at(80).sets_generated == 80

    def test_query_counters_match_cold_run(self, wc_graph):
        # 25 is a recorded stop of the warm bank's history, so a warm query
        # consuming that prefix reports exactly what a cold run would.
        warm = _bank(wc_graph, seed=7, reusable=True)
        warm.ensure(25)
        warm.ensure(100)
        warm.begin_query(())
        warm.ensure(25)
        cold = _bank(wc_graph, seed=7, reusable=True)
        cold.ensure(25)
        assert counters_to_dict(warm.counters) == counters_to_dict(
            cold.counters
        )

    def test_reuse_metrics_emitted(self, wc_graph):
        from repro.observability.registry import MetricsRegistry

        bank = _bank(wc_graph, reusable=True)
        sink = MetricsRegistry()
        bank.begin_query([sink])
        bank.ensure(30)
        bank.end_query()
        assert sink.value("bank.sets_generated") == 30
        assert sink.value("bank.sets_reused") == 0
        bank.begin_query([sink])
        bank.ensure(20)
        bank.end_query()
        assert sink.value("bank.sets_generated") == 30
        assert sink.value("bank.sets_reused") == 20


class TestBankEviction:
    def test_byte_cap_evicts_between_queries(self, wc_graph):
        bank = _bank(wc_graph, seed=5, reusable=True, byte_cap=1)
        bank.begin_query(())
        view = bank.ensure(50)
        # The cap never interrupts the serving query...
        assert view.num_rr == 50
        assert bank.over_cap
        # ...but end_query drops the pool.
        assert bank.end_query()
        assert bank.pool.num_rr == 0

    def test_eviction_regenerates_identical_prefix(self, wc_graph):
        bank = _bank(wc_graph, seed=5, reusable=True, byte_cap=1)
        bank.begin_query(())
        bank.ensure(50)
        before = [bank.pool.set_nodes(i).copy() for i in range(50)]
        bank.end_query()
        bank.begin_query(())
        bank.ensure(50)
        for i in range(50):
            np.testing.assert_array_equal(bank.pool.set_nodes(i), before[i])
        assert bank.counters.sets_generated == 50

    def test_transient_bank_cannot_evict(self, wc_graph):
        bank = _bank(wc_graph, reusable=False)
        with pytest.raises(ConfigurationError):
            bank.evict()

    def test_reusable_bank_cannot_reset(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        with pytest.raises(ConfigurationError):
            bank.reset_pool()

    def test_reset_pool_keeps_stream_advancing(self, wc_graph):
        bank = _bank(wc_graph, seed=9)
        bank.ensure(10)
        first = bank.pool.set_nodes(0).copy()
        bank.reset_pool()
        assert bank.pool.num_rr == 0
        bank.ensure(10)
        # The stream moved on: the fresh pool is a different draw.
        regenerated = [bank.pool.set_nodes(i) for i in range(10)]
        assert any(
            len(first) != len(r) or (first != r).any() for r in regenerated[:1]
        ) or bank.generator.counters.sets_generated == 20


class TestBankConfig:
    def test_reusable_stop_mask_rejected(self, wc_graph):
        mask = np.zeros(wc_graph.n, dtype=bool)
        with pytest.raises(ConfigurationError):
            _bank(wc_graph, reusable=True, stop_mask=mask)

    def test_reusable_bank_rejects_call_site_mask(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        mask = np.zeros(wc_graph.n, dtype=bool)
        with pytest.raises(ConfigurationError):
            bank.ensure(5, stop_mask=mask)

    def test_adopt_rejected_on_reusable(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        pool = _filled(wc_graph, 5)
        with pytest.raises(ConfigurationError):
            bank.adopt(pool, counters_to_dict(bank.generator.counters))


class TestBankStateRoundTrip:
    def test_state_dict_restores(self, wc_graph):
        bank = _bank(wc_graph, seed=21, reusable=True)
        bank.ensure(40)
        payload = bank.state_dict()
        pool = bank.pool

        fresh = _bank(wc_graph, seed=21, reusable=True)
        fresh.restore_state(payload, pool)
        fresh.ensure(80)
        straight = _bank(wc_graph, seed=21, reusable=True)
        straight.ensure(80)
        for i in range(80):
            np.testing.assert_array_equal(
                fresh.pool.set_nodes(i), straight.pool.set_nodes(i)
            )

    def test_restore_rejects_generator_mismatch(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        bank.ensure(5)
        payload = bank.state_dict()
        payload["generator"] = "SomethingElse"
        fresh = _bank(wc_graph, reusable=True)
        with pytest.raises(CheckpointError):
            fresh.restore_state(payload, bank.pool)

    def test_restore_rejects_pool_size_mismatch(self, wc_graph):
        bank = _bank(wc_graph, reusable=True)
        bank.ensure(5)
        payload = bank.state_dict()
        fresh = _bank(wc_graph, reusable=True)
        with pytest.raises(CheckpointError):
            fresh.restore_state(payload, _filled(wc_graph, 3))


class TestCorruptedCheckpoints:
    """Persisted bank state must be refused — never half-loaded — when the
    file on disk is truncated or corrupted (the torn-write crash case)."""

    def _saved_session(self, wc_graph, path):
        from repro.engine.session import QuerySession

        session = QuerySession(wc_graph, "subsim", seed=17)
        session.maximize(5, eps=0.4)
        session.save(path)
        return session

    def test_truncated_checkpoint_refused(self, wc_graph, tmp_path):
        from repro.engine.session import QuerySession

        path = tmp_path / "session.npz"
        self._saved_session(wc_graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        fresh = QuerySession(wc_graph, "subsim", seed=17)
        with pytest.raises(CheckpointError):
            fresh.restore(path)

    def test_garbage_bytes_refused(self, wc_graph, tmp_path):
        from repro.engine.session import QuerySession

        path = tmp_path / "session.npz"
        path.write_bytes(b"\x00" * 256)
        fresh = QuerySession(wc_graph, "subsim", seed=17)
        with pytest.raises(CheckpointError):
            fresh.restore(path)

    def test_cold_start_after_refusal_is_bit_identical(self, wc_graph, tmp_path):
        from repro.engine.session import QuerySession

        path = tmp_path / "session.npz"
        reference = QuerySession(wc_graph, "subsim", seed=17)
        first = reference.maximize(5, eps=0.4)
        reference.save(path)
        second = reference.maximize(8, eps=0.4)
        path.write_bytes(b"not a checkpoint")

        fresh = QuerySession(wc_graph, "subsim", seed=17)
        with pytest.raises(CheckpointError):
            fresh.restore(path)
        # The refused restore leaves the session untouched: cold-starting
        # regenerates the identical prefix and answers bit-identically.
        assert fresh.maximize(5, eps=0.4).seeds == first.seeds
        assert fresh.maximize(8, eps=0.4).seeds == second.seeds
        assert fresh.queries_served == 2

    def test_byte_capped_session_serves_through_eviction(self, wc_graph):
        from repro.engine.session import QuerySession

        capped = QuerySession(wc_graph, "subsim", seed=17, byte_cap=1)
        uncapped = QuerySession(wc_graph, "subsim", seed=17)
        for k in (5, 8, 5):
            a = capped.maximize(k, eps=0.4)
            b = uncapped.maximize(k, eps=0.4)
            # Eviction between queries never changes answers, only cost.
            assert a.seeds == b.seeds
        assert capped.metrics.value("bank.evictions") >= 2
        assert uncapped.metrics.value("bank.evictions") == 0


class TestRepair:
    """In-place resampling of delta-invalidated sets (journal replay)."""

    def _fresh(self, entropy=7, n=300, count=120):
        from repro.graphs.generators import preferential_attachment
        from repro.graphs.weights import wc_weights

        graph = wc_weights(
            preferential_attachment(n, 3, seed=1, reciprocal=0.3)
        )
        bank = RRBank(
            graph,
            VanillaICGenerator(graph),
            np.random.default_rng(np.random.SeedSequence(entropy, spawn_key=(1,))),
            role="r",
            reusable=True,
            entropy=entropy,
        )
        bank.ensure(count)
        return graph, bank

    def _uncovered_in_edge(self, graph, bank):
        coverage = bank.pool.coverage_counts()
        for v in np.flatnonzero(coverage == 0):
            lo, hi = graph.in_indptr[v], graph.in_indptr[v + 1]
            if hi > lo:
                return (int(graph.in_indices[lo]), int(v))
        raise AssertionError("no uncovered node with in-edges")

    def _covered_in_edge(self, graph, bank):
        coverage = bank.pool.coverage_counts()
        order = np.argsort(coverage)[::-1]
        for v in order:
            lo, hi = graph.in_indptr[v], graph.in_indptr[v + 1]
            if coverage[v] > 0 and hi > lo:
                return (int(graph.in_indices[lo]), int(v))
        raise AssertionError("no covered node with in-edges")

    def test_transient_bank_cannot_repair(self, wc_graph):
        with pytest.raises(ConfigurationError, match="reusable"):
            _bank(wc_graph).repair(np.array([0]))

    def test_zero_dirty_repair_is_bit_identical_to_cold(self):
        from repro.graphs.dynamic import GraphDelta

        graph, bank = self._fresh()
        edge = self._uncovered_in_edge(graph, bank)
        touched = graph.apply_delta(GraphDelta(deletes=[edge]))
        stats = bank.repair(touched)
        assert stats["num_dirty"] == 0
        assert stats["num_resampled"] == 0

        cold_graph, cold = self._fresh()
        cold_graph.apply_delta(GraphDelta(deletes=[edge]))
        # cold bank regenerated on the mutated graph from the same origin
        cold.evict()
        cold.ensure(bank.pool.num_rr)
        np.testing.assert_array_equal(
            bank.pool.rr_indptr, cold.pool.rr_indptr
        )
        np.testing.assert_array_equal(bank.pool.rr_nodes, cold.pool.rr_nodes)

    def test_dirty_repair_is_deterministic(self):
        from repro.graphs.dynamic import GraphDelta

        pools = []
        infos = []
        for _ in range(2):
            graph, bank = self._fresh()
            edge = self._covered_in_edge(graph, bank)
            touched = graph.apply_delta(GraphDelta(deletes=[edge]))
            infos.append(bank.repair(touched))
            pools.append(
                (bank.pool.rr_indptr.copy(), bank.pool.rr_nodes.copy())
            )
        assert infos[0]["num_dirty"] == infos[1]["num_dirty"] > 0
        assert infos[0]["num_resampled"] == infos[1]["num_resampled"]
        assert infos[0]["num_fallback"] == 0
        np.testing.assert_array_equal(pools[0][0], pools[1][0])
        np.testing.assert_array_equal(pools[0][1], pools[1][1])

    def test_repair_keeps_clean_sets_verbatim(self):
        from repro.graphs.dynamic import GraphDelta

        graph, bank = self._fresh()
        before = [
            np.array(bank.pool.set_nodes(i))
            for i in range(bank.pool.num_rr)
        ]
        edge = self._covered_in_edge(graph, bank)
        touched = graph.apply_delta(GraphDelta(deletes=[edge]))
        dirty = set(bank.pool.sets_touching(touched).tolist())
        bank.repair(touched)
        for i in range(bank.pool.num_rr):
            if i not in dirty:
                np.testing.assert_array_equal(
                    bank.pool.set_nodes(i), before[i]
                )

    def test_uncovered_dirty_sets_fall_back_to_fresh_seeds(self):
        from repro.graphs.dynamic import GraphDelta

        graph, bank = self._fresh()
        bank._journal.clear()  # simulate an adopted / pre-journal pool
        edge = self._covered_in_edge(graph, bank)
        touched = graph.apply_delta(GraphDelta(deletes=[edge]))
        stats = bank.repair(touched)
        assert stats["num_fallback"] == stats["num_dirty"] > 0

    def test_fallback_without_entropy_rejected(self):
        from repro.graphs.dynamic import GraphDelta
        from repro.graphs.generators import preferential_attachment
        from repro.graphs.weights import wc_weights

        graph = wc_weights(
            preferential_attachment(300, 3, seed=1, reciprocal=0.3)
        )
        bank = RRBank(
            graph,
            VanillaICGenerator(graph),
            np.random.default_rng(7),
            reusable=True,
        )
        bank.ensure(120)
        bank._journal.clear()
        edge = self._covered_in_edge(graph, bank)
        touched = graph.apply_delta(GraphDelta(deletes=[edge]))
        with pytest.raises(ConfigurationError, match="entropy"):
            bank.repair(touched)

    def test_state_dict_round_trips_journal(self):
        from repro.graphs.dynamic import GraphDelta

        graph_a, bank_a = self._fresh()
        payload = bank_a.state_dict()
        assert payload["journal"] == bank_a._journal

        graph_b, bank_b = self._fresh()
        bank_b._journal.clear()  # restore must bring the journal back
        bank_b.restore_state(payload, bank_b.pool)
        assert bank_b._journal == bank_a._journal
        edge = self._covered_in_edge(graph_a, bank_a)
        for graph, bank in ((graph_a, bank_a), (graph_b, bank_b)):
            touched = graph.apply_delta(GraphDelta(deletes=[edge]))
            stats = bank.repair(touched)
            assert stats["num_fallback"] == 0
        np.testing.assert_array_equal(
            bank_a.pool.rr_nodes, bank_b.pool.rr_nodes
        )

    def test_evict_clears_journal(self):
        graph, bank = self._fresh()
        assert bank._journal
        bank.evict()
        assert bank._journal == []
        bank.ensure(40)
        assert len(bank._journal) == 40


class TestBankMemoryAccounting:
    """RRBank.nbytes() must cover everything the bank pins (satellite S1)."""

    def test_nbytes_includes_journal(self, wc_graph):
        bank = _bank(wc_graph, reusable=True, entropy=7)
        bank.ensure(120)
        assert bank.journal_nbytes() > 0
        assert bank.nbytes() == bank.pool.nbytes() + bank.journal_nbytes()

    def test_nbytes_includes_sketch_registers(self, wc_graph):
        from repro.coverage.sketch import CoverageSketch

        bank = _bank(wc_graph, reusable=True, entropy=7)
        bank.ensure(80)
        before = bank.nbytes()
        sketch = bank.pool.attach_sketch(
            CoverageSketch(wc_graph.n, precision=8)
        )
        sketch.sync(bank.pool)
        assert bank.nbytes() == before + sketch.nbytes()

    def test_pool_bytes_gauge_reports_bank_total(self, wc_graph):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        bank = _bank(wc_graph, reusable=True, entropy=7)
        bank.generator.metrics = metrics
        bank.ensure(100)
        # The gauge must carry the bank-level figure (pool + journal),
        # not the pool-only number extend() published mid-way.
        assert metrics.gauge("rr_pool_bytes") == bank.nbytes()
        assert bank.nbytes() > bank.pool.nbytes()

    def test_byte_cap_eviction_sees_journal_bytes(self, wc_graph):
        bank = _bank(wc_graph, reusable=True, entropy=7)
        bank.ensure(100)
        # Cap between pool-only and pool+journal: eviction must trigger.
        bank.byte_cap = bank.pool.nbytes() + bank.journal_nbytes() // 2
        assert bank.over_cap
        bank.begin_query()
        bank.ensure(100)
        assert bank.end_query()
        assert bank.pool.num_rr == 0


class TestEvictionRepairInterplay:
    """Eviction, graph deltas, and fallback repair compose (satellite S3)."""

    def _graph(self):
        from repro.graphs.generators import preferential_attachment
        from repro.graphs.weights import wc_weights

        return wc_weights(
            preferential_attachment(300, 3, seed=1, reciprocal=0.3)
        )

    def _covered_edge(self, graph, pool):
        coverage = pool.coverage_counts()
        for v in np.argsort(coverage)[::-1]:
            lo, hi = graph.in_indptr[v], graph.in_indptr[v + 1]
            if coverage[v] > 0 and hi > lo:
                return (int(graph.in_indices[lo]), int(v))
        raise AssertionError("no covered node with in-edges")

    def test_journal_loss_repair_uses_fallback_and_stays_distributed(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        from repro.engine.session import QuerySession
        from repro.graphs.dynamic import GraphDelta

        graph = self._graph()
        session = QuerySession(graph, "subsim", seed=17)
        session.maximize(5, eps=0.4)
        banks = session.provider.persistent_banks()
        role, bank = max(
            banks.items(), key=lambda item: item[1].pool.num_rr
        )
        edge = self._covered_edge(graph, bank.pool)
        for b in banks.values():
            b._journal.clear()  # simulate adopted / pre-journal pools

        info = session.apply_delta(GraphDelta(deletes=[edge]))
        dirty = sum(s["num_dirty"] for s in info["banks"].values())
        fallback = sum(s["num_fallback"] for s in info["banks"].values())
        # Every dirty set fell back to an entropy-derived stream, and the
        # session surfaces the figure instead of swallowing it.
        assert fallback == dirty > 0
        assert info["banks"][role]["num_fallback"] > 0

        # The fallback-repaired pool must stay distributed like a cold
        # pool on the mutated graph: KS on the RR-size distributions.
        cold = QuerySession(graph, "subsim", seed=99)
        cold.maximize(5, eps=0.4)
        cold_bank = max(
            cold.provider.persistent_banks().values(),
            key=lambda b: b.pool.num_rr,
        )
        theta = min(bank.pool.num_rr, cold_bank.pool.num_rr)
        stat = scipy_stats.ks_2samp(
            bank.pool.set_sizes()[:theta],
            cold_bank.pool.set_sizes()[:theta],
        )
        assert stat.pvalue > 0.01

        # And the repaired session still answers queries.
        result = session.maximize(5, eps=0.4)
        assert len(result.seeds) == 5

    def test_evicted_bank_delta_then_requery_matches_cold(self):
        from repro.engine.session import QuerySession
        from repro.graphs.dynamic import GraphDelta

        graph = self._graph()
        capped = QuerySession(graph, "subsim", seed=17, byte_cap=1)
        capped.maximize(5, eps=0.4)  # eviction runs after the query
        banks = capped.provider.persistent_banks()
        for bank in banks.values():
            assert bank.pool.num_rr == 0 and bank._journal == []

        edge = (int(graph.in_indices[graph.in_indptr[1]]), 1)
        info = capped.apply_delta(GraphDelta(deletes=[edge]))
        # Nothing resident, nothing to repair — and nothing to fall back.
        for stats in info["banks"].values():
            assert stats["num_dirty"] == 0
            assert stats["num_fallback"] == 0

        warm = capped.maximize(5, eps=0.4)

        cold_graph = self._graph()
        cold_graph.apply_delta(GraphDelta(deletes=[edge]))
        cold = QuerySession(cold_graph, "subsim", seed=17)
        # Same entropy, same mutated graph: the evicted session's rewound
        # stream regenerates the identical pool, so answers must match.
        assert cold.maximize(5, eps=0.4).seeds == warm.seeds
