"""Tests for forward Monte-Carlo simulation and RR-based estimation."""

import numpy as np
import pytest

from repro.estimation.montecarlo import (
    SpreadEstimate,
    estimate_spread,
    simulate_ic,
    simulate_lt,
)
from repro.estimation.rr_estimator import rr_influence_estimate
from repro.graphs.csr import build_graph
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.graphs.weights import uniform_weights, wc_weights


class TestSimulateIC:
    def test_path_full_probability(self, path10, rng):
        assert simulate_ic(path10, [0], rng) == 10
        assert simulate_ic(path10, [7], rng) == 3

    def test_star_center(self, star_out, rng):
        assert simulate_ic(star_out, [0], rng) == 8

    def test_star_leaf(self, star_out, rng):
        assert simulate_ic(star_out, [3], rng) == 1

    def test_zero_probability(self, rng):
        g = uniform_weights(path_graph(5), 0.0)
        assert simulate_ic(g, [0], rng) == 1  # only the seed

    def test_multiple_seeds_union(self, path10, rng):
        assert simulate_ic(path10, [0, 5], rng) == 10

    def test_duplicate_seeds_ignored(self, path10, rng):
        assert simulate_ic(path10, [3, 3], rng) == 7

    def test_single_edge_probability(self, rng):
        g = build_graph(2, [0], [1], [0.4])
        hits = sum(simulate_ic(g, [0], rng) == 2 for _ in range(30_000))
        assert abs(hits / 30_000 - 0.4) < 0.012


class TestSimulateLT:
    def test_path_full_weight(self, path10, rng):
        assert simulate_lt(path10, [0], rng) == 10

    def test_cycle_full_weight(self, cycle8, rng):
        assert simulate_lt(cycle8, [2], rng) == 8

    def test_threshold_semantics_two_parents(self, rng):
        # node 2 has in-edges 0.5 + 0.5: with one parent active it
        # activates iff threshold <= 0.5; with both, always.
        g = build_graph(3, [0, 1], [2, 2], [0.5, 0.5])
        both = sum(simulate_lt(g, [0, 1], rng) == 3 for _ in range(2000))
        assert both == 2000
        one = sum(simulate_lt(g, [0], rng) == 2 for _ in range(30_000))
        assert abs(one / 30_000 - 0.5) < 0.012

    def test_seed_only_when_no_edges(self, rng):
        g = uniform_weights(path_graph(4), 0.0)
        assert simulate_lt(g, [1], rng) == 1


class TestEstimateSpread:
    def test_deterministic_graph_zero_variance(self, path10):
        est = estimate_spread(path10, [0], num_simulations=50, seed=0)
        assert est.mean == 10.0
        assert est.std == 0.0

    def test_confidence_interval_contains_mean(self, wc_graph):
        est = estimate_spread(wc_graph, [0, 1], num_simulations=200, seed=0)
        lo, hi = est.confidence_interval()
        assert lo <= est.mean <= hi

    def test_empty_seed_set(self, wc_graph):
        est = estimate_spread(wc_graph, [], num_simulations=10, seed=0)
        assert est.mean == 0.0

    def test_lt_model_selectable(self, path10):
        est = estimate_spread(path10, [0], model="lt", num_simulations=20, seed=0)
        assert est.mean == 10.0

    def test_rejects_bad_args(self, path10):
        with pytest.raises(ValueError):
            estimate_spread(path10, [0], model="nonsense")
        with pytest.raises(ValueError):
            estimate_spread(path10, [0], num_simulations=0)
        with pytest.raises(ValueError):
            estimate_spread(path10, [99], num_simulations=5)

    def test_reproducible_with_seed(self, wc_graph):
        a = estimate_spread(wc_graph, [3], num_simulations=100, seed=9)
        b = estimate_spread(wc_graph, [3], num_simulations=100, seed=9)
        assert a.mean == b.mean

    def test_stderr_single_simulation(self, path10):
        est = estimate_spread(path10, [0], num_simulations=1, seed=0)
        assert est.stderr == float("inf")


class TestLemma1Consistency:
    """n * Pr[S hits a random RR set] must equal the MC spread."""

    def test_ic_rr_estimate_matches_simulation(self):
        g = wc_weights(preferential_attachment(150, 3, seed=4, reciprocal=0.3))
        seeds = [0, 1, 2]
        mc = estimate_spread(g, seeds, num_simulations=4000, seed=0)
        rr = rr_influence_estimate(g, seeds, num_rr=40_000, seed=1)
        assert rr == pytest.approx(mc.mean, rel=0.08)

    def test_lt_rr_estimate_matches_simulation(self):
        from repro.graphs.weights import exponential_weights, lt_normalized_weights
        from repro.rrsets.lt import LTGenerator

        g = lt_normalized_weights(
            exponential_weights(
                preferential_attachment(150, 3, seed=4, reciprocal=0.3), seed=5
            )
        )
        seeds = [0, 1]
        mc = estimate_spread(g, seeds, model="lt", num_simulations=4000, seed=0)
        rr = rr_influence_estimate(
            g, seeds, num_rr=40_000, generator_cls=LTGenerator, seed=1
        )
        assert rr == pytest.approx(mc.mean, rel=0.08)

    def test_rr_estimate_rejects_bad_count(self, wc_graph):
        with pytest.raises(ValueError):
            rr_influence_estimate(wc_graph, [0], num_rr=0)
