"""Observability: registry merging, phase spans, run reports, baselines.

Four contracts are pinned down here:

* **Merging is commutative** — folding worker snapshots into a registry in
  any order produces the same state, which is what lets the fan-out merge
  child metrics at its rank-order merge point without caring about order.
* **Phase spans nest** — a child's wall time is part of its parent's, and
  counter deltas accrued inside a child are attributed to every enclosing
  span.
* **No sink, no effect** — attaching a registry never changes what a
  generator computes, and running without one costs nothing.
* **Canonical reports are bit-identical** — across reruns *and* across a
  crash/resume boundary, which is what the CI counter-regression gate
  (``repro.tools``) relies on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.registry import get_algorithm
from repro.observability import (
    NULL_TRACER,
    HistogramSketch,
    MetricsRegistry,
    PhaseTracer,
    RunReport,
    build_run_report,
)
from repro.observability.trace import NullTracer
from repro.runtime import FaultInjector
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.tools.counter_baseline import diff_documents, run_workload
from repro.utils.exceptions import InjectedFault

K = 8
EPS = 0.25
SEED = 11


# ----------------------------------------------------------------------
# histogram sketches
# ----------------------------------------------------------------------
class TestHistogramSketch:
    def test_bucket_is_bit_length(self):
        sketch = HistogramSketch()
        for value in (0, 1, 2, 3, 4, 7, 8, 255, 256):
            sketch.observe(value)
        # zeros -> bucket 0; [2**(b-1), 2**b) -> bucket b
        assert sketch.counts[0] == 1  # 0
        assert sketch.counts[1] == 1  # 1
        assert sketch.counts[2] == 2  # 2, 3
        assert sketch.counts[3] == 2  # 4, 7
        assert sketch.counts[4] == 1  # 8
        assert sketch.counts[8] == 1  # 255
        assert sketch.counts[9] == 1  # 256
        assert sketch.total == 9
        assert sketch.sum == 0 + 1 + 2 + 3 + 4 + 7 + 8 + 255 + 256

    def test_observe_many_matches_scalar_loop(self):
        values = np.random.default_rng(3).integers(0, 5000, size=1000)
        vectorized = HistogramSketch()
        vectorized.observe_many(values)
        scalar = HistogramSketch()
        for value in values:
            scalar.observe(int(value))
        assert vectorized == scalar

    def test_merge_is_commutative_and_exact(self):
        rng = np.random.default_rng(4)
        a_values = rng.integers(0, 100, size=50)
        b_values = rng.integers(0, 100_000, size=50)
        a, b, both = HistogramSketch(), HistogramSketch(), HistogramSketch()
        a.observe_many(a_values)
        b.observe_many(b_values)
        both.observe_many(np.concatenate([a_values, b_values]))
        ab = HistogramSketch.from_dict(a.as_dict())
        ab.merge(b)
        ba = HistogramSketch.from_dict(b.as_dict())
        ba.merge(a)
        assert ab == ba == both

    def test_round_trip_trims_trailing_zeros(self):
        sketch = HistogramSketch()
        sketch.observe(1000)
        sketch.counts.extend([0, 0, 0])  # stale tail from _ensure growth
        payload = sketch.as_dict()
        assert payload["counts"][-1] != 0
        assert HistogramSketch.from_dict(payload) == sketch

    def test_negative_values_rejected(self):
        sketch = HistogramSketch()
        with pytest.raises(ValueError):
            sketch.observe(-1)
        with pytest.raises(ValueError):
            sketch.observe_many(np.array([3, -2]))

    def test_mean_survives_sketching(self):
        sketch = HistogramSketch()
        sketch.observe_many(np.array([1, 2, 3, 10]))
        assert sketch.mean() == 4.0
        assert HistogramSketch().mean() == 0.0


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 3)
        assert reg.value("a") == 5
        assert reg.value("never") == 0
        assert reg.gauge("g") == 2.5
        assert reg.histogram("h").total == 1

    def test_attach_source_idempotent_and_validated(self, wc_graph):
        reg = MetricsRegistry()
        gen = VanillaICGenerator(wc_graph)
        reg.attach_source(gen)
        reg.attach_source(gen)  # same object: counted once
        gen.counters.edges_examined = 7
        assert reg.generation_totals()["edges_examined"] == 7
        with pytest.raises(TypeError):
            reg.attach_source(object())

    def test_numpy_scalar_counters_stay_json_able(self, wc_graph):
        # The vectorized loops accumulate np.int64 into GenerationCounters;
        # snapshots must coerce them or json.dumps dies downstream.
        reg = MetricsRegistry()
        gen = VanillaICGenerator(wc_graph)
        gen.counters.edges_examined = np.int64(41)
        reg.attach_source(gen)
        snapshot = reg.snapshot()
        assert snapshot["counters"]["generation.edges_examined"] == 41
        json.dumps(snapshot)  # must not raise

    def test_merge_snapshot_is_order_independent(self):
        payloads = []
        for i in range(1, 5):
            reg = MetricsRegistry()
            reg.inc("shared", i)
            reg.inc(f"only_{i}", 10 * i)
            reg.set_gauge("peak", float(i))
            reg.observe_many("sizes", np.arange(i * 7))
            payloads.append(reg.snapshot())

        def fold(ordering):
            merged = MetricsRegistry()
            merged.merge_snapshots(payloads[j] for j in ordering)
            return merged.snapshot()

        reference = fold(range(4))
        assert reference["counters"]["shared"] == 1 + 2 + 3 + 4
        assert reference["gauges"]["peak"] == 4.0  # gauges merge by max
        for ordering in ([3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]):
            assert fold(ordering) == reference

    def test_own_state_round_trip_with_skip_prefixes(self):
        reg = MetricsRegistry()
        reg.inc("coverage.selections", 9)
        reg.inc("runtime.edges_examined", 500)
        reg.observe_many("rr_size", np.array([1, 2, 4]))
        state = reg.own_state()
        json.dumps(state)  # checkpoint metadata must be JSON-able

        restored = MetricsRegistry()
        restored.inc("runtime.edges_examined", 3)  # live per-process spend
        restored.restore_own_state(state, skip_prefixes=("runtime.",))
        assert restored.value("coverage.selections") == 9
        # runtime.* is per-process by design: the live value survives.
        assert restored.value("runtime.edges_examined") == 3
        assert restored.histogram("rr_size") == reg.histogram("rr_size")


# ----------------------------------------------------------------------
# generator integration: no-sink no-op, sinks, fan-out merge
# ----------------------------------------------------------------------
def _grow(graph, cls, count, metrics=None, batch_size=1, workers=1):
    gen = cls(graph)
    gen.batch_size = batch_size
    gen.workers = workers
    if metrics is not None:
        gen.metrics = metrics
        metrics.attach_source(gen)
    pool = RRCollection(graph.n)
    pool.extend(count, gen, np.random.default_rng(5))
    return gen, pool


class TestGeneratorIntegration:
    @pytest.mark.parametrize("cls", [VanillaICGenerator, SubsimICGenerator])
    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_no_sink_is_a_true_no_op(self, wc_graph, cls, batch_size):
        bare_gen, bare_pool = _grow(wc_graph, cls, 300, batch_size=batch_size)
        reg = MetricsRegistry()
        inst_gen, inst_pool = _grow(
            wc_graph, cls, 300, metrics=reg, batch_size=batch_size
        )
        # Instrumentation observes; it never changes what is computed.
        assert inst_gen.counters == bare_gen.counters
        assert np.array_equal(inst_pool.set_sizes(), bare_pool.set_sizes())

    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_sink_captures_exact_size_histogram(self, wc_graph, batch_size):
        reg = MetricsRegistry()
        _, pool = _grow(
            wc_graph, SubsimICGenerator, 300, metrics=reg, batch_size=batch_size
        )
        hist = reg.histogram("rr_size")
        assert hist.total == 300
        assert hist.sum == int(pool.set_sizes().sum())
        assert reg.gauge("rr_pool_bytes") == pool.nbytes()

    def test_fanout_merges_child_metrics(self, wc_graph):
        reg = MetricsRegistry()
        _, pool = _grow(
            wc_graph,
            VanillaICGenerator,
            200,
            metrics=reg,
            batch_size=64,
            workers=2,
        )
        snapshot = reg.snapshot()
        # Histograms observed inside child processes arrive via the
        # rank-order merge; generation totals via the counters tuple.
        hist = snapshot["histograms"]["rr_size"]
        assert hist["total"] == 200
        assert hist["sum"] == int(pool.set_sizes().sum())
        assert snapshot["counters"]["generation.sets_generated"] == 200
        assert snapshot["counters"]["fanout.calls"] >= 1

    def test_fanout_metrics_reproducible(self, wc_graph):
        snapshots = []
        for _ in range(2):
            reg = MetricsRegistry()
            _grow(
                wc_graph,
                VanillaICGenerator,
                200,
                metrics=reg,
                batch_size=64,
                workers=2,
            )
            snapshots.append(reg.snapshot())
        assert snapshots[0] == snapshots[1]


# ----------------------------------------------------------------------
# phase tracing
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPhaseTracer:
    def test_nested_spans_wall_time(self):
        clock = FakeClock()
        tracer = PhaseTracer(clock=clock)
        with tracer.phase("outer"):
            clock.now = 1.0
            with tracer.phase("child_a"):
                clock.now = 3.0
            with tracer.phase("child_b"):
                clock.now = 7.0
            clock.now = 10.0
        (outer,) = tracer.roots
        assert outer.wall_seconds == 10.0
        assert [child.name for child in outer.children] == ["child_a", "child_b"]
        child_a, child_b = outer.children
        assert child_a.wall_seconds == 2.0
        assert child_b.wall_seconds == 4.0
        # Children's wall time is contained in the parent's.
        assert child_a.wall_seconds + child_b.wall_seconds <= outer.wall_seconds

    def test_counter_deltas_attributed_to_enclosing_spans(self):
        reg = MetricsRegistry()
        tracer = PhaseTracer(reg, clock=FakeClock())
        with tracer.phase("outer"):
            reg.inc("work", 1)
            with tracer.phase("inner"):
                reg.inc("work", 2)
                reg.inc("inner_only", 5)
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert inner.counter_deltas == {"work": 2, "inner_only": 5}
        # The parent sees its own work plus everything nested under it,
        # and zero-delta counters are omitted entirely.
        assert outer.counter_deltas == {"work": 3, "inner_only": 5}

    def test_out_of_order_exit_raises(self):
        tracer = PhaseTracer(clock=FakeClock())
        outer = tracer.phase("outer")
        inner = tracer.phase("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="nesting order"):
            outer.__exit__(None, None, None)

    def test_to_dict_rejects_open_spans(self):
        tracer = PhaseTracer(clock=FakeClock())
        span = tracer.phase("open")
        span.__enter__()
        with pytest.raises(RuntimeError, match="open spans"):
            tracer.to_dict()
        span.__exit__(None, None, None)
        trace = tracer.to_dict()
        assert [p["name"] for p in trace["phases"]] == ["open"]

    def test_to_json_is_deterministic(self):
        def build():
            tracer = PhaseTracer(clock=FakeClock())
            with tracer.phase("a"):
                with tracer.phase("b"):
                    pass
            return tracer.to_json()

        assert build() == build()

    def test_null_tracer_is_reusable_no_op(self):
        assert isinstance(NULL_TRACER, NullTracer)
        span = NULL_TRACER.phase("anything")
        assert span is NULL_TRACER.phase("else")  # no allocation per phase
        with span:
            pass
        assert NULL_TRACER.to_dict() == {"phases": []}


# ----------------------------------------------------------------------
# run reports
# ----------------------------------------------------------------------
def _instrumented_run(graph, algorithm="subsim", **kwargs):
    reg = MetricsRegistry()
    algo = get_algorithm(algorithm, graph)
    result = algo.run(K, eps=EPS, seed=SEED, metrics=reg, **kwargs)
    return result, reg


class TestRunReport:
    def test_json_round_trip(self, wc_graph, tmp_path):
        result, reg = _instrumented_run(wc_graph, trace=True)
        report = build_run_report(
            result,
            wc_graph,
            seed=SEED,
            metrics=reg,
            trace=result.extras["trace"],
        )
        assert RunReport.from_json(report.to_json()).as_dict() == report.as_dict()
        path = tmp_path / "report.json"
        report.write(path)
        assert RunReport.load(path).as_dict() == report.as_dict()

    def test_report_carries_trace_and_fingerprint(self, wc_graph):
        result, reg = _instrumented_run(wc_graph, trace=True)
        report = build_run_report(
            result,
            wc_graph,
            seed=SEED,
            metrics=reg,
            trace=result.extras["trace"],
        )
        assert report.graph["fingerprint"] == wc_graph.fingerprint()
        names = [span["name"] for span in report.phases["phases"]]
        assert names == ["run"]
        assert report.counters["generation.sets_generated"] > 0

    def test_canonical_drops_nondeterministic_fields(self, wc_graph):
        result, reg = _instrumented_run(wc_graph, trace=True)
        report = build_run_report(
            result,
            wc_graph,
            seed=SEED,
            metrics=reg,
            trace=result.extras["trace"],
        )
        # The full artifact has wall clock, memory, per-process spend ...
        assert report.runtime_seconds > 0
        assert "rr_pool_bytes" in report.gauges
        assert any(n.startswith("runtime.") for n in report.counters)
        # ... and the canonical projection has none of them.
        canonical = report.canonical()
        assert "runtime_seconds" not in canonical
        assert "phases" not in canonical
        assert "rr_pool_bytes" not in canonical["gauges"]
        assert not any(n.startswith("runtime.") for n in canonical["counters"])
        assert canonical["counters"]["generation.edges_examined"] > 0
        assert canonical["histograms"]["rr_size"]["total"] == result.num_rr_sets

    def test_vanilla_report_serializes_without_runtime_extras(self, wc_graph):
        # Vanilla generation accumulates numpy scalars into the result's
        # counter fields, and an un-budgeted, un-checkpointed run carries no
        # runtime extras — the budget fallback must coerce them (regression:
        # np.int64 crashed to_json on the CLI --report path).
        result, reg = _instrumented_run(wc_graph, "opim-c")
        assert "runtime" not in result.extras
        report = build_run_report(result, wc_graph, seed=SEED, metrics=reg)
        json.loads(report.to_json())

    def test_report_without_registry_still_counts(self, wc_graph):
        result = get_algorithm("subsim", wc_graph).run(K, eps=EPS, seed=SEED)
        report = build_run_report(result, wc_graph, seed=SEED)
        counters = report.canonical()["counters"]
        assert counters["generation.edges_examined"] == result.edges_examined
        assert counters["generation.rng_draws"] == result.rng_draws


class TestCanonicalBitIdentity:
    def test_rerun_is_bit_identical(self, wc_graph):
        docs = []
        for _ in range(2):
            result, reg = _instrumented_run(wc_graph)
            report = build_run_report(result, wc_graph, seed=SEED, metrics=reg)
            docs.append(json.dumps(report.canonical(), sort_keys=True))
        assert docs[0] == docs[1]

    @pytest.mark.parametrize("algorithm", ["opim-c", "hist+subsim"])
    def test_crash_resume_report_is_bit_identical(
        self, wc_graph, tmp_path, algorithm
    ):
        fresh_result, fresh_reg = _instrumented_run(wc_graph, algorithm)
        fresh = build_run_report(
            fresh_result, wc_graph, seed=SEED, metrics=fresh_reg
        )

        path = tmp_path / "run.npz"
        with pytest.raises(InjectedFault):
            get_algorithm(algorithm, wc_graph).run(
                K,
                eps=EPS,
                seed=SEED,
                metrics=MetricsRegistry(),
                checkpoint=path,
                fault_injector=FaultInjector(at_rr_set=400),
            )
        assert path.exists()
        resumed_reg = MetricsRegistry()
        resumed_result = get_algorithm(algorithm, wc_graph).run(
            K,
            eps=EPS,
            seed=SEED,
            metrics=resumed_reg,
            checkpoint=path,
            resume=True,
        )
        resumed = build_run_report(
            resumed_result, wc_graph, seed=SEED, metrics=resumed_reg
        )
        # Pushed metrics (coverage counters, histograms) from pre-crash
        # rounds are replayed from the checkpoint, so the canonical report
        # is bit-identical to an uninterrupted run's.
        assert json.dumps(resumed.canonical(), sort_keys=True) == json.dumps(
            fresh.canonical(), sort_keys=True
        )


# ----------------------------------------------------------------------
# the counter-regression diff tool
# ----------------------------------------------------------------------
class TestCounterBaselineDiff:
    @pytest.fixture(scope="class")
    def document(self):
        cell = run_workload("subsim", "wc", 1)
        return {
            "baseline_schema_version": 1,
            "graph": {"n": 300},
            "query": {"k": K},
            "workloads": {"subsim/wc/sequential": cell},
        }

    def test_identity_diff_is_empty(self, document):
        copy = json.loads(json.dumps(document))
        assert diff_documents(document, copy) == []

    def test_tampered_counter_is_reported(self, document):
        tampered = json.loads(json.dumps(document))
        cell = tampered["workloads"]["subsim/wc/sequential"]
        cell["counters"]["generation.edges_examined"] += 1
        lines = diff_documents(document, tampered)
        assert len(lines) == 1
        assert "generation.edges_examined" in lines[0]
        assert "subsim/wc/sequential" in lines[0]

    def test_missing_workload_is_reported(self, document):
        empty = {"baseline_schema_version": 1, "workloads": {}}
        lines = diff_documents(document, empty)
        assert any("missing from current run" in line for line in lines)

    def test_schema_mismatch_is_reported(self, document):
        bumped = json.loads(json.dumps(document))
        bumped["baseline_schema_version"] = 2
        lines = diff_documents(document, bumped)
        assert any("baseline_schema_version" in line for line in lines)
