"""Tests for graph persistence."""

import numpy as np
import pytest

from repro.graphs.generators import preferential_attachment
from repro.graphs.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graphs.weights import exponential_weights
from repro.utils.exceptions import GraphFormatError


@pytest.fixture
def graph():
    return exponential_weights(
        preferential_attachment(50, 3, seed=1, reciprocal=0.3), seed=2
    )


class TestEdgeList:
    def test_round_trip_with_probs(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path, n=graph.n)
        assert loaded == graph

    def test_round_trip_without_probs(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path, write_probs=False)
        loaded = load_edge_list(path, default_prob=1.0, n=graph.n)
        assert loaded.m == graph.m
        assert (loaded.out_probs == 1.0).all()

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 0.5\n# mid\n1 2\n")
        g = load_edge_list(path, default_prob=0.25)
        assert g.n == 3
        assert g.m == 2
        assert set(g.out_probs) == {0.5, 0.25}

    def test_n_inferred_from_max_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 7 0.5\n")
        assert load_edge_list(path).n == 8

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 extra stuff\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)


class TestNpz:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded == graph
        assert loaded.weight_model == graph.weight_model

    def test_preserves_in_adjacency_exactly(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.in_indices, graph.in_indices)
        assert np.array_equal(loaded.in_probs, graph.in_probs)
