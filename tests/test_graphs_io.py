"""Tests for graph persistence."""

import os

import numpy as np
import pytest

from repro.graphs.generators import preferential_attachment
from repro.graphs.io import (
    load_edge_list,
    load_edge_list_with_retry,
    load_graph_auto,
    load_npz,
    load_npz_with_retry,
    save_edge_list,
    save_npz,
    sidecar_path,
)
from repro.graphs.weights import exponential_weights
from repro.utils.exceptions import GraphFormatError


@pytest.fixture
def graph():
    return exponential_weights(
        preferential_attachment(50, 3, seed=1, reciprocal=0.3), seed=2
    )


class TestEdgeList:
    def test_round_trip_with_probs(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path, n=graph.n)
        assert loaded == graph

    def test_round_trip_without_probs(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path, write_probs=False)
        loaded = load_edge_list(path, default_prob=1.0, n=graph.n)
        assert loaded.m == graph.m
        assert (loaded.out_probs == 1.0).all()

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 0.5\n# mid\n1 2\n")
        g = load_edge_list(path, default_prob=0.25)
        assert g.n == 3
        assert g.m == 2
        assert set(g.out_probs) == {0.5, 0.25}

    def test_n_inferred_from_max_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 7 0.5\n")
        assert load_edge_list(path).n == 8

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 extra stuff\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)


class TestNpz:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded == graph
        assert loaded.weight_model == graph.weight_model

    def test_preserves_in_adjacency_exactly(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.in_indices, graph.in_indices)
        assert np.array_equal(loaded.in_probs, graph.in_probs)


class TestRetry:
    def test_transient_failure_eventually_loads(self, graph, tmp_path):
        # The file appears after two attempts (flaky mount simulation):
        # materialize it from inside the injected sleep.
        path = tmp_path / "late.npz"
        sleeps = []

        def sleep(delay):
            sleeps.append(delay)
            if len(sleeps) == 2:
                save_npz(graph, path)

        loaded = load_npz_with_retry(path, retries=3, sleep=sleep, seed=0)
        assert loaded == graph
        assert len(sleeps) == 2

    def test_format_error_not_retried(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("garbage line here\n")
        sleeps = []
        with pytest.raises(GraphFormatError) as info:
            load_edge_list_with_retry(path, retries=5, sleep=sleeps.append)
        assert sleeps == []
        assert info.value.attempts == 1
        assert info.value.total_wait == 0.0

    def test_exhausted_retries_surface_attempts(self, tmp_path):
        sleeps = []
        with pytest.raises(GraphFormatError) as info:
            load_npz_with_retry(
                tmp_path / "absent.npz", retries=3, backoff=0.25,
                jitter=0.0, sleep=sleeps.append, max_total_wait=None,
            )
        assert info.value.attempts == 4  # first try + 3 retries
        assert info.value.total_wait == pytest.approx(sum(sleeps))
        assert len(sleeps) == 3

    def test_max_total_wait_caps_cumulative_sleep(self, tmp_path):
        sleeps = []
        with pytest.raises(GraphFormatError) as info:
            load_edge_list_with_retry(
                tmp_path / "absent.txt", retries=50, backoff=1.0,
                jitter=0.0, sleep=sleeps.append, max_total_wait=5.0,
            )
        # Backoffs 1, 2 fit (3s total); the next (4s) would blow the cap.
        assert sleeps == [1.0, 2.0]
        assert info.value.attempts == 3
        assert info.value.total_wait == pytest.approx(3.0)

    def test_jitter_is_seeded_and_bounded(self, tmp_path):
        def delays(seed):
            sleeps = []
            with pytest.raises(GraphFormatError):
                load_npz_with_retry(
                    tmp_path / "absent.npz", retries=3, backoff=0.1,
                    jitter=0.5, sleep=sleeps.append, seed=seed,
                )
            return sleeps

        first = delays(7)
        assert first == delays(7)
        assert first != delays(8)
        for i, delay in enumerate(first):
            base = 0.1 * 2.0 ** i
            assert base <= delay <= base * 1.5

    def test_negative_retries_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_npz_with_retry(tmp_path / "x.npz", retries=-1)
        with pytest.raises(GraphFormatError):
            load_npz_with_retry(
                tmp_path / "x.npz", retries=1, max_total_wait=-1.0
            )


def _graphs_equal(a, b) -> bool:
    # weight_model is a label the text format does not carry; equality of
    # the structural arrays is what cache correctness means here.
    return (
        a.n == b.n
        and np.array_equal(a.out_indptr, b.out_indptr)
        and np.array_equal(a.out_indices, b.out_indices)
        and np.array_equal(a.out_probs, b.out_probs)
    )


class TestSidecarCache:
    def test_text_load_writes_sidecar(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        loaded = load_graph_auto(path)
        assert _graphs_equal(loaded, graph)
        assert os.path.exists(sidecar_path(path))
        # Second load comes from the sidecar and is identical.
        assert _graphs_equal(load_graph_auto(path), graph)

    def test_stale_sidecar_ignored_and_refreshed(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        load_graph_auto(path)
        # Rewrite the text with a different graph, newer than the sidecar.
        other = exponential_weights(
            preferential_attachment(30, 2, seed=9), seed=3
        )
        save_edge_list(other, path)
        future = os.path.getmtime(sidecar_path(path)) + 10
        os.utime(path, (future, future))
        assert _graphs_equal(load_graph_auto(path), other)

    def test_corrupt_sidecar_falls_back_to_text(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        with open(sidecar_path(path), "wb") as handle:
            handle.write(b"not a zip")
        future = os.path.getmtime(path) + 10
        os.utime(sidecar_path(path), (future, future))
        assert _graphs_equal(load_graph_auto(path), graph)

    def test_npz_path_loads_directly(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert _graphs_equal(load_graph_auto(path), graph)
        assert not os.path.exists(sidecar_path(path))

    def test_use_sidecar_false_skips_cache(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        assert _graphs_equal(
            load_graph_auto(path, use_sidecar=False), graph
        )
        assert not os.path.exists(sidecar_path(path))
