"""Tests for the empirical guarantee auditor."""

import pytest

from repro.experiments.guarantees import GuaranteeAudit, audit_guarantee
from repro.core.certify import Certificate
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(200, 3, seed=9, reciprocal=0.3))


def make_cert(ratio):
    return Certificate(
        ratio=ratio, lower_bound=1.0, upper_bound=2.0, num_rr_sets=10, delta=0.01
    )


class TestAuditDataclass:
    def test_failure_counting(self):
        audit = GuaranteeAudit(
            algorithm="x", k=2, eps=0.3, delta=0.1,
            target_ratio=0.33,
            certificates=[make_cert(0.5), make_cert(0.1), make_cert(0.25)],
            certificate_slack=0.0,
        )
        assert audit.runs == 3
        assert audit.failures == 2
        assert audit.failure_rate == pytest.approx(2 / 3)
        assert not audit.holds()

    def test_slack_absorbs_near_misses(self):
        audit = GuaranteeAudit(
            algorithm="x", k=2, eps=0.3, delta=0.1,
            target_ratio=0.33,
            certificates=[make_cert(0.28)],
            certificate_slack=0.1,
        )
        assert audit.failures == 0
        assert audit.holds()

    def test_summary_row(self):
        audit = GuaranteeAudit(
            algorithm="x", k=2, eps=0.3, delta=0.1,
            target_ratio=0.33,
            certificates=[make_cert(0.5)],
            certificate_slack=0.0,
        )
        row = audit.summary_row()
        assert row["holds"] is True
        assert row["min_certified"] == 0.5


class TestAuditEndToEnd:
    def test_subsim_guarantee_holds(self, graph):
        audit = audit_guarantee(
            graph, "subsim", k=5, eps=0.3, delta=0.1,
            runs=5, certificate_rr=8000, seed=1,
        )
        assert audit.runs == 5
        assert audit.holds(), audit.summary_row()

    def test_random_seeds_fail_the_audit(self, graph):
        audit = audit_guarantee(
            graph, "random", k=5, eps=0.3, delta=0.1,
            runs=5, certificate_rr=8000, seed=1,
        )
        assert audit.failure_rate > 0.5

    def test_reproducible(self, graph):
        a = audit_guarantee(graph, "degree", k=3, runs=2,
                            certificate_rr=2000, seed=4)
        b = audit_guarantee(graph, "degree", k=3, runs=2,
                            certificate_rr=2000, seed=4)
        assert a.certified_ratios == b.certified_ratios

    def test_validation(self, graph):
        with pytest.raises(ConfigurationError):
            audit_guarantee(graph, "subsim", k=3, runs=0)
        with pytest.raises(ConfigurationError):
            audit_guarantee(graph, "subsim", k=3, certificate_slack=1.5)
