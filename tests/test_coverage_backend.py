"""Backend resolution, exact-path parity, and end-to-end sketch runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import get_algorithm
from repro.coverage.backend import (
    AUTO_SKETCH_THETA,
    COVERAGE_BACKENDS,
    ExactBackend,
    resolve_backend,
)
from repro.coverage.greedy import max_coverage_greedy
from repro.coverage.sketch import SketchBackend
from repro.observability import MetricsRegistry
from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError


def _pool(graph, count, seed=5):
    pool = RRCollection(graph.n)
    pool.extend(count, VanillaICGenerator(graph), np.random.default_rng(seed))
    return pool


class TestResolveBackend:
    def test_default_is_exact(self):
        assert resolve_backend(None).name == "exact"
        assert isinstance(resolve_backend("exact"), ExactBackend)

    def test_explicit_sketch(self):
        metrics = MetricsRegistry()
        backend = resolve_backend("sketch", metrics=metrics)
        assert isinstance(backend, SketchBackend)
        assert metrics.gauge("coverage.sketch_precision") == backend.precision

    def test_auto_thresholds_on_theta_hint(self):
        assert resolve_backend("auto", theta_hint=1000).name == "exact"
        assert (
            resolve_backend("auto", theta_hint=AUTO_SKETCH_THETA).name
            == "sketch"
        )
        assert resolve_backend("auto", theta_hint=None).name == "exact"

    def test_allow_sketch_false_degrades_to_exact(self):
        assert (
            resolve_backend(
                "sketch", theta_hint=10**9, allow_sketch=False
            ).name
            == "exact"
        )

    def test_backend_instance_passes_through(self):
        backend = SketchBackend(precision=9)
        assert resolve_backend(backend) is backend

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="coverage_backend"):
            resolve_backend("bogus")


class TestExactBackendParity:
    def test_max_coverage_matches_greedy(self, wc_graph):
        pool = _pool(wc_graph, 300)
        backend = ExactBackend()
        ours = backend.max_coverage(pool, select=6, topk=6)
        ref = max_coverage_greedy(pool, select=6, topk=6)
        assert ours.seeds == ref.seeds
        assert ours.coverage == ref.coverage
        assert ours.upper_bound_coverage == ref.upper_bound_coverage

    def test_coverage_matches_pool(self, wc_graph):
        pool = _pool(wc_graph, 120)
        backend = ExactBackend()
        seeds = backend.max_coverage(pool, select=4, topk=4).seeds
        assert backend.coverage(pool, seeds) == pool.coverage(seeds)

    def test_certified_upper_is_identity(self):
        backend = ExactBackend()
        assert backend.certified_upper_coverage(37.5, 100) == 37.5
        assert backend.certificate() == {"backend": "exact"}


class TestRunValidation:
    def test_invalid_backend_string_rejected(self, wc_graph):
        algo = get_algorithm("opim-c", wc_graph)
        with pytest.raises(ConfigurationError, match="coverage_backend"):
            algo.run(4, eps=0.3, seed=1, coverage_backend="bogus")

    def test_sketch_with_checkpoint_rejected(self, wc_graph, tmp_path):
        algo = get_algorithm("opim-c", wc_graph)
        with pytest.raises(ConfigurationError, match="checkpoint"):
            algo.run(
                4,
                eps=0.3,
                seed=1,
                coverage_backend="sketch",
                checkpoint=str(tmp_path / "ck.npz"),
            )

    def test_explicit_sketch_on_hist_rejected(self, wc_graph):
        algo = get_algorithm("hist", wc_graph)
        assert algo.supports_sketch_coverage is False
        with pytest.raises(ConfigurationError, match="sketch"):
            algo.run(4, eps=0.3, seed=1, coverage_backend="sketch")

    def test_auto_on_hist_degrades_to_exact(self, wc_graph):
        algo = get_algorithm("hist", wc_graph)
        exact = algo.run(4, eps=0.4, seed=1)
        auto = get_algorithm("hist", wc_graph).run(
            4, eps=0.4, seed=1, coverage_backend="auto"
        )
        assert auto.seeds == exact.seeds
        assert auto.extras.get("coverage_backend") is None

    def test_all_specs_exported(self):
        assert COVERAGE_BACKENDS == ("exact", "sketch", "auto")


class TestEndToEndSketch:
    @pytest.mark.parametrize(
        "name", ["opim-c", "subsim", "imm", "tim+", "d-ssa"]
    )
    def test_sketch_run_within_certified_band(self, wc_graph, name):
        exact = get_algorithm(name, wc_graph).run(6, eps=0.3, seed=11)
        sketch = get_algorithm(name, wc_graph).run(
            6, eps=0.3, seed=11, coverage_backend="sketch"
        )
        cert = sketch.extras["coverage_backend"]
        assert cert["backend"] == "sketch"
        assert cert["lower_bound_exact"] is True
        assert len(sketch.seeds) == 6
        # Certified accuracy: score both seed sets on one independent
        # held-out RR pool (shared pool, so the sampling noise cancels);
        # the sketch seeds may trail by at most the certified relative
        # error plus a little held-out estimation slack.
        holdout = _pool(wc_graph, 3000, seed=99)
        cov_exact = holdout.coverage(exact.seeds)
        cov_sketch = holdout.coverage(sketch.seeds)
        shortfall = (cov_exact - cov_sketch) / max(cov_exact, 1)
        assert shortfall <= cert["epsilon_sketch"] + 0.05

    def test_exact_run_attaches_no_certificate(self, wc_graph):
        result = get_algorithm("opim-c", wc_graph).run(6, eps=0.3, seed=11)
        assert result.extras.get("coverage_backend") is None
        explicit = get_algorithm("opim-c", wc_graph).run(
            6, eps=0.3, seed=11, coverage_backend="exact"
        )
        assert explicit.extras.get("coverage_backend") is None
        assert explicit.seeds == result.seeds

    def test_explicit_exact_is_bit_identical_to_default(self, wc_graph):
        default = get_algorithm("subsim", wc_graph).run(5, eps=0.3, seed=3)
        explicit = get_algorithm("subsim", wc_graph).run(
            5, eps=0.3, seed=3, coverage_backend="exact"
        )
        assert explicit.seeds == default.seeds
        assert explicit.num_rr_sets == default.num_rr_sets
        assert explicit.rng_draws == default.rng_draws

    def test_sketch_counters_and_ladder(self, wc_graph):
        metrics = MetricsRegistry()
        get_algorithm("opim-c", wc_graph).run(
            6, eps=0.3, seed=11, metrics=metrics, coverage_backend="sketch"
        )
        assert metrics.value("coverage.sketch_selections") > 0
        # The ladder only escalates when the error band overlaps the OPIM-C
        # stopping gap, so escalations are bounded by the ladder height.
        assert 0 <= metrics.value("coverage.sketch_escalations") <= 4
        assert metrics.gauge("coverage.sketch_precision") >= 8


class TestSessionWiring:
    def test_session_default_backend(self, wc_graph):
        from repro.engine.session import QuerySession

        session = QuerySession(
            wc_graph, "subsim", seed=17, coverage_backend="sketch"
        )
        result = session.maximize(5, eps=0.4)
        assert result.extras["coverage_backend"]["backend"] == "sketch"

    def test_run_level_override_beats_session_default(self, wc_graph):
        from repro.engine.session import QuerySession

        session = QuerySession(
            wc_graph, "subsim", seed=17, coverage_backend="sketch"
        )
        result = session.maximize(5, eps=0.4, coverage_backend="exact")
        assert result.extras.get("coverage_backend") is None

    def test_invalid_session_backend_rejected(self, wc_graph):
        from repro.engine.session import QuerySession

        with pytest.raises(ConfigurationError, match="coverage_backend"):
            QuerySession(wc_graph, "subsim", seed=17, coverage_backend="bad")

    def test_sharded_sketch_query(self, wc_graph):
        from repro.engine.session import QuerySession

        session = QuerySession(
            wc_graph, "subsim", seed=17, shards=2, coverage_backend="sketch"
        )
        try:
            result = session.maximize(5, eps=0.4)
            assert len(result.seeds) == 5
            assert result.extras["coverage_backend"]["backend"] == "sketch"
        finally:
            session.close()
