"""Property tests: memmap-backed RRCollection is bit-identical to resident.

Satellite S4: spilling a pool to disk (``spill_to``), querying it through
the memory-mapped buffers, and reloading it cold (``from_spill``) must be
invisible to every read path — nodes, offsets, coverage counts, inverted
index, prefix views.  Also covers the power-of-two growth policy and its
``realloc_count`` / ``nbytes`` accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrsets.collection import RRCollection, _pow2_capacity

N = 40


@st.composite
def rr_pools(draw):
    """A list of RR sets over ``N`` nodes (possibly with empty sets).

    Nodes within one set are unique — the pool's documented invariant
    (an RR set is a reachability set, so it cannot repeat a node).
    """
    num_sets = draw(st.integers(min_value=1, max_value=30))
    return [
        np.array(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=N - 1),
                    min_size=0,
                    max_size=12,
                    unique=True,
                )
            ),
            dtype=np.int64,
        )
        for _ in range(num_sets)
    ]


def _fill(sets):
    coll = RRCollection(N)
    for s in sets:
        coll.add(s)
    return coll


def _digest(coll):
    return (
        coll.num_rr,
        coll.rr_nodes.tolist(),
        coll.set_sizes().tolist(),
        coll.coverage_counts().tolist(),
        coll.uncovered_counts(
            np.arange(N, dtype=np.int64), np.zeros(coll.num_rr, dtype=bool)
        ).tolist(),
        [coll.rrs_containing(v).tolist() for v in range(N)],
    )


class TestSpillBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(rr_pools())
    def test_spill_and_reload_identical(self, tmp_path_factory, sets):
        tmp = tmp_path_factory.mktemp("spill")
        resident = _fill(sets)
        expected = _digest(resident)

        spilled = _fill(sets)
        paths = spilled.spill_to(str(tmp / "pool"))
        if spilled.total_size:
            assert spilled.is_spilled and paths
            reloaded = RRCollection.from_spill(N, str(tmp / "pool"))
            assert _digest(reloaded) == expected
        assert _digest(spilled) == expected

    def test_nbytes_excludes_memmaps(self, tmp_path):
        coll = _fill([np.arange(10, dtype=np.int64)] * 50)
        resident_bytes = coll.nbytes()
        coll.spill_to(str(tmp_path / "pool"))
        assert coll.is_spilled
        # Only O(n) resident state (coverage counts + bookkeeping) remains.
        assert coll.nbytes() < resident_bytes

    def test_append_after_spill_promotes(self, tmp_path):
        sets = [np.array([1, 2, 3], dtype=np.int64)] * 8
        coll = _fill(sets)
        coll.spill_to(str(tmp_path / "pool"))
        coll.add(np.array([4, 5], dtype=np.int64))
        assert not coll.is_spilled
        reference = _fill(sets + [np.array([4, 5], dtype=np.int64)])
        assert _digest(coll) == _digest(reference)

    def test_empty_pool_spill_is_noop(self, tmp_path):
        coll = RRCollection(N)
        assert coll.spill_to(str(tmp_path / "pool")) == {}
        assert not coll.is_spilled


class TestPow2Growth:
    def test_pow2_capacity(self):
        assert _pow2_capacity(1, 1024) == 1024
        assert _pow2_capacity(1024, 1024) == 1024
        assert _pow2_capacity(1025, 1024) == 2048
        assert _pow2_capacity(3000, 256) == 4096

    def test_realloc_count_logarithmic(self):
        coll = RRCollection(N)
        one = np.array([0], dtype=np.int64)
        for _ in range(20_000):
            coll.add(one)
        # Doubling growth: ~log2(20k/256) set-array reallocs plus the node
        # pool's, far below one realloc per append.
        assert coll.realloc_count <= 24
        assert coll.num_rr == 20_000

    @settings(max_examples=15, deadline=None)
    @given(rr_pools())
    def test_growth_never_changes_content(self, sets):
        # Append one-by-one vs. batched reserve paths agree.
        singly = _fill(sets)
        batched = RRCollection(N)
        nodes = (
            np.concatenate(sets) if sets else np.empty(0, dtype=np.int64)
        )
        sizes = np.array([len(s) for s in sets], dtype=np.int64)
        batched.add_batch(nodes, sizes)
        assert _digest(singly) == _digest(batched)
