"""Tests for the reproduction-report aggregator."""

import pytest

from repro.experiments.reportgen import available_results, generate_report
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig1_wc_running_time.txt").write_text("fig1 table body\n")
    (d / "guarantee_audit.txt").write_text("audit body\n")
    (d / "custom_extra.txt").write_text("extra body\n")
    return d


class TestAvailable:
    def test_lists_stems(self, results_dir):
        assert available_results(results_dir) == [
            "custom_extra",
            "fig1_wc_running_time",
            "guarantee_audit",
        ]

    def test_missing_dir_empty(self, tmp_path):
        assert available_results(tmp_path / "nope") == []


class TestGenerate:
    def test_composes_in_canonical_order(self, results_dir):
        text = generate_report(results_dir)
        fig1 = text.index("Figure 1")
        audit = text.index("guarantee audit")
        extra = text.index("custom_extra")
        assert fig1 < audit < extra

    def test_bodies_included(self, results_dir):
        text = generate_report(results_dir)
        assert "fig1 table body" in text
        assert "extra body" in text

    def test_missing_sections_listed(self, results_dir):
        text = generate_report(results_dir)
        assert "Missing sections" in text
        assert "Figure 6" in text

    def test_writes_output_file(self, results_dir, tmp_path):
        out = tmp_path / "REPORT.md"
        generate_report(results_dir, output_path=out, title="T")
        assert out.read_text().startswith("# T")

    def test_empty_dir_rejected(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(ConfigurationError):
            generate_report(empty)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_report(tmp_path / "nope")

    def test_real_results_if_present(self):
        """Against the repo's actual results dir when benchmarks have run."""
        from pathlib import Path

        real = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        if not real.is_dir() or not any(real.glob("*.txt")):
            pytest.skip("no benchmark results present")
        text = generate_report(real)
        assert "# Reproduction report" in text
