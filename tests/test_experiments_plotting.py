"""Tests for the ASCII chart helpers."""

import pytest

from repro.experiments.plotting import bar_chart, line_chart, runtime_ladder_chart


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart({"a": 1.0, "bb": 2.0}, title="t", width=10)
        lines = text.strip().split("\n")
        assert lines[0] == "== t =="
        assert lines[1].startswith("a ")
        assert lines[2].count("#") == 10  # the max fills the width

    def test_proportionality_linear(self):
        text = bar_chart({"x": 1.0, "y": 4.0}, width=40)
        x_len = text.splitlines()[0].count("#")
        y_len = text.splitlines()[1].count("#")
        assert y_len == 4 * x_len

    def test_log_scale_compresses(self):
        text = bar_chart({"x": 1.0, "y": 1000.0}, width=30, log_scale=True)
        x_len = text.splitlines()[0].count("#")
        y_len = text.splitlines()[1].count("#")
        assert x_len >= 1
        assert y_len == 30

    def test_zero_value_empty_bar(self):
        text = bar_chart({"x": 0.0, "y": 5.0})
        assert text.splitlines()[0].count("#") == 0

    def test_empty_and_invalid(self):
        assert bar_chart({}) == "(no data)\n"
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})


class TestLineChart:
    def test_markers_present(self):
        text = line_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, x_labels=[1, 2, 3]
        )
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError):
            line_chart({"a": [0.0, 1.0]}, [1, 2], log_scale=True)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, [1, 2, 3])

    def test_height_validated(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, [1, 2], height=1)

    def test_empty(self):
        assert line_chart({}, []) == "(no data)\n"


class TestLadderChart:
    def test_from_harness_rows(self):
        rows = [
            {"target": 10, "algorithm": "opim-c", "runtime_s": 1.0},
            {"target": 10, "algorithm": "hist", "runtime_s": 0.5},
            {"target": 100, "algorithm": "opim-c", "runtime_s": 4.0},
            {"target": 100, "algorithm": "hist", "runtime_s": 0.6},
        ]
        text = runtime_ladder_chart(rows, x_key="target", title="ladder")
        assert "== ladder ==" in text
        assert "opim-c" in text

    def test_missing_point_rejected(self):
        rows = [
            {"target": 10, "algorithm": "a", "runtime_s": 1.0},
            {"target": 100, "algorithm": "b", "runtime_s": 2.0},
        ]
        with pytest.raises(ValueError):
            runtime_ladder_chart(rows, x_key="target")
