"""Tests for the parameter-sweep runner."""

import pytest

from repro.experiments.sweep import SweepConfig, run_sweep, summarize_sweep
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_graphs():
    g = wc_weights(preferential_attachment(120, 3, seed=1, reciprocal=0.3))
    return {"tiny": g}


class TestSweepConfig:
    def test_size(self, small_graphs):
        config = SweepConfig(
            graphs=small_graphs,
            algorithms=["degree", "random"],
            k_values=[2, 4],
            seeds=[0, 1, 2],
        )
        assert config.size() == 12

    def test_validation(self, small_graphs):
        with pytest.raises(ConfigurationError):
            SweepConfig({}, ["degree"], [1]).validate()
        with pytest.raises(ConfigurationError):
            SweepConfig(small_graphs, [], [1]).validate()
        with pytest.raises(ConfigurationError):
            SweepConfig(small_graphs, ["degree"], [0]).validate()
        with pytest.raises(ConfigurationError):
            SweepConfig(small_graphs, ["degree"], [1], seeds=[]).validate()


class TestRunSweep:
    def test_executes_full_grid(self, small_graphs):
        config = SweepConfig(
            graphs=small_graphs,
            algorithms=["degree", "random"],
            k_values=[2, 3],
            seeds=[0, 1],
        )
        records = run_sweep(config)
        assert len(records) == config.size()
        assert {r.algorithm for r in records} == {"degree", "random"}
        assert {r.k for r in records} == {2, 3}

    def test_csv_output(self, small_graphs, tmp_path):
        config = SweepConfig(
            graphs=small_graphs, algorithms=["degree"], k_values=[2]
        )
        path = tmp_path / "sweep.csv"
        run_sweep(config, csv_path=str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one run

    def test_algorithm_kwargs_forwarded(self, small_graphs):
        config = SweepConfig(
            graphs=small_graphs,
            algorithms=["imm"],
            k_values=[2],
            eps=0.5,
            algorithm_kwargs={"imm": {"max_rr_sets": 777}},
        )
        records = run_sweep(config)
        assert records[0].result.num_rr_sets <= 777

    def test_spread_evaluation(self, small_graphs):
        config = SweepConfig(
            graphs=small_graphs,
            algorithms=["degree"],
            k_values=[2],
            evaluate_spread=True,
            num_simulations=50,
        )
        records = run_sweep(config)
        assert records[0].spread is not None


class TestSummarize:
    def test_aggregates_seeds(self, small_graphs):
        config = SweepConfig(
            graphs=small_graphs,
            algorithms=["degree"],
            k_values=[2],
            seeds=[0, 1, 2],
        )
        rows = summarize_sweep(run_sweep(config))
        assert len(rows) == 1
        assert rows[0]["runs"] == 3
        assert rows[0]["max_runtime_s"] >= rows[0]["mean_runtime_s"] - 1e-9

    def test_mean_spread_when_available(self, small_graphs):
        config = SweepConfig(
            graphs=small_graphs,
            algorithms=["degree"],
            k_values=[2],
            seeds=[0, 1],
            evaluate_spread=True,
            num_simulations=20,
        )
        rows = summarize_sweep(run_sweep(config))
        assert "mean_spread" in rows[0]
