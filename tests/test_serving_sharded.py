"""Sharded tenant sessions behind the query server.

Config validation, per-tenant spill isolation, repeat-query determinism
through the session manager, and resource release on invalidate/close.
"""

from __future__ import annotations

import os

import pytest

from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import wc_weights
from repro.serving.config import ServerConfig
from repro.serving.sessions import SessionManager
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def graph():
    return wc_weights(erdos_renyi(150, 4.0, seed=23))


class TestConfigValidation:
    def test_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(shards=0)

    def test_spill_dir_requires_shards(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ServerConfig(spill_dir=str(tmp_path))

    def test_shards_and_snapshot_dir_conflict(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ServerConfig(shards=2, snapshot_dir=str(tmp_path))


class TestShardedSessions:
    def _manager(self, tmp_path=None):
        return SessionManager(
            ServerConfig(
                algorithm="subsim",
                eps=0.4,
                seed=7,
                shards=2,
                spill_dir=str(tmp_path) if tmp_path else None,
            )
        )

    def test_repeat_queries_identical(self, graph):
        manager = self._manager()
        try:
            answers = []
            for _ in range(2):
                with manager.lease("t1", "g", graph) as session:
                    result = session.maximize(4, eps=0.4, batch_size=16)
                    answers.append(result.seeds)
            assert answers[0] == answers[1]
            assert (
                manager.metrics.value("serving.sessions_created") == 1
            )
        finally:
            manager.close_all()

    def test_tenants_get_isolated_spill_dirs(self, graph, tmp_path):
        manager = self._manager(tmp_path)
        try:
            with manager.lease("alice", "g", graph) as session:
                session.maximize(3, eps=0.4, batch_size=16)
            with manager.lease("bob", "g", graph) as session:
                session.maximize(3, eps=0.4, batch_size=16)
            dirs = sorted(os.listdir(tmp_path))
            assert len(dirs) == 2
            assert manager.spill_path("alice", "g") != manager.spill_path(
                "bob", "g"
            )
        finally:
            manager.close_all()

    def test_invalidate_closes_shard_pool(self, graph):
        manager = self._manager()
        try:
            with manager.lease("t1", "g", graph) as session:
                session.maximize(3, eps=0.4, batch_size=16)
                pool = session.shard_pool
            manager.invalidate("t1", "g")
            assert pool._closed
            assert (
                manager.metrics.value("serving.sessions_invalidated") == 1
            )
        finally:
            manager.close_all()

    def test_close_all_idempotent(self, graph):
        manager = self._manager()
        with manager.lease("t1", "g", graph) as session:
            session.maximize(3, eps=0.4, batch_size=16)
        manager.close_all()
        manager.close_all()
        assert manager.entries() == []
