"""Tests for edge-weighting schemes."""

import numpy as np
import pytest

from repro.graphs.generators import preferential_attachment, star_graph
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    reweight,
    trivalency_weights,
    uniform_weights,
    wc_variant_weights,
    wc_weights,
    weibull_weights,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def base():
    return preferential_attachment(200, 4, seed=7, reciprocal=0.3)


class TestWC:
    def test_probability_is_inverse_in_degree(self, base):
        g = wc_weights(base)
        src, dst, probs = g.edges()
        in_deg = g.in_degree()
        assert np.allclose(probs, 1.0 / in_deg[dst])

    def test_in_sums_are_one(self, base):
        g = wc_weights(base)
        nonzero = g.in_degree() > 0
        assert np.allclose(g.in_prob_sums[nonzero], 1.0)

    def test_uniform_in_everywhere(self, base):
        g = wc_weights(base)
        assert g.uniform_in.all()

    def test_weight_model_tag(self, base):
        assert wc_weights(base).weight_model == "wc"


class TestWCVariant:
    def test_theta_one_equals_wc(self, base):
        a = wc_weights(base)
        b = wc_variant_weights(base, 1.0)
        assert np.allclose(a.out_probs, b.out_probs)

    def test_probabilities_capped_at_one(self, base):
        g = wc_variant_weights(base, 1000.0)
        assert g.out_probs.max() <= 1.0

    def test_monotone_in_theta(self, base):
        lo = wc_variant_weights(base, 1.5)
        hi = wc_variant_weights(base, 3.0)
        assert (hi.out_probs >= lo.out_probs - 1e-12).all()

    def test_rejects_theta_below_one(self, base):
        with pytest.raises(ConfigurationError):
            wc_variant_weights(base, 0.5)


class TestUniform:
    def test_all_edges_equal(self, base):
        g = uniform_weights(base, 0.05)
        assert (g.out_probs == 0.05).all()

    def test_rejects_out_of_range(self, base):
        with pytest.raises(ConfigurationError):
            uniform_weights(base, 1.5)


class TestTrivalency:
    def test_values_from_menu(self, base):
        g = trivalency_weights(base, seed=0)
        assert set(np.unique(g.out_probs)) <= {0.1, 0.01, 0.001}

    def test_custom_menu(self, base):
        g = trivalency_weights(base, choices=(0.2, 0.4), seed=0)
        assert set(np.unique(g.out_probs)) <= {0.2, 0.4}

    def test_rejects_bad_menu(self, base):
        with pytest.raises(ConfigurationError):
            trivalency_weights(base, choices=(0.5, 2.0))


class TestSkewedDistributions:
    @pytest.mark.parametrize("weighter", [exponential_weights, weibull_weights])
    def test_in_sums_normalised(self, base, weighter):
        g = weighter(base, seed=3)
        nonzero = g.in_degree() > 0
        assert np.allclose(g.in_prob_sums[nonzero], 1.0)

    @pytest.mark.parametrize("weighter", [exponential_weights, weibull_weights])
    def test_probabilities_valid(self, base, weighter):
        g = weighter(base, seed=3)
        assert np.isfinite(g.out_probs).all()
        assert g.out_probs.min() >= 0.0
        assert g.out_probs.max() <= 1.0

    def test_exponential_is_skewed(self, base):
        g = exponential_weights(base, seed=3)
        # within multi-in-degree nodes, probabilities genuinely vary
        assert not g.uniform_in[g.in_degree() > 1].all()

    def test_weibull_survives_extreme_shapes(self):
        # Many edges -> many shape draws -> exercises the overflow guard.
        base = preferential_attachment(500, 8, seed=11, reciprocal=0.2)
        g = weibull_weights(base, seed=13)
        assert np.isfinite(g.out_probs).all()

    def test_exponential_rejects_bad_lambda(self, base):
        with pytest.raises(ConfigurationError):
            exponential_weights(base, lam=0.0)


class TestLTNormalisation:
    def test_sums_capped_at_one(self, base):
        g = lt_normalized_weights(uniform_weights(base, 0.9))
        assert g.in_prob_sums.max() <= 1.0 + 1e-9

    def test_compliant_weights_unchanged(self, base):
        g = wc_weights(base)
        normalised = lt_normalized_weights(g)
        assert np.allclose(g.out_probs, normalised.out_probs)


class TestReweight:
    def test_custom_function(self, base):
        g = reweight(base, lambda s, d, gr: np.full(len(s), 0.3), "const")
        assert (g.out_probs == 0.3).all()
        assert g.weight_model == "const"

    def test_structure_preserved(self, base):
        g = wc_weights(base)
        assert np.array_equal(g.out_indices, base.out_indices)
        assert np.array_equal(g.out_indptr, base.out_indptr)

    def test_rejects_wrong_length(self, base):
        with pytest.raises(ConfigurationError):
            reweight(base, lambda s, d, gr: np.ones(3), "bad")

    def test_rejects_invalid_probabilities(self, base):
        with pytest.raises(ConfigurationError):
            reweight(base, lambda s, d, gr: np.full(len(s), 2.0), "bad")
        with pytest.raises(ConfigurationError):
            reweight(base, lambda s, d, gr: np.full(len(s), np.nan), "bad")

    def test_original_graph_untouched(self, base):
        before = base.out_probs.copy()
        wc_weights(base)
        assert np.array_equal(base.out_probs, before)
