"""Chaos harness: every injected fault must degrade cleanly.

The contract under test, for each fault axis: the client gets a
well-formed response (degraded ones carry ``complete=False``
certificates), the tenant's banks are never corrupted (the next query
answers bit-identically to a server that never saw the fault), and
restarts recover from the last good snapshot — or cold-start when the
snapshot itself was the casualty.
"""

import pytest

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.serving import (
    GraphRegistry,
    QueryServer,
    ServeClient,
    ServerConfig,
    ServerFaultInjector,
)


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(150, 3, seed=1, reciprocal=0.3))


@pytest.fixture(scope="module")
def clean_answer(graph):
    """What an unfaulted server answers — the bit-identity reference."""
    with _server(graph) as server:
        _, payload = ServeClient(*server.address).query("pa", 5, tenant="alice")
    assert payload["status"] == "complete"
    return payload["seeds"]


def _server(graph, faults=None, **overrides):
    overrides.setdefault("eps", 0.4)
    overrides.setdefault("seed", 7)
    registry = GraphRegistry()
    registry.add_graph("pa", graph)
    return QueryServer(ServerConfig(**overrides), registry=registry, faults=faults)


class TestSlowHandler:
    def test_stall_past_deadline_degrades(self, graph, clean_answer):
        faults = ServerFaultInjector(
            at_request=1, mode="delay", delay_seconds=0.5, jitter=0.0, seed=0
        )
        with _server(graph, faults=faults) as server:
            client = ServeClient(*server.address)
            status, payload = client.query(
                "pa", 5, tenant="alice", deadline_seconds=0.05
            )
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["stop_reason"] == "deadline_exceeded"
            assert payload["certificate"]["complete"] is False
            assert payload["seeds"] == []
            # The fault fired once; the tenant is unharmed afterwards.
            status, retry = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert retry["seeds"] == clean_answer
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.deadline_exceeded"] == 1
            assert metrics["counters"]["serving.degraded"] == 1


class TestHandlerCrash:
    def test_crash_returns_clean_500(self, graph, clean_answer):
        faults = ServerFaultInjector(at_request=1, mode="raise")
        with _server(graph, faults=faults) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 500
            assert payload["error"] == "handler_crash"
            status, retry = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert retry["seeds"] == clean_answer


class TestWorkerCrash:
    def test_crash_before_execution_is_retried(self, graph, clean_answer):
        faults = ServerFaultInjector(at_worker=1, mode="raise")
        with _server(graph, faults=faults, query_retries=1) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert payload["status"] == "complete"
            assert payload["seeds"] == clean_answer
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.retries"] == 1
            assert metrics["counters"]["serving.worker_crashes"] == 1

    def test_crash_mid_query_recovers_bit_identically(self, graph, clean_answer):
        # The inherited rr_set axis fires *inside* session.maximize: the
        # crash leaves a half-extended bank, the session is invalidated,
        # and the retry rebuilds it from scratch.
        faults = ServerFaultInjector(at_rr_set=50, mode="raise")
        with _server(graph, faults=faults, query_retries=1) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert payload["status"] == "complete"
            assert payload["seeds"] == clean_answer
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.worker_crashes"] == 1
            assert metrics["counters"]["serving.sessions_invalidated"] == 1

    def test_retries_exhausted_returns_degraded(self, graph, clean_answer):
        faults = ServerFaultInjector(at_rr_set=50, mode="raise")
        with _server(graph, faults=faults, query_retries=0) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["stop_reason"] == "worker_crash"
            assert payload["certificate"]["complete"] is False
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.degraded"] == 1
            # The fault fired once; the rebuilt session answers cleanly.
            status, retry = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert retry["seeds"] == clean_answer


class TestTruncatedSnapshot:
    def test_refused_and_cold_started(self, graph, clean_answer, tmp_path):
        snapdir = str(tmp_path / "snaps")
        faults = ServerFaultInjector(at_snapshot=1, snapshot_truncate_bytes=32)
        with _server(graph, faults=faults, snapshot_dir=snapdir) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 200  # truncation happens after responding

        # Restart: the truncated snapshot must be refused, never half-read.
        with _server(graph, snapshot_dir=snapdir) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert payload["status"] == "complete"
            assert payload["seeds"] == clean_answer
            # Cold start: the banks were regenerated, not restored.
            assert payload["session"]["sets_generated"] > 0
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.recovery_cold_starts"] == 1
            assert "serving.sessions_restored" not in metrics["counters"]

    def test_snapshot_survivors_still_restore(self, graph, tmp_path):
        # Bob's snapshot is written after the fault fired on alice's, so a
        # restart restores bob warm while alice cold-starts.
        snapdir = str(tmp_path / "snaps")
        faults = ServerFaultInjector(at_snapshot=1, snapshot_truncate_bytes=32)
        with _server(graph, faults=faults, snapshot_dir=snapdir) as server:
            client = ServeClient(*server.address)
            client.query("pa", 5, tenant="alice")
            client.query("pa", 5, tenant="bob")

        with _server(graph, snapshot_dir=snapdir) as server:
            client = ServeClient(*server.address)
            _, bob = client.query("pa", 5, tenant="bob")
            _, alice = client.query("pa", 5, tenant="alice")
            _, metrics = client.metrics()
        assert bob["session"]["sets_generated"] == 0
        assert alice["session"]["sets_generated"] > 0
        assert metrics["counters"]["serving.sessions_restored"] == 1
        assert metrics["counters"]["serving.recovery_cold_starts"] == 1
