"""Tests for HIST (Algorithms 4, 7 and 8)."""

import math

import numpy as np
import pytest

from repro.algorithms.hist import HIST, IMSentinelPhase, SentinelSetPhase
from repro.estimation.montecarlo import estimate_spread
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_variant_weights
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def high_influence_graph():
    """A 400-node graph calibrated to strong cascades (avg RR size ~ n/5)."""
    base = preferential_attachment(400, 4, seed=9, reciprocal=0.3)
    return wc_variant_weights(base, 2.5)


class TestSentinelPhase:
    def test_returns_valid_sentinels(self, high_influence_graph, rng):
        res = SentinelSetPhase(high_influence_graph).run(
            k=20, eps1=0.15, delta1=0.005, rng=rng
        )
        assert 1 <= res.b <= 20
        assert len(res.seeds) == res.b
        assert len(set(res.seeds)) == res.b
        assert res.selection_rr_sets > 0
        assert res.total_rr_sets >= res.selection_rr_sets

    def test_max_b_caps_sentinel_size(self, high_influence_graph, rng):
        res = SentinelSetPhase(high_influence_graph).run(
            k=20, eps1=0.15, delta1=0.005, rng=rng, max_b=3
        )
        assert res.b <= 3

    def test_max_b_validation(self, high_influence_graph, rng):
        with pytest.raises(ConfigurationError):
            SentinelSetPhase(high_influence_graph).run(
                k=5, eps1=0.2, delta1=0.01, rng=rng, max_b=9
            )

    def test_sentinels_have_high_influence(self, high_influence_graph, rng):
        """The sentinel set must achieve its loose approximation target:
        at least (1 - (1-1/k)^b - eps1) of a strong seed set's spread."""
        k, eps1 = 10, 0.15
        res = SentinelSetPhase(high_influence_graph).run(
            k=k, eps1=eps1, delta1=0.005, rng=rng
        )
        spread_b = estimate_spread(
            high_influence_graph, res.seeds, num_simulations=400, seed=0
        ).mean
        # Reference: OPIM-C's k seeds as an OPT proxy.
        from repro.algorithms.opimc import OPIMC

        full = OPIMC(high_influence_graph).run(k, eps=0.1, seed=1)
        spread_k = estimate_spread(
            high_influence_graph, full.seeds, num_simulations=400, seed=0
        ).mean
        threshold = 1 - (1 - 1 / k) ** res.b - eps1
        assert spread_b >= threshold * spread_k * 0.9  # 0.9: MC slack


class TestIMSentinelPhase:
    def test_completes_seed_set(self, high_influence_graph, rng):
        sentinel = SentinelSetPhase(high_influence_graph).run(
            k=12, eps1=0.15, delta1=0.005, rng=rng
        )
        if sentinel.b >= 12:
            pytest.skip("sentinel phase already solved the instance")
        res = IMSentinelPhase(high_influence_graph).run(
            k=12,
            eps=0.3,
            sentinel_seeds=sentinel.seeds,
            eps2=0.15,
            delta2=0.005,
            rng=rng,
        )
        assert len(res.seeds) == 12
        assert len(set(res.seeds)) == 12
        assert set(sentinel.seeds) <= set(res.seeds)

    def test_validates_b_range(self, high_influence_graph, rng):
        phase = IMSentinelPhase(high_influence_graph)
        with pytest.raises(ConfigurationError):
            phase.run(5, 0.3, [], 0.15, 0.01, rng)  # b = 0
        with pytest.raises(ConfigurationError):
            phase.run(5, 0.3, [0, 1, 2, 3, 4], 0.15, 0.01, rng)  # b = k

    def test_sentinel_stopped_sets_are_small(self, high_influence_graph, rng):
        sentinel = SentinelSetPhase(high_influence_graph).run(
            k=12, eps1=0.15, delta1=0.005, rng=rng
        )
        if sentinel.b >= 12:
            pytest.skip("sentinel phase already solved the instance")
        res = IMSentinelPhase(high_influence_graph).run(
            k=12, eps=0.3, sentinel_seeds=sentinel.seeds,
            eps2=0.15, delta2=0.005, rng=rng,
        )
        # Sentinel-stopped RR sets must be smaller than unrestricted ones.
        from repro.experiments.calibration import average_rr_size

        unrestricted = average_rr_size(high_influence_graph, 200, seed=0)
        assert res.average_rr_size < 0.8 * unrestricted


class TestHIST:
    def test_end_to_end(self, high_influence_graph):
        res = HIST(high_influence_graph).run(10, eps=0.3, seed=4)
        assert len(res.seeds) == 10
        assert len(set(res.seeds)) == 10
        assert 1 <= res.extras["b"] <= 10
        assert "sentinel" in res.phases

    def test_smaller_rr_sets_than_opimc(self, high_influence_graph):
        from repro.algorithms.opimc import OPIMC

        hist = HIST(high_influence_graph).run(10, eps=0.3, seed=4)
        opim = OPIMC(high_influence_graph).run(10, eps=0.3, seed=4)
        assert hist.average_rr_size < opim.average_rr_size

    def test_seed_quality_matches_opimc(self, high_influence_graph):
        from repro.algorithms.opimc import OPIMC

        hist = HIST(high_influence_graph).run(10, eps=0.2, seed=4)
        opim = OPIMC(high_influence_graph).run(10, eps=0.2, seed=4)
        sp_h = estimate_spread(
            high_influence_graph, hist.seeds, num_simulations=400, seed=0
        )
        sp_o = estimate_spread(
            high_influence_graph, opim.seeds, num_simulations=400, seed=0
        )
        assert sp_h.mean == pytest.approx(sp_o.mean, rel=0.1)

    def test_subsim_variant_name_and_quality(self, high_influence_graph):
        algo = HIST(high_influence_graph, SubsimICGenerator)
        assert algo.name == "hist+subsim"
        res = algo.run(8, eps=0.3, seed=2)
        assert len(res.seeds) == 8

    def test_fixed_b(self, high_influence_graph):
        res = HIST(high_influence_graph, fixed_b=2).run(8, eps=0.3, seed=2)
        assert res.extras["b"] <= 2

    def test_fixed_b_validation(self, high_influence_graph):
        with pytest.raises(ConfigurationError):
            HIST(high_influence_graph, fixed_b=9).run(8, eps=0.3, seed=2)

    def test_tie_break_ablation_runs(self, high_influence_graph):
        res = HIST(
            high_influence_graph, use_out_degree_tie_break=False
        ).run(8, eps=0.3, seed=2)
        assert len(res.seeds) == 8

    def test_low_influence_graph_still_works(self, wc_graph):
        """HIST must stay correct when cascades are weak (its worst case)."""
        res = HIST(wc_graph).run(5, eps=0.4, seed=3)
        assert len(res.seeds) == 5

    def test_k_one(self, high_influence_graph):
        res = HIST(high_influence_graph).run(1, eps=0.4, seed=3)
        assert len(res.seeds) == 1
        assert res.extras["b"] == 1

    def test_phase_times_recorded(self, high_influence_graph):
        res = HIST(high_influence_graph).run(10, eps=0.3, seed=4)
        assert res.phases["sentinel"] > 0
        if res.extras["b"] < 10:
            assert res.phases["im_sentinel"] > 0

    def test_certified_bounds(self, high_influence_graph):
        res = HIST(high_influence_graph).run(10, eps=0.3, seed=4)
        if res.extras["b"] < 10:
            assert 0 <= res.lower_bound <= res.upper_bound
