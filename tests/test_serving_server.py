"""Integration tests for the query daemon (real sockets, ephemeral ports)."""

import threading

import pytest

from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import wc_weights
from repro.runtime.budget import Budget
from repro.serving import (
    GraphRegistry,
    QueryServer,
    ServeClient,
    ServerConfig,
)


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(150, 3, seed=1, reciprocal=0.3))


def make_server(graph, **overrides):
    overrides.setdefault("eps", 0.4)
    overrides.setdefault("seed", 7)
    registry = GraphRegistry()
    registry.add_graph("pa", graph)
    return QueryServer(ServerConfig(**overrides), registry=registry)


class TestEndpoints:
    def test_health_and_routing(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            status, payload = client.health()
            assert status == 200
            assert payload["graphs"] == ["pa"]
            status, payload = client._request("GET", "/nope")
            assert status == 404

    def test_complete_query(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            status, payload = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert payload["status"] == "complete"
            assert len(payload["seeds"]) == 5
            assert payload["certificate"]["complete"] is True
            assert payload["certificate"]["ratio"] > 0

    def test_unknown_graph_404(self, graph):
        with make_server(graph) as server:
            status, payload = ServeClient(*server.address).query("ghost", 3)
            assert status == 404
            assert "ghost" in payload["error"]

    def test_bad_requests_400(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            assert client.query("pa", 0)[0] == 400
            assert client._request("POST", "/query", {"graph": "pa"})[0] == 400
            assert (
                client._request(
                    "POST", "/query", {"graph": "pa", "k": 2, "eps": 3.0}
                )[0]
                == 400
            )

    def test_algorithm_override_rejected(self, graph):
        with make_server(graph) as server:
            status, payload = ServeClient(*server.address)._request(
                "POST", "/query", {"graph": "pa", "k": 2, "algorithm": "imm"}
            )
            assert status == 400
            assert "fixed by the server" in payload["error"]

    def test_metrics_endpoint_idempotent_reads(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            client.query("pa", 3, tenant="alice")
            _, first = client.metrics()
            _, second = client.metrics()
            # Merging happens on a fresh registry per read: two reads with
            # no traffic in between are identical (no double counting).
            assert first["counters"] == second["counters"]
            assert first["counters"]["serving.admitted"] == 1
            assert first["counters"]["bank.sets_generated"] > 0

    def test_report_endpoint(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            client.query("pa", 3, tenant="alice")
            status, payload = client.report()
            assert status == 200
            assert payload["spend"]["rr_sets"] > 0
            assert payload["sessions"][0]["tenant"] == "alice"
            canonical = payload["reports"]["alice/pa"]
            assert canonical["status"] == "complete"
            assert canonical["config"]["tenant"] == "alice"


class TestTenancy:
    def test_warm_reuse_same_tenant(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            _, first = client.query("pa", 5, tenant="alice")
            _, second = client.query("pa", 5, tenant="alice")
            assert first["session"]["sets_generated"] > 0
            assert second["session"]["sets_generated"] == 0
            assert second["session"]["sets_reused"] > 0
            assert second["seeds"] == first["seeds"]

    def test_tenants_are_isolated(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            _, alice = client.query("pa", 5, tenant="alice")
            _, bob = client.query("pa", 5, tenant="bob")
            # Distinct entropy: bob's banks are his own, freshly generated.
            assert bob["session"]["sets_generated"] > 0

    def test_concurrent_same_tenant_queries_serialize(self, graph):
        with make_server(graph, workers=4) as server:
            client = ServeClient(*server.address)
            results = []
            lock = threading.Lock()

            def hit():
                _, payload = client.query("pa", 4, tenant="alice")
                with lock:
                    results.append(payload)

            threads = [threading.Thread(target=hit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r["status"] == "complete" for r in results)
            seeds = {tuple(r["seeds"]) for r in results}
            assert len(seeds) == 1  # every query saw the same banks
            # Only the first query generated; the rest reused.
            generated = sorted(
                r["session"]["sets_generated"] for r in results
            )
            assert generated[:3] == [0, 0, 0]


class TestAdmission:
    def test_budget_exhaustion_sheds(self, graph):
        budget = Budget(max_rr_sets=1)
        with make_server(graph, lifetime_budget=budget) as server:
            client = ServeClient(*server.address)
            status, _ = client.query("pa", 3, tenant="alice")
            assert status == 200
            status, payload = client.query("pa", 3, tenant="alice")
            assert status == 429
            assert payload["reason"] == "budget_exhausted:rr_sets"

    def test_overload_sheds_with_429(self, graph):
        # One worker, queue of one: concurrent requests must shed.
        with make_server(graph, workers=1, max_pending=1) as server:
            client = ServeClient(*server.address)
            codes = []
            lock = threading.Lock()

            def hit(i):
                status, _ = client.query("pa", 4, tenant=f"t{i}")
                with lock:
                    codes.append(status)

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(code in (200, 429) for code in codes)
            assert 429 in codes  # the queue bound actually shed something
            assert 200 in codes  # while admitted queries still completed
            _, metrics = client.metrics()
            shed = metrics["counters"]["serving.shed"]
            admitted = metrics["counters"]["serving.admitted"]
            assert shed + admitted == 8
            assert metrics["counters"]["serving.shed_queue"] == shed


class TestDeadlines:
    def test_tight_deadline_degrades_to_partial(self, graph):
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            status, payload = client.query(
                "pa", 5, tenant="alice", deadline_seconds=1e-4
            )
            assert status == 200
            assert payload["status"] in ("partial", "degraded")
            assert payload["certificate"]["complete"] is False
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.deadline_exceeded"] >= 1

    def test_generous_deadline_completes(self, graph):
        with make_server(graph, default_deadline=60.0) as server:
            status, payload = ServeClient(*server.address).query(
                "pa", 3, tenant="alice"
            )
            assert status == 200
            assert payload["status"] == "complete"


class TestRecovery:
    def test_restart_resumes_warm_and_bit_identical(self, graph, tmp_path):
        snapdir = str(tmp_path / "snaps")
        with make_server(graph, snapshot_dir=snapdir) as server:
            client = ServeClient(*server.address)
            _, first = client.query("pa", 5, tenant="alice")

        # Restarted server, same seed + snapshot dir: warm resume.
        with make_server(graph, snapshot_dir=snapdir) as server:
            client = ServeClient(*server.address)
            _, again = client.query("pa", 5, tenant="alice")
            _, grown = client.query("pa", 8, tenant="alice")
            _, metrics = client.metrics()
        assert again["session"]["sets_generated"] == 0
        assert again["seeds"] == first["seeds"]
        assert metrics["counters"]["serving.sessions_restored"] == 1

        # A never-crashed server with the same seed gives the same answers.
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            _, c1 = client.query("pa", 5, tenant="alice")
            _, c2 = client.query("pa", 8, tenant="alice")
        assert c1["seeds"] == first["seeds"]
        assert c2["seeds"] == grown["seeds"]

    def test_stop_is_idempotent_and_graceful(self, graph):
        server = make_server(graph).start()
        client = ServeClient(*server.address)
        assert client.query("pa", 3)[0] == 200
        server.stop()
        server.stop()  # second stop is a no-op


class TestDeltaEndpoint:
    """POST /delta: one graph mutation, every warm tenant repaired."""

    def _private_graph(self):
        # /delta mutates the registry graph in place, so these tests never
        # share the module-scoped fixture
        return wc_weights(
            preferential_attachment(150, 3, seed=1, reciprocal=0.3)
        )

    def _an_edge(self, graph):
        u = next(
            i for i in range(graph.n)
            if graph.out_indptr[i + 1] > graph.out_indptr[i]
        )
        return u, int(graph.out_indices[graph.out_indptr[u]])

    def test_delta_repairs_warm_tenants(self):
        graph = self._private_graph()
        fingerprint_before = graph.fingerprint()
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            assert client.query("pa", 5, tenant="alice")[0] == 200
            assert client.query("pa", 5, tenant="bob")[0] == 200
            u, v = self._an_edge(graph)
            status, payload = client.delta("pa", deletes=[(u, v)])
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["num_changes"] == 1
            assert payload["touched_nodes"] == 1
            assert payload["delta_epoch"] == 1
            assert payload["fingerprint"] != fingerprint_before
            assert set(payload["sessions"]) == {"alice", "bob"}
            for stats in payload["sessions"].values():
                assert stats["sets_total"] > 0
            # queries keep flowing on the mutated graph
            status, answer = client.query("pa", 5, tenant="alice")
            assert status == 200
            assert answer["status"] == "complete"
            _, metrics = client.metrics()
            assert metrics["counters"]["serving.deltas_applied"] == 1

    def test_delta_on_cold_server_touches_no_sessions(self):
        graph = self._private_graph()
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            u, v = self._an_edge(graph)
            status, payload = client.delta("pa", deletes=[(u, v)])
            assert status == 200
            assert payload["sessions"] == {}

    def test_delta_validation_errors(self):
        graph = self._private_graph()
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            status, payload = client.delta("ghost", deletes=[(0, 1)])
            assert status == 404
            status, payload = client._request(
                "POST", "/delta", {"graph": "pa"}
            )
            assert status == 400
            assert "at least one" in payload["error"]
            # deleting a non-edge is rejected atomically (graph unchanged)
            epoch_before = graph.delta_epoch
            status, payload = client.delta(
                "pa", deletes=[(0, 0)]
            )
            assert status == 400
            assert graph.delta_epoch == epoch_before

    def test_delta_equivalent_to_direct_session_repair(self):
        """The served answer after /delta matches an offline session that
        applied the same delta — the endpoint adds routing, not behaviour."""
        graph = self._private_graph()
        u, v = self._an_edge(graph)
        with make_server(graph) as server:
            client = ServeClient(*server.address)
            client.query("pa", 5, tenant="alice")
            client.delta("pa", deletes=[(u, v)])
            status, served = client.query("pa", 5, tenant="alice")
            assert status == 200

        from repro.engine.session import QuerySession
        from repro.graphs.dynamic import GraphDelta
        from repro.serving.sessions import tenant_entropy

        offline_graph = wc_weights(
            preferential_attachment(150, 3, seed=1, reciprocal=0.3)
        )
        entropy = tenant_entropy(server.config.seed, "alice", "pa")
        session = QuerySession(
            offline_graph, server.config.algorithm, seed=entropy
        )
        session.maximize(5, eps=server.config.eps)
        session.apply_delta(GraphDelta(deletes=[(u, v)]))
        offline = session.maximize(5, eps=server.config.eps)
        assert served["seeds"] == offline.seeds
