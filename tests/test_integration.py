"""Cross-module integration tests.

Every registered algorithm runs end-to-end on the same graphs; principled
algorithms must agree on seed quality (they all approximate the same
optimum), and the paper's qualitative claims must hold at test scale.
"""

import numpy as np
import pytest

from repro import (
    InfluenceMaximizer,
    RRCollection,
    SubsimICGenerator,
    VanillaICGenerator,
    available_algorithms,
    estimate_spread,
    maximize_influence,
    preferential_attachment,
    wc_variant_weights,
    wc_weights,
)
from repro.algorithms.greedy_mc import GreedyMonteCarlo

PRINCIPLED = ("opim-c", "subsim", "hist", "hist+subsim", "imm", "tim+", "ssa")


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(250, 3, seed=21, reciprocal=0.3))


@pytest.fixture(scope="module")
def spreads(graph):
    """Spread of each principled algorithm's seeds on the shared graph."""
    out = {}
    for name in PRINCIPLED:
        kwargs = {"max_rr_sets": 20_000} if name in ("imm", "tim+") else {}
        res = maximize_influence(
            graph, 8, algorithm=name, eps=0.3, seed=5, **kwargs
        )
        assert len(set(res.seeds)) == 8
        out[name] = estimate_spread(
            graph, res.seeds, num_simulations=400, seed=0
        ).mean
    return out


class TestAlgorithmAgreement:
    def test_all_principled_algorithms_agree(self, spreads):
        values = list(spreads.values())
        assert max(values) <= 1.25 * min(values), spreads

    def test_all_beat_random(self, graph, spreads):
        rand = maximize_influence(graph, 8, algorithm="random", seed=5)
        rand_spread = estimate_spread(
            graph, rand.seeds, num_simulations=400, seed=0
        ).mean
        for name, spread in spreads.items():
            assert spread > rand_spread, name

    def test_rr_algorithms_match_monte_carlo_greedy(self, graph, spreads):
        """The MC greedy baseline (Kempe et al.) sets the quality bar."""
        res = GreedyMonteCarlo(graph, num_simulations=60).run(8, seed=5)
        bar = estimate_spread(graph, res.seeds, num_simulations=400, seed=0).mean
        for name in ("subsim", "hist+subsim"):
            assert spreads[name] >= 0.85 * bar, name


class TestPaperClaims:
    def test_subsim_cheaper_than_vanilla_same_distribution(self, graph):
        rng = np.random.default_rng(0)
        van, sub = VanillaICGenerator(graph), SubsimICGenerator(graph)
        sizes_v = [len(van.generate(rng)) for _ in range(3000)]
        sizes_s = [len(sub.generate(rng)) for _ in range(3000)]
        # Same distribution...
        assert np.mean(sizes_v) == pytest.approx(np.mean(sizes_s), rel=0.1)
        # ...at a fraction of the edge inspections.
        assert van.counters.edges_examined > 2 * sub.counters.edges_examined

    def test_hist_shrinks_rr_sets_in_high_influence(self):
        base = preferential_attachment(400, 4, seed=2, reciprocal=0.3)
        graph = wc_variant_weights(base, 2.5)
        hist = maximize_influence(graph, 10, algorithm="hist", eps=0.3, seed=1)
        opim = maximize_influence(graph, 10, algorithm="opim-c", eps=0.3, seed=1)
        assert hist.average_rr_size < 0.5 * opim.average_rr_size

    def test_sentinel_phase_needs_fewer_sets(self):
        base = preferential_attachment(400, 4, seed=2, reciprocal=0.3)
        graph = wc_variant_weights(base, 2.5)
        hist = maximize_influence(graph, 10, algorithm="hist", eps=0.3, seed=1)
        opim = maximize_influence(graph, 10, algorithm="opim-c", eps=0.3, seed=1)
        assert hist.extras["sentinel_rr_sets"] <= 2 * opim.num_rr_sets


class TestSharedRRSemantics:
    def test_collection_estimate_consistent_across_generators(self, graph):
        seeds = [0, 1, 2]
        estimates = []
        for gen_cls in (VanillaICGenerator, SubsimICGenerator):
            rng = np.random.default_rng(3)
            pool = RRCollection(graph.n)
            pool.extend(20_000, gen_cls(graph), rng)
            estimates.append(pool.estimate_influence(seeds))
        assert estimates[0] == pytest.approx(estimates[1], rel=0.1)


class TestFacadeSmoke:
    def test_every_registered_algorithm_runs(self, graph):
        maximizer = InfluenceMaximizer(graph)
        for name in available_algorithms():
            if name.startswith("test-"):
                continue  # artifacts of the registry test
            if name.endswith("-lt") or name == "greedy-mc":
                continue  # need LT weights / quadratic cost, covered elsewhere
            kwargs = {"max_rr_sets": 5000} if name in ("imm", "tim+") else {}
            res = maximizer.maximize(
                3, algorithm=name, eps=0.5, seed=0, **kwargs
            )
            assert len(res.seeds) == 3, name

    def test_lt_algorithms_run(self):
        from repro import exponential_weights, lt_normalized_weights

        base = preferential_attachment(150, 3, seed=1, reciprocal=0.3)
        graph = lt_normalized_weights(exponential_weights(base, seed=1))
        for name in ("opim-c-lt", "hist-lt", "imm-lt"):
            kwargs = {"max_rr_sets": 5000} if name == "imm-lt" else {}
            res = maximize_influence(
                graph, 3, algorithm=name, eps=0.5, seed=0, **kwargs
            )
            assert len(res.seeds) == 3, name
