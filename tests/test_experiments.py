"""Tests for the experiment harness: calibration, workloads, reporting."""

import numpy as np
import pytest

from repro.experiments.calibration import (
    average_rr_size,
    calibrate_uniform_ic,
    calibrate_wc_variant,
)
from repro.experiments.harness import timed_run
from repro.experiments.reporting import format_float, render_table, rows_to_csv
from repro.experiments.workloads import (
    DATASET_NAMES,
    dataset_spec,
    make_dataset,
    table2_rows,
)
from repro.graphs.generators import preferential_attachment
from repro.utils.exceptions import CalibrationError, ConfigurationError


@pytest.fixture(scope="module")
def base_graph():
    return preferential_attachment(400, 4, seed=2, reciprocal=0.3)


class TestAverageRRSize:
    def test_positive(self, wc_graph):
        assert average_rr_size(wc_graph, num_samples=50, seed=0) >= 1.0

    def test_reproducible(self, wc_graph):
        a = average_rr_size(wc_graph, num_samples=50, seed=0)
        b = average_rr_size(wc_graph, num_samples=50, seed=0)
        assert a == b

    def test_rejects_zero_samples(self, wc_graph):
        with pytest.raises(ValueError):
            average_rr_size(wc_graph, num_samples=0)


class TestCalibration:
    def test_wc_variant_hits_target(self, base_graph):
        target = 40.0
        theta, graph, achieved = calibrate_wc_variant(
            base_graph, target, num_samples=100, seed=0
        )
        assert theta >= 1.0
        assert abs(achieved - target) <= 0.35 * target

    def test_wc_variant_monotone_targets(self, base_graph):
        t_small, _, _ = calibrate_wc_variant(base_graph, 10, num_samples=80, seed=0)
        t_large, _, _ = calibrate_wc_variant(base_graph, 80, num_samples=80, seed=0)
        assert t_large > t_small

    def test_uniform_hits_target(self, base_graph):
        target = 40.0
        p, graph, achieved = calibrate_uniform_ic(
            base_graph, target, num_samples=100, seed=0
        )
        assert 0.0 < p < 1.0
        assert abs(achieved - target) <= 0.35 * target

    def test_unreachable_target_rejected(self, base_graph):
        with pytest.raises(CalibrationError):
            calibrate_wc_variant(base_graph, 10 * base_graph.n, num_samples=30)

    def test_target_below_one_rejected(self, base_graph):
        with pytest.raises(CalibrationError):
            calibrate_uniform_ic(base_graph, 0.5)


class TestWorkloads:
    def test_four_datasets(self):
        assert len(DATASET_NAMES) == 4

    def test_specs_consistent(self):
        for name in DATASET_NAMES:
            spec = dataset_spec(name)
            assert spec.name == name
            assert spec.base_n > 0

    def test_make_dataset_scales(self):
        small = make_dataset("pokec-like", scale=0.02, seed=0)
        large = make_dataset("pokec-like", scale=0.04, seed=0)
        assert large.n == 2 * small.n

    def test_undirected_datasets_symmetric(self):
        g = make_dataset("orkut-like", scale=0.02, seed=0)
        src, dst, _ = g.edges()
        pairs = set(zip(src, dst))
        assert all((v, u) in pairs for u, v in pairs)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_dataset("livejournal-like")

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            make_dataset("pokec-like", scale=0.0)

    def test_table2_rows_structure(self):
        rows = table2_rows(scale=0.02, seed=0)
        assert len(rows) == 4
        assert {"dataset", "n", "m", "paper_n", "paper_m"} <= set(rows[0])


class TestReporting:
    def test_format_float(self):
        assert format_float(3.0) == "3"
        assert format_float(0.12345) == "0.123"

    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "bb": 2.5}, {"a": 100, "bb": 0.1}])
        lines = text.strip().split("\n")
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")

    def test_render_table_title_and_empty(self):
        assert "(no rows)" in render_table([], title="t")
        assert "== t ==" in render_table([], title="t")

    def test_render_table_fixed_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_rows_to_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([{"x": 1, "y": "z"}, {"x": 2, "y": "w"}], str(path))
        content = path.read_text().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,z"

    def test_rows_to_csv_empty(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([], str(path))
        assert path.read_text() == ""


class TestHarness:
    def test_timed_run_record(self, wc_graph):
        record = timed_run(
            wc_graph, "test", "degree", 3, 0.3, seed=0, setting="s"
        )
        row = record.as_row()
        assert row["dataset"] == "test"
        assert row["algorithm"] == "degree"
        assert "spread" not in row

    def test_timed_run_with_spread(self, wc_graph):
        record = timed_run(
            wc_graph,
            "test",
            "degree",
            3,
            0.3,
            seed=0,
            evaluate_spread=True,
            num_simulations=50,
        )
        assert record.spread is not None
        assert "spread" in record.as_row()
