"""Tests for post-hoc seed-set certification."""

import math

import pytest

from repro.core.certify import certify_result
from repro.graphs.generators import preferential_attachment, star_graph
from repro.graphs.weights import wc_weights
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def graph():
    return wc_weights(preferential_attachment(200, 3, seed=6, reciprocal=0.3))


class TestCertify:
    def test_good_seeds_certify_well(self, graph):
        from repro.core.api import maximize_influence

        result = maximize_influence(graph, 5, algorithm="subsim", eps=0.2, seed=1)
        cert = certify_result(graph, result.seeds, k=5, num_rr=20_000, seed=2)
        # A properly selected set certifies close to (1 - 1/e).
        assert cert.ratio > 1 - 1 / math.e - 0.25
        assert cert.lower_bound <= cert.upper_bound
        assert cert.meets(0.3)

    def test_bad_seeds_certify_poorly(self, graph):
        # The five lowest-out-degree nodes: genuinely weak seeds.
        weak = graph.out_degree().argsort()[:5].tolist()
        cert_weak = certify_result(graph, weak, k=5, num_rr=20_000, seed=2)
        from repro.core.api import maximize_influence

        good = maximize_influence(graph, 5, algorithm="subsim", eps=0.2, seed=1)
        cert_good = certify_result(graph, good.seeds, k=5, num_rr=20_000, seed=2)
        assert cert_weak.ratio < cert_good.ratio

    def test_star_center_certifies_optimal(self):
        g = star_graph(50, center_out=True)
        cert = certify_result(g, [0], k=1, num_rr=5000, seed=0)
        # The center IS the optimum; only bound slack separates the ratio
        # from 1.
        assert cert.ratio > 0.7

    def test_upper_bound_actually_bounds_optimum(self, graph):
        from repro.core.api import maximize_influence
        from repro.estimation.montecarlo import estimate_spread

        cert = certify_result(graph, [0], k=5, num_rr=20_000, seed=3)
        strong = maximize_influence(graph, 5, algorithm="subsim", eps=0.2, seed=1)
        spread = estimate_spread(
            graph, strong.seeds, num_simulations=500, seed=0
        ).mean
        assert cert.upper_bound >= 0.95 * spread  # MC slack

    def test_duplicate_seeds_collapsed(self, graph):
        a = certify_result(graph, [0, 0, 1], k=2, num_rr=2000, seed=5)
        b = certify_result(graph, [0, 1], k=2, num_rr=2000, seed=5)
        assert a.lower_bound == b.lower_bound

    def test_validation(self, graph):
        with pytest.raises(ConfigurationError):
            certify_result(graph, [], k=2)
        with pytest.raises(ConfigurationError):
            certify_result(graph, [0], k=0)
        with pytest.raises(ConfigurationError):
            certify_result(graph, [0], k=2, num_rr=0)
        with pytest.raises(ConfigurationError):
            certify_result(graph, [0], k=2, delta=1.5)
