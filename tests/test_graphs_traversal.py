"""Tests for deterministic traversals (reachability, SCC)."""

import numpy as np
import pytest

from repro.graphs.csr import build_graph
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.graphs.traversal import (
    forward_reachable,
    is_dag,
    largest_scc_size,
    reverse_reachable,
    strongly_connected_components,
)
from repro.rrsets.vanilla import VanillaICGenerator


class TestReachability:
    def test_path_forward(self):
        g = path_graph(6)
        assert forward_reachable(g, 2) == {2, 3, 4, 5}

    def test_path_reverse(self):
        g = path_graph(6)
        assert reverse_reachable(g, 2) == {0, 1, 2}

    def test_cycle_everything(self):
        g = cycle_graph(5)
        assert forward_reachable(g, 3) == set(range(5))
        assert reverse_reachable(g, 3) == set(range(5))

    def test_star(self):
        g = star_graph(5, center_out=True)
        assert forward_reachable(g, 0) == set(range(5))
        assert reverse_reachable(g, 0) == {0}
        assert reverse_reachable(g, 3) == {0, 3}

    def test_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            forward_reachable(g, 5)
        with pytest.raises(ValueError):
            reverse_reachable(g, -1)

    def test_matches_rr_set_at_probability_one(self, rng):
        """RR set with all-live edges == deterministic reverse reachability."""
        g = preferential_attachment(80, 3, seed=3, reciprocal=0.4)
        gen = VanillaICGenerator(g)  # generator weights are all 1.0
        for target in (0, 10, 40, 79):
            assert set(gen.generate(rng, root=target)) == reverse_reachable(
                g, target
            )


class TestSCC:
    def test_cycle_single_component(self):
        comps = strongly_connected_components(cycle_graph(7))
        assert len(comps) == 1
        assert sorted(comps[0]) == list(range(7))

    def test_path_all_singletons(self):
        comps = strongly_connected_components(path_graph(5))
        assert len(comps) == 5
        assert is_dag(path_graph(5))

    def test_two_cycles_bridge(self):
        # cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3
        g = build_graph(
            5,
            [0, 1, 2, 3, 4, 2],
            [1, 2, 0, 4, 3, 3],
            [1.0] * 6,
        )
        comps = strongly_connected_components(g)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [2, 3]
        assert largest_scc_size(g) == 3
        assert not is_dag(g)

    def test_components_partition_nodes(self):
        g = preferential_attachment(200, 3, seed=5, reciprocal=0.3)
        comps = strongly_connected_components(g)
        all_nodes = sorted(n for c in comps for n in c)
        assert all_nodes == list(range(200))

    def test_pure_growth_pa_is_dag(self):
        assert is_dag(preferential_attachment(100, 3, seed=1))

    def test_reciprocal_pa_has_cycles(self):
        assert not is_dag(
            preferential_attachment(100, 3, seed=1, reciprocal=0.5)
        )

    def test_mutual_reachability_within_components(self):
        g = preferential_attachment(60, 3, seed=7, reciprocal=0.5)
        for comp in strongly_connected_components(g):
            if len(comp) < 2:
                continue
            seed_node = comp[0]
            fwd = forward_reachable(g, seed_node)
            rev = reverse_reachable(g, seed_node)
            assert set(comp) <= (fwd & rev)

    def test_deep_graph_no_recursion_limit(self):
        # Tarjan must be iterative: a 5000-node path would blow Python's
        # recursion limit in a recursive implementation.
        g = path_graph(5000)
        assert largest_scc_size(g) == 1
