"""ShardPool: persistent shard workers, chaos recovery, spill, adoption.

These tests exercise the worker runtime directly at the request level —
determinism of repeated requests, resident accumulation across requests,
journal-replay crash recovery (with and without checkpoint shortening),
and spill-to-disk transparency.  Selection equivalence against the
single-pool implementations lives in ``test_coverage_sharded.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import wc_weights
from repro.observability import MetricsRegistry
from repro.rrsets.collection import RRCollection
from repro.rrsets.fanout import shard_counts
from repro.rrsets.shardpool import ShardPool, ShardPoolError
from repro.rrsets.subsim import SubsimICGenerator


@pytest.fixture(scope="module")
def graph():
    return wc_weights(erdos_renyi(150, 4.0, seed=7))


def _generate(pool, role="r", count=120, req=0):
    """One deterministic generate request; returns the per-rank counts."""
    counts = shard_counts(count, pool.shards)
    seeds = [
        np.random.SeedSequence(99, spawn_key=(1, rank, req))
        for rank in range(pool.shards)
    ]
    pool.generate(
        role,
        counts,
        seeds,
        generator_cls=SubsimICGenerator,
        batched_mode=None,
        batch_size=16,
    )
    return counts


def _fingerprint(pool, graph, role, limits):
    """Order-sensitive digest of a role's resident shards."""
    values = np.arange(1, graph.n + 1, dtype=np.float64)
    per_rank = pool.per_set_sums(role, limits, values)
    return (
        pool.coverage_counts(role, limits).tolist(),
        [rank.tolist() for rank in per_rank],
    )


class TestDeterminism:
    def test_repeat_requests_identical(self, graph):
        fps = []
        for _ in range(2):
            with ShardPool(graph, 2) as pool:
                c0 = _generate(pool, req=0)
                c1 = _generate(pool, req=1)
                limits = [a + b for a, b in zip(c0, c1)]
                fps.append(_fingerprint(pool, graph, "r", limits))
        assert fps[0] == fps[1]

    def test_resident_accumulation(self, graph):
        with ShardPool(graph, 2) as pool:
            c0 = _generate(pool, count=60, req=0)
            c1 = _generate(pool, count=80, req=1)
            stats = pool.stats()
            total = sum(s["r"]["num_rr"] for s in stats)
            assert total == sum(c0) + sum(c1)

    def test_zero_count_rank_round_trips(self, graph):
        with ShardPool(graph, 3) as pool:
            counts = [5, 0, 3]
            seeds = [
                np.random.SeedSequence(4, spawn_key=(0, rank, 0))
                for rank in range(3)
            ]
            replies = pool.generate(
                "r", counts, seeds,
                generator_cls=SubsimICGenerator,
                batched_mode=None, batch_size=4,
            )
            assert [r["num_rr"] for r in replies] == counts

    def test_shards_must_be_positive(self, graph):
        with pytest.raises(ShardPoolError):
            ShardPool(graph, 0)


class TestCrashRecovery:
    def _run(self, graph, crash_rank=None, spill_dir=None):
        metrics = MetricsRegistry()
        with ShardPool(graph, 2, spill_dir=spill_dir, metrics=metrics) as pool:
            c0 = _generate(pool, req=0)
            if crash_rank is not None:
                pool.crash_next_generate(crash_rank)
            c1 = _generate(pool, req=1)
            limits = [a + b for a, b in zip(c0, c1)]
            fp = _fingerprint(pool, graph, "r", limits)
        return fp, metrics.value("shardpool.worker_crashes")

    def test_crash_mid_generate_bit_identical(self, graph):
        clean, crashes0 = self._run(graph)
        crashed, crashes1 = self._run(graph, crash_rank=0)
        assert crashes0 == 0 and crashes1 == 1
        assert clean == crashed

    def test_crash_recovery_with_checkpoints(self, graph, tmp_path):
        clean, _ = self._run(graph)
        crashed, crashes = self._run(
            graph, crash_rank=1, spill_dir=str(tmp_path)
        )
        assert crashes == 1
        assert clean == crashed

    def test_fresh_pool_ignores_previous_pools_checkpoints(
        self, graph, tmp_path
    ):
        # A spill dir reused across pool lifetimes holds checkpoints from
        # the dead pool.  A fresh pool must discard them — adopting one
        # would leave worker ``seq`` ahead of the empty journal and every
        # request would be misread as a replay.
        spill_dir = str(tmp_path)
        with ShardPool(
            graph, 2, spill_dir=spill_dir, checkpoint_every=1
        ) as pool:
            _generate(pool, req=0)
        with ShardPool(graph, 2, spill_dir=spill_dir) as pool:
            counts = _generate(pool, req=0)
            stats = pool.stats()
            assert sum(s["r"]["num_rr"] for s in stats) == sum(counts)
            fresh = _fingerprint(pool, graph, "r", counts)
        with ShardPool(graph, 2) as pool:
            counts = _generate(pool, req=0)
            assert fresh == _fingerprint(pool, graph, "r", counts)

    def test_crash_during_selection_recovers(self, graph):
        # A selection open at crash time is rebuilt (limits + marks) so
        # the gather after recovery matches the uncrashed run.
        results = []
        for crash in (False, True):
            with ShardPool(graph, 2) as pool:
                counts = _generate(pool, req=0)
                pool.select_begin("r", counts)
                pool.select_mark("r", 0, want_decrements=False)
                if crash:
                    pool.crash_next_generate(0)
                    _generate(pool, role="other", req=1)
                gains = pool.select_uncovered(
                    "r", np.arange(graph.n, dtype=np.int64)
                )
                covered = [c.tolist() for c in pool.select_covered("r")]
                pool.select_end("r")
                results.append((gains.tolist(), covered))
        assert results[0] == results[1]


class TestSpill:
    def test_spill_preserves_queries(self, graph, tmp_path):
        with ShardPool(graph, 2, spill_dir=str(tmp_path)) as pool:
            counts = _generate(pool, req=0)
            before = _fingerprint(pool, graph, "r", counts)
            pool.spill("r")
            stats = pool.stats()
            assert all(s["r"]["spilled"] for s in stats)
            assert before == _fingerprint(pool, graph, "r", counts)

    def test_generate_after_spill_promotes(self, graph, tmp_path):
        with ShardPool(graph, 2, spill_dir=str(tmp_path)) as pool:
            c0 = _generate(pool, req=0)
            pool.spill("r")
            c1 = _generate(pool, req=1)
            stats = pool.stats()
            total = sum(s["r"]["num_rr"] for s in stats)
            assert total == sum(c0) + sum(c1)
            assert not any(s["r"]["spilled"] for s in stats)

    def test_spill_without_dir_rejected(self, graph):
        with ShardPool(graph, 2) as pool:
            _generate(pool, req=0)
            with pytest.raises(ShardPoolError):
                pool.spill("r")


class TestAdopt:
    def test_adopted_sets_answer_queries(self, graph):
        rng = np.random.default_rng(11)
        gen = SubsimICGenerator(graph)
        sets = [gen.generate(rng) for _ in range(40)]
        counts = shard_counts(len(sets), 2)
        shards_data, start = [], 0
        reference = RRCollection(graph.n)
        for c in counts:
            chunk = sets[start:start + c]
            start += c
            nodes = np.concatenate(chunk) if chunk else np.empty(0, np.int64)
            sizes = np.array([len(s) for s in chunk], dtype=np.int64)
            shards_data.append((nodes, sizes))
            for s in chunk:
                reference.add(s)
        with ShardPool(graph, 2) as pool:
            pool.adopt("r", shards_data, SubsimICGenerator)
            np.testing.assert_array_equal(
                pool.coverage_counts("r", counts),
                reference.coverage_counts(),
            )
            seeds = [int(np.argmax(reference.coverage_counts()))]
            assert pool.coverage("r", counts, seeds) == reference.coverage(
                seeds
            )


class TestDynamicDeltas:
    """apply_delta + repair commands, including crash-replay determinism."""

    def _delta(self, graph):
        from repro.graphs.dynamic import GraphDelta

        u = next(
            i for i in range(graph.n)
            if graph.out_indptr[i + 1] > graph.out_indptr[i]
        )
        v = int(graph.out_indices[graph.out_indptr[u]])
        return GraphDelta(deletes=[(u, v)])

    def _mutate_and_repair(self, graph, crash_rank=None):
        delta = self._delta(graph)
        with ShardPool(graph, 2) as pool:
            c0 = _generate(pool, req=0)
            pool.apply_delta(delta)
            replies = pool.repair(
                "r", delta.touched_nodes(),
                entropy=99, role_key=1, epoch=1,
            )
            # the crash fires inside the next generate; the respawned
            # worker must replay apply_delta AND repair from the journal
            # before regenerating its resident sets
            if crash_rank is not None:
                pool.crash_next_generate(crash_rank)
            c1 = _generate(pool, req=1)
            limits = [a + b for a, b in zip(c0, c1)]
            fp = _fingerprint(pool, graph, "r", limits)
        return fp, replies

    def test_repair_resamples_only_dirty_sets(self, graph):
        fp_a, replies_a = self._mutate_and_repair(graph)
        fp_b, replies_b = self._mutate_and_repair(graph)
        assert sum(r["num_dirty"] for r in replies_a) > 0
        assert [r["num_dirty"] for r in replies_a] == [
            r["num_dirty"] for r in replies_b
        ]
        assert fp_a == fp_b

    def test_crashed_worker_replays_delta_and_repair(self, graph):
        clean, _ = self._mutate_and_repair(graph)
        crashed, _ = self._mutate_and_repair(graph, crash_rank=0)
        assert clean == crashed

    def test_delta_leaves_clean_role_queryable(self, graph):
        from repro.graphs.dynamic import GraphDelta

        with ShardPool(graph, 2) as pool:
            counts = _generate(pool, req=0)
            before = _fingerprint(pool, graph, "r", counts)
            # an empty dirty-node set marks nothing dirty: every resident
            # set must survive the delta broadcast + repair verbatim
            pool.apply_delta(self._delta(graph))
            replies = pool.repair(
                "r", np.empty(0, dtype=np.int64),
                entropy=99, role_key=1, epoch=1,
            )
            assert all(r["num_dirty"] == 0 for r in replies)
            assert _fingerprint(pool, graph, "r", counts) == before


def _generate_async(pool, role="r", count=120, req=0, batch_size=16):
    """Async twin of :func:`_generate`; returns (pending, counts)."""
    counts = shard_counts(count, pool.shards)
    seeds = [
        np.random.SeedSequence(99, spawn_key=(1, rank, req))
        for rank in range(pool.shards)
    ]
    pending = pool.generate_async(
        role,
        counts,
        seeds,
        generator_cls=SubsimICGenerator,
        batched_mode=None,
        batch_size=batch_size,
    )
    return pending, counts


class TestAsyncGenerate:
    """generate_async: pipelined issue, interleaving, cancel, recovery."""

    def test_async_matches_sync(self, graph):
        with ShardPool(graph, 2) as pool:
            counts = _generate(pool, req=0)
            sync = _fingerprint(pool, graph, "r", counts)
        with ShardPool(graph, 2) as pool:
            pending, counts = _generate_async(pool, req=0)
            replies = pending.collect()
            assert [len(r["sizes"]) for r in replies] == counts
            assert [r.get("delivered") for r in replies] == counts
            assert sync == _fingerprint(pool, graph, "r", counts)

    def test_interleaved_commands_see_old_prefix(self, graph):
        with ShardPool(graph, 2) as pool:
            c0 = _generate(pool, req=0)
            before = _fingerprint(pool, graph, "r", c0)
            pending, c1 = _generate_async(pool, req=1, batch_size=4)
            # Served between generation chunks: stats and reads of the
            # *pre-request* prefix, without waiting for the generate.
            stats = pool.stats()
            assert all("r" in s for s in stats)
            assert _fingerprint(pool, graph, "r", c0) == before
            replies = pending.collect()
            total = sum(len(r["sizes"]) for r in replies)
            assert total == sum(c1)

    def test_cancel_truncates_at_chunk_boundary(self, graph):
        with ShardPool(graph, 2) as pool:
            pending, counts = _generate_async(
                pool, req=0, count=400, batch_size=8
            )
            pending.cancel()
            replies = pending.collect()
            delivered = [int(r["delivered"]) for r in replies]
            assert all(
                0 <= d <= c for d, c in zip(delivered, counts)
            )
            stats = pool.stats()
            assert [s["r"]["num_rr"] for s in stats] == delivered

    def test_cancelled_request_replays_bit_identically(self, graph):
        # The journal entry of a cancelled partial is truncated to the
        # delivered count; a crashed worker replaying it must regenerate
        # the identical chunk prefix.
        with ShardPool(graph, 2) as pool:
            pending, _ = _generate_async(
                pool, req=0, count=400, batch_size=8
            )
            pending.cancel()
            replies = pending.collect()
            delivered = [int(r["delivered"]) for r in replies]
            before = _fingerprint(pool, graph, "r", delivered)
            pool.crash_next_generate(0)
            c1 = _generate(pool, role="other", req=1)
            assert sum(c1) > 0
            assert _fingerprint(pool, graph, "r", delivered) == before

    def test_cancel_after_collect_is_noop(self, graph):
        with ShardPool(graph, 2) as pool:
            pending, counts = _generate_async(pool, req=0, count=40)
            replies = pending.collect()
            pending.cancel()
            assert pending.collect() is replies
            assert [int(r["delivered"]) for r in replies] == counts

    def test_crash_during_async_recovers(self, graph):
        with ShardPool(graph, 2) as pool:
            c0 = _generate(pool, req=0)
            c1 = _generate(pool, req=1)
            limits = [a + b for a, b in zip(c0, c1)]
            clean = _fingerprint(pool, graph, "r", limits)
        metrics = MetricsRegistry()
        with ShardPool(graph, 2, metrics=metrics) as pool:
            c0 = _generate(pool, req=0)
            pool.crash_next_generate(1)
            pending, c1 = _generate_async(pool, req=1)
            replies = pending.collect()
            assert [len(r["sizes"]) for r in replies] == c1
            limits = [a + b for a, b in zip(c0, c1)]
            assert clean == _fingerprint(pool, graph, "r", limits)
        assert metrics.value("shardpool.worker_crashes") == 1


class TestJournalCompaction:
    """Checkpoint-covered journal prefixes are trimmed; recovery holds."""

    def _fill(self, pool, requests=5, count=40):
        counts = [
            _generate(pool, count=count, req=req) for req in range(requests)
        ]
        return [sum(c) for c in zip(*counts)]

    def test_compaction_trims_journal(self, graph, tmp_path):
        metrics = MetricsRegistry()
        with ShardPool(
            graph, 2, spill_dir=str(tmp_path), checkpoint_every=1,
            metrics=metrics, journal_compact_threshold=2,
        ) as pool:
            self._fill(pool)
            assert metrics.value("shardpool.journal_compactions") > 0
            assert max(pool.journal_lengths()) < 5
            assert min(pool.checkpoint_seqs()) > 0

    def test_no_compaction_without_checkpoints(self, graph):
        metrics = MetricsRegistry()
        with ShardPool(
            graph, 2, metrics=metrics, journal_compact_threshold=2
        ) as pool:
            self._fill(pool)
            assert pool.journal_lengths() == [5, 5]
            assert metrics.value("shardpool.journal_compactions") == 0

    def test_post_compaction_crash_recovery_bit_identical(
        self, graph, tmp_path
    ):
        with ShardPool(graph, 2) as pool:
            limits = self._fill(pool, requests=6)
            clean = _fingerprint(pool, graph, "r", limits)
        metrics = MetricsRegistry()
        with ShardPool(
            graph, 2, spill_dir=str(tmp_path), checkpoint_every=1,
            metrics=metrics, journal_compact_threshold=2,
        ) as pool:
            self._fill(pool)
            assert metrics.value("shardpool.journal_compactions") > 0
            pool.crash_next_generate(0)
            c5 = _generate(pool, count=40, req=5)
            limits = [
                a + b for a, b in zip(self._limits_after(pool, 5), c5)
            ]
            assert clean == _fingerprint(pool, graph, "r", limits)
        assert metrics.value("shardpool.worker_crashes") == 1

    def _limits_after(self, pool, requests, count=40):
        counts = [shard_counts(count, pool.shards) for _ in range(requests)]
        return [sum(c) for c in zip(*counts)]

    def test_compaction_during_async_collect(self, graph, tmp_path):
        metrics = MetricsRegistry()
        with ShardPool(
            graph, 2, spill_dir=str(tmp_path), checkpoint_every=1,
            metrics=metrics, journal_compact_threshold=1,
        ) as pool:
            total = [0, 0]
            for req in range(3):
                pending, counts = _generate_async(pool, req=req, count=40)
                replies = pending.collect()
                assert [len(r["sizes"]) for r in replies] == counts
                total = [a + b for a, b in zip(total, counts)]
            assert metrics.value("shardpool.journal_compactions") > 0
            stats = pool.stats()
            assert [s["r"]["num_rr"] for s in stats] == total
