"""Shared fixtures: small graphs with known structure, seeded RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.graphs.weights import (
    exponential_weights,
    uniform_weights,
    wc_weights,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def pa_graph():
    """A 300-node heavy-tailed digraph with cycles (unweighted)."""
    return preferential_attachment(300, 3, seed=1, reciprocal=0.3)


@pytest.fixture(scope="session")
def wc_graph(pa_graph):
    """The session PA graph under the weighted-cascade model."""
    return wc_weights(pa_graph)


@pytest.fixture(scope="session")
def uniform_graph(pa_graph):
    """The session PA graph with uniform IC probability 0.1."""
    return uniform_weights(pa_graph, 0.1)


@pytest.fixture(scope="session")
def skewed_graph(pa_graph):
    """The session PA graph with exponential (skewed) weights."""
    return exponential_weights(pa_graph, seed=2)


@pytest.fixture(scope="session")
def er_graph():
    """A modest Erdős–Rényi digraph under WC weights."""
    return wc_weights(erdos_renyi(200, 4.0, seed=3))


@pytest.fixture
def path10():
    """Directed path 0 -> ... -> 9 with all probabilities 1."""
    return path_graph(10)


@pytest.fixture
def cycle8():
    return cycle_graph(8)


@pytest.fixture
def star_out():
    """Star with edges 0 -> {1..7}, probability 1."""
    return star_graph(8, center_out=True)


@pytest.fixture
def star_in():
    """Star with edges {1..7} -> 0, probability 1."""
    return star_graph(8, center_out=False)


@pytest.fixture
def k5():
    return complete_graph(5)
