"""Tests for greedy max-coverage (Algorithms 1 and 6) and the Eq. 2 bound."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.greedy import max_coverage_greedy
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ConfigurationError


def collection_from(sets, n):
    c = RRCollection(n)
    for s in sets:
        c.add(s)
    return c


def brute_force_best_coverage(collection, k):
    best = 0
    for combo in itertools.combinations(range(collection.n), k):
        best = max(best, collection.coverage(combo))
    return best


class TestBasicSelection:
    def test_picks_highest_coverage_node(self):
        c = collection_from([[0], [0], [0, 1], [2]], n=4)
        res = max_coverage_greedy(c, select=1)
        assert res.seeds == [0]
        assert res.coverage == 3

    def test_marginal_not_absolute_coverage(self):
        # node 0 covers sets {0,1}; node 1 covers {0,1,2}; node 2 covers {3}.
        # After picking 1, node 2's marginal (1) beats node 0's (0).
        c = collection_from([[0, 1], [0, 1], [1], [2]], n=4)
        res = max_coverage_greedy(c, select=2)
        assert res.seeds == [1, 2]
        assert res.coverage == 4

    def test_no_reselection(self):
        c = collection_from([[0]], n=3)
        res = max_coverage_greedy(c, select=3)
        assert len(set(res.seeds)) == 3

    def test_coverage_history_shape(self):
        c = collection_from([[0], [1], [0, 1]], n=3)
        res = max_coverage_greedy(c, select=2)
        assert len(res.coverage_history) == 3
        assert res.coverage_history[0] == 0
        assert res.coverage_history[-1] == res.coverage

    def test_history_monotone_and_concave(self, wc_graph, rng):
        from repro.rrsets.vanilla import VanillaICGenerator

        c = RRCollection(wc_graph.n)
        c.extend(300, VanillaICGenerator(wc_graph), rng)
        res = max_coverage_greedy(c, select=10)
        hist = res.coverage_history
        gains = np.diff(hist)
        assert (gains >= 0).all()
        assert (np.diff(gains) <= 0).all()  # greedy gains are non-increasing

    def test_empty_pool(self):
        c = RRCollection(4)
        res = max_coverage_greedy(c, select=2)
        assert res.coverage == 0
        assert len(res.seeds) == 2

    def test_parameter_validation(self):
        c = collection_from([[0]], n=2)
        with pytest.raises(ConfigurationError):
            max_coverage_greedy(c, select=0)
        with pytest.raises(ConfigurationError):
            max_coverage_greedy(c, select=5)
        with pytest.raises(ConfigurationError):
            max_coverage_greedy(c, select=1, topk=0)


class TestApproximationGuarantee:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_greedy_beats_1_minus_1_over_e(self, data):
        n = data.draw(st.integers(3, 7))
        num_sets = data.draw(st.integers(1, 12))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=1, max_size=n, unique=True
                )
            )
            for _ in range(num_sets)
        ]
        k = data.draw(st.integers(1, n - 1))
        c = collection_from(sets, n)
        res = max_coverage_greedy(c, select=k)
        best = brute_force_best_coverage(c, k)
        assert res.coverage >= (1 - 1 / np.e) * best - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_upper_bound_dominates_optimum(self, data):
        n = data.draw(st.integers(3, 7))
        num_sets = data.draw(st.integers(1, 12))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=1, max_size=n, unique=True
                )
            )
            for _ in range(num_sets)
        ]
        k = data.draw(st.integers(1, n - 1))
        c = collection_from(sets, n)
        res = max_coverage_greedy(c, select=k, topk=k)
        best = brute_force_best_coverage(c, k)
        assert res.upper_bound_coverage >= best - 1e-9

    def test_upper_bound_at_least_achieved_coverage(self, wc_graph, rng):
        from repro.rrsets.vanilla import VanillaICGenerator

        c = RRCollection(wc_graph.n)
        c.extend(200, VanillaICGenerator(wc_graph), rng)
        res = max_coverage_greedy(c, select=5)
        assert res.upper_bound_coverage >= res.coverage

    def test_upper_bound_disabled(self):
        c = collection_from([[0]], n=2)
        res = max_coverage_greedy(c, select=1, track_upper_bound=False)
        assert res.upper_bound_coverage == float("inf")


class TestTieBreak:
    def test_out_degree_breaks_ties(self):
        # nodes 0 and 1 both cover one set; node 1 has larger out-degree.
        c = collection_from([[0], [1]], n=3)
        out_degree = np.array([1, 5, 0])
        res = max_coverage_greedy(c, select=1, out_degree=out_degree)
        assert res.seeds == [0] or res.seeds == [1]
        assert res.seeds == [1]

    def test_no_tie_break_prefers_smallest_id(self):
        c = collection_from([[0], [1]], n=3)
        res = max_coverage_greedy(c, select=1)
        assert res.seeds == [0]

    def test_tie_break_does_not_override_gain(self):
        c = collection_from([[0], [0], [1]], n=3)
        out_degree = np.array([0, 100, 0])
        res = max_coverage_greedy(c, select=1, out_degree=out_degree)
        assert res.seeds == [0]  # higher gain wins regardless of degree


class TestExcludedNodes:
    def test_excluded_never_selected(self):
        c = collection_from([[0], [0], [1]], n=3)
        res = max_coverage_greedy(c, select=2, excluded=[0])
        assert 0 not in res.seeds

    def test_exclusion_with_zero_gains(self):
        # All sets covered initially: every gain is 0; the excluded node
        # must still never appear even as a filler pick.
        c = collection_from([[0], [1]], n=4)
        initial = np.array([True, True])
        res = max_coverage_greedy(
            c, select=3, initial_covered=initial, excluded=[2]
        )
        assert 2 not in res.seeds
        assert len(set(res.seeds)) == 3

    def test_select_bounded_by_non_excluded(self):
        c = collection_from([[0]], n=3)
        with pytest.raises(ConfigurationError):
            max_coverage_greedy(c, select=3, excluded=[1])

    def test_upper_bound_unaffected_when_excluded_gain_zero(self):
        # Excluded node's sets are initially covered -> identical Eq. 2.
        c = collection_from([[0], [0, 1], [2]], n=4)
        initial = c.covered_mask([0])
        with_excl = max_coverage_greedy(
            c, select=2, topk=2, initial_covered=initial, excluded=[0]
        )
        without = max_coverage_greedy(
            c, select=2, topk=2, initial_covered=initial
        )
        assert with_excl.upper_bound_coverage == without.upper_bound_coverage


class TestInitialCovered:
    def test_initially_covered_sets_excluded_from_gains(self):
        c = collection_from([[0], [0, 1], [1]], n=3)
        initial = np.array([True, True, False])
        res = max_coverage_greedy(c, select=1, initial_covered=initial)
        assert res.seeds == [1]
        assert res.coverage == 3  # 2 initial + 1 new
        assert res.coverage_history[0] == 2

    def test_wrong_mask_length_rejected(self):
        c = collection_from([[0]], n=2)
        with pytest.raises(ConfigurationError):
            max_coverage_greedy(
                c, select=1, initial_covered=np.array([True, False])
            )

    def test_all_covered_initially(self):
        c = collection_from([[0], [1]], n=3)
        initial = np.array([True, True])
        res = max_coverage_greedy(c, select=2, initial_covered=initial)
        assert res.coverage == 2
        assert res.coverage_history == [2, 2, 2]

    def test_matches_manual_removal(self, wc_graph, rng):
        """initial_covered == physically removing those RR sets."""
        from repro.rrsets.vanilla import VanillaICGenerator

        c = RRCollection(wc_graph.n)
        c.extend(300, VanillaICGenerator(wc_graph), rng)
        sentinel = [0, 1, 2]
        mask = c.covered_mask(sentinel)

        res_mask = max_coverage_greedy(c, select=4, initial_covered=mask)

        kept = RRCollection(wc_graph.n)
        for rr_id, rr in enumerate(c.rr_sets):
            if not mask[rr_id]:
                kept.add(rr)
        res_removed = max_coverage_greedy(kept, select=4)

        assert res_mask.seeds == res_removed.seeds
        assert res_mask.coverage == res_removed.coverage + int(mask.sum())
