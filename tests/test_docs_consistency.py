"""Docs-code consistency: names the documentation promises must exist."""

import re
from pathlib import Path

import pytest

import repro
from repro.core.registry import available_algorithms

REPO_ROOT = Path(__file__).resolve().parents[1]


def read(path):
    return (REPO_ROOT / path).read_text()


class TestReadme:
    def test_registry_names_in_readme_exist(self):
        text = read("README.md")
        names = set(available_algorithms())
        # Every backticked token that looks like a registry name must
        # actually be registered.
        for token in re.findall(r"`([a-z][a-z0-9+-]*)`", text):
            if token in ("pip", "python", "pytest", "repro", "numpy"):
                continue
            if "-" in token or "+" in token:
                candidates = {t.strip() for t in token.split(",")}
                for cand in candidates:
                    if cand in names:
                        continue
            # Only enforce for tokens that *look like* algorithm ids.
            if token in {
                "subsim", "hist", "opim-c", "imm", "ssa", "d-ssa", "tim+",
                "hist+subsim", "greedy-mc", "degree", "degree-discount",
                "random", "pagerank", "borgs-ris", "opim-c-lt", "hist-lt",
                "imm-lt",
            }:
                assert token in names, token

    def test_quickstart_snippet_imports_exist(self):
        text = read("README.md")
        block = re.search(r"```python\n(.*?)```", text, re.S).group(1)
        for name in re.findall(r"from repro import \(?([^)\n]+)", block):
            for symbol in name.split(","):
                symbol = symbol.strip()
                if symbol:
                    assert hasattr(repro, symbol), symbol

    def test_documented_example_files_exist(self):
        text = read("README.md")
        for match in re.findall(r"examples/(\w+)\.py", text):
            assert (REPO_ROOT / "examples" / f"{match}.py").exists(), match


class TestDesignAndExperiments:
    def test_design_lists_every_benchmark_file(self):
        text = read("DESIGN.md")
        for match in re.findall(r"benchmarks/(test_\w+)\.py", text):
            assert (REPO_ROOT / "benchmarks" / f"{match}.py").exists(), match

    def test_experiments_md_bench_names_exist(self):
        text = read("EXPERIMENTS.md")
        bench_dir = REPO_ROOT / "benchmarks"
        bench_sources = "\n".join(
            p.read_text() for p in bench_dir.glob("test_*.py")
        )
        for match in re.findall(r"`(test_\w+)`", text):
            # Accept either a test function name or a benchmark file name.
            assert match in bench_sources or (
                bench_dir / f"{match}.py"
            ).exists(), match

    def test_api_doc_mentions_every_registry_name(self):
        text = read("docs/API.md")
        for name in available_algorithms():
            if name.startswith("test-"):
                continue  # registered by the test suite itself
            assert name in text, name


class TestPackageMetadata:
    def test_version_attribute(self):
        assert re.match(r"\d+\.\d+\.\d+", repro.__version__)

    def test_all_exports_resolve(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol
