"""Tests for the RR-set collection and its inverted index."""

import numpy as np
import pytest

from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator


def manual_collection():
    c = RRCollection(5)
    c.add([0, 1])
    c.add([2])
    c.add([1, 2, 3])
    return c


class TestBasics:
    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            RRCollection(0)

    def test_len_and_sizes(self):
        c = manual_collection()
        assert len(c) == 3
        assert c.num_rr == 3
        assert c.total_size == 6
        assert c.average_size() == 2.0

    def test_empty_average(self):
        assert RRCollection(3).average_size() == 0.0

    def test_add_returns_sequential_ids(self):
        c = RRCollection(4)
        assert c.add([0]) == 0
        assert c.add([1]) == 1


class TestInvertedIndex:
    def test_coverage_counts(self):
        c = manual_collection()
        assert list(c.coverage_counts()) == [1, 2, 2, 1, 0]

    def test_node_to_rrs(self):
        c = manual_collection()
        assert c.node_to_rrs[1] == [0, 2]
        assert c.node_to_rrs[4] == []


class TestCoverage:
    def test_single_node(self):
        c = manual_collection()
        assert c.coverage([1]) == 2

    def test_union_not_double_counted(self):
        c = manual_collection()
        assert c.coverage([1, 2]) == 3  # set 2 contains both, counted once

    def test_empty_seed_set(self):
        assert manual_collection().coverage([]) == 0

    def test_covered_mask(self):
        mask = manual_collection().covered_mask([0])
        assert list(mask) == [True, False, False]

    def test_estimate_influence(self):
        c = manual_collection()
        # n * coverage / theta = 5 * 2 / 3
        assert c.estimate_influence([1]) == pytest.approx(10 / 3)

    def test_estimate_on_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            RRCollection(3).estimate_influence([0])


class TestExtend:
    def test_extend_generates_count(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        c.extend(25, VanillaICGenerator(wc_graph), rng)
        assert c.num_rr == 25

    def test_extend_to_idempotent(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        gen = VanillaICGenerator(wc_graph)
        c.extend_to(30, gen, rng)
        c.extend_to(10, gen, rng)  # already larger: no-op
        assert c.num_rr == 30

    def test_negative_count_rejected(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        with pytest.raises(ValueError):
            c.extend(-1, VanillaICGenerator(wc_graph), rng)

    def test_index_consistent_after_extend(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        c.extend(50, VanillaICGenerator(wc_graph), rng)
        # node_to_rrs must exactly invert rr_sets
        for rr_id, rr in enumerate(c.rr_sets):
            for node in rr:
                assert rr_id in c.node_to_rrs[node]
        assert sum(len(lst) for lst in c.node_to_rrs) == c.total_size

    def test_extend_with_stop_mask(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        stop = np.ones(wc_graph.n, dtype=bool)
        c.extend(20, VanillaICGenerator(wc_graph), rng, stop_mask=stop)
        assert all(len(rr) == 1 for rr in c.rr_sets)


class TestDirtySetOps:
    """sets_touching + replace_sets — the repair substrate."""

    def _pool(self, wc_graph, count=60, seed=4):
        c = RRCollection(wc_graph.n)
        c.extend(count, VanillaICGenerator(wc_graph), np.random.default_rng(seed))
        return c

    def test_sets_touching_matches_naive_scan(self, wc_graph):
        c = self._pool(wc_graph)
        nodes = np.array([0, 3, 17, wc_graph.n - 1])
        naive = [
            rr_id
            for rr_id, rr in enumerate(c.rr_sets)
            if set(rr) & set(nodes.tolist())
        ]
        got = c.sets_touching(nodes)
        np.testing.assert_array_equal(got, naive)
        assert (np.diff(got) > 0).all()  # ascending, no duplicates

    def test_sets_touching_empty_inputs(self, wc_graph):
        c = self._pool(wc_graph)
        assert len(c.sets_touching(np.empty(0, dtype=np.int64))) == 0
        assert len(RRCollection(5).sets_touching(np.array([1]))) == 0

    def test_sets_touching_out_of_range_rejected(self, wc_graph):
        c = self._pool(wc_graph)
        with pytest.raises(IndexError):
            c.sets_touching(np.array([wc_graph.n]))
        with pytest.raises(IndexError):
            c.sets_touching(np.array([-1]))

    def test_replace_sets_rewrites_only_targets(self, wc_graph):
        c = self._pool(wc_graph)
        before = [np.array(c.set_nodes(i)) for i in range(c.num_rr)]
        ids = np.array([3, 10, 41])
        replacements = [np.array([1, 2]), np.array([7]), np.array([0, 5, 9])]
        c.replace_sets(
            ids,
            np.concatenate(replacements),
            np.array([len(r) for r in replacements]),
        )
        assert c.num_rr == len(before)
        for i in range(c.num_rr):
            want = dict(zip(ids.tolist(), replacements)).get(i, before[i])
            np.testing.assert_array_equal(c.set_nodes(i), want)

    def test_replace_sets_updates_coverage_and_index(self, wc_graph):
        c = self._pool(wc_graph)
        ids = np.array([0, 25])
        c.replace_sets(ids, np.array([2, 4, 4]), np.array([2, 1]))
        naive = np.zeros(c.n, dtype=np.int64)
        for i in range(c.num_rr):
            naive[c.set_nodes(i)] += 1
        np.testing.assert_array_equal(c.coverage_counts(), naive)
        # the inverted index is rebuilt lazily and must agree
        np.testing.assert_array_equal(
            c.rrs_containing(4), sorted(set(c.rrs_containing(4)))
        )
        assert 0 in c.rrs_containing(2)

    def test_replace_sets_shape_mismatch_rejected(self, wc_graph):
        c = self._pool(wc_graph)
        with pytest.raises(ValueError):
            c.replace_sets(np.array([1, 2]), np.array([0]), np.array([1]))

    def test_replace_sets_empty_is_noop(self, wc_graph):
        c = self._pool(wc_graph)
        before = c.coverage_counts().copy()
        c.replace_sets(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        np.testing.assert_array_equal(c.coverage_counts(), before)


class TestJournal:
    def test_sequential_units_replay_bit_identically(self, wc_graph):
        gen = VanillaICGenerator(wc_graph)
        journal = []
        c = RRCollection(wc_graph.n)
        c.extend(20, gen, np.random.default_rng(9), journal=journal)
        assert [e["start"] for e in journal] == list(range(20))
        assert all(
            e["count"] == e["requested"] == 1 and e["mode"] == "seq"
            for e in journal
        )
        for entry in journal:
            rng = np.random.default_rng(0)
            rng.bit_generator.state = entry["state"]
            replayed = gen.generate(rng)
            np.testing.assert_array_equal(
                np.sort(np.asarray(replayed)),
                np.sort(c.set_nodes(entry["start"])),
            )

    def test_batched_units_replay_bit_identically(self, wc_graph):
        from repro.rrsets.subsim import SubsimICGenerator

        gen = SubsimICGenerator(wc_graph)
        gen.batch_size = 16
        journal = []
        c = RRCollection(wc_graph.n)
        c.extend(50, gen, np.random.default_rng(9), journal=journal)
        assert journal and all(e["mode"] == "batch" for e in journal)
        assert sum(e["count"] for e in journal) == 50
        entry = journal[0]
        rng = np.random.default_rng(0)
        rng.bit_generator.state = entry["state"]
        nodes, sizes = gen.generate_batch(rng, entry["count"])
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        for j in range(entry["count"]):
            np.testing.assert_array_equal(
                nodes[bounds[j]:bounds[j + 1]],
                c.set_nodes(entry["start"] + j),
            )
