"""Tests for the RR-set collection and its inverted index."""

import numpy as np
import pytest

from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator


def manual_collection():
    c = RRCollection(5)
    c.add([0, 1])
    c.add([2])
    c.add([1, 2, 3])
    return c


class TestBasics:
    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            RRCollection(0)

    def test_len_and_sizes(self):
        c = manual_collection()
        assert len(c) == 3
        assert c.num_rr == 3
        assert c.total_size == 6
        assert c.average_size() == 2.0

    def test_empty_average(self):
        assert RRCollection(3).average_size() == 0.0

    def test_add_returns_sequential_ids(self):
        c = RRCollection(4)
        assert c.add([0]) == 0
        assert c.add([1]) == 1


class TestInvertedIndex:
    def test_coverage_counts(self):
        c = manual_collection()
        assert list(c.coverage_counts()) == [1, 2, 2, 1, 0]

    def test_node_to_rrs(self):
        c = manual_collection()
        assert c.node_to_rrs[1] == [0, 2]
        assert c.node_to_rrs[4] == []


class TestCoverage:
    def test_single_node(self):
        c = manual_collection()
        assert c.coverage([1]) == 2

    def test_union_not_double_counted(self):
        c = manual_collection()
        assert c.coverage([1, 2]) == 3  # set 2 contains both, counted once

    def test_empty_seed_set(self):
        assert manual_collection().coverage([]) == 0

    def test_covered_mask(self):
        mask = manual_collection().covered_mask([0])
        assert list(mask) == [True, False, False]

    def test_estimate_influence(self):
        c = manual_collection()
        # n * coverage / theta = 5 * 2 / 3
        assert c.estimate_influence([1]) == pytest.approx(10 / 3)

    def test_estimate_on_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            RRCollection(3).estimate_influence([0])


class TestExtend:
    def test_extend_generates_count(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        c.extend(25, VanillaICGenerator(wc_graph), rng)
        assert c.num_rr == 25

    def test_extend_to_idempotent(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        gen = VanillaICGenerator(wc_graph)
        c.extend_to(30, gen, rng)
        c.extend_to(10, gen, rng)  # already larger: no-op
        assert c.num_rr == 30

    def test_negative_count_rejected(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        with pytest.raises(ValueError):
            c.extend(-1, VanillaICGenerator(wc_graph), rng)

    def test_index_consistent_after_extend(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        c.extend(50, VanillaICGenerator(wc_graph), rng)
        # node_to_rrs must exactly invert rr_sets
        for rr_id, rr in enumerate(c.rr_sets):
            for node in rr:
                assert rr_id in c.node_to_rrs[node]
        assert sum(len(lst) for lst in c.node_to_rrs) == c.total_size

    def test_extend_with_stop_mask(self, wc_graph, rng):
        c = RRCollection(wc_graph.n)
        stop = np.ones(wc_graph.n, dtype=bool)
        c.extend(20, VanillaICGenerator(wc_graph), rng, stop_mask=stop)
        assert all(len(rr) == 1 for rr in c.rr_sets)
