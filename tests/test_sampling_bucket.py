"""Tests for the general-probability bucket samplers (paper Sec. 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.bucket import BucketSampler, IndexedBucketSampler

SAMPLERS = [BucketSampler, IndexedBucketSampler]


@pytest.mark.parametrize("cls", SAMPLERS)
class TestStructure:
    def test_empty_probs(self, cls, rng):
        sampler = cls([])
        assert sampler.sample(rng) == []

    def test_all_zero(self, cls, rng):
        sampler = cls([0.0, 0.0, 0.0])
        assert all(sampler.sample(rng) == [] for _ in range(50))

    def test_all_one(self, cls, rng):
        sampler = cls([1.0] * 5)
        for _ in range(20):
            assert sorted(sampler.sample(rng)) == [0, 1, 2, 3, 4]

    def test_indices_unique_in_range(self, cls, rng):
        probs = np.linspace(0.9, 0.01, 17)
        rng2 = np.random.default_rng(5)
        rng2.shuffle(probs)
        sampler = cls(probs)
        for _ in range(300):
            out = sampler.sample(rng)
            assert len(out) == len(set(out))
            assert all(0 <= i < 17 for i in out)

    def test_mu_attribute(self, cls, rng):
        sampler = cls([0.5, 0.25])
        assert sampler.mu == pytest.approx(0.75)

    def test_rejects_invalid_probs(self, cls, rng):
        with pytest.raises(ValueError):
            cls([0.5, 1.5])
        with pytest.raises(ValueError):
            cls([-0.1])
        with pytest.raises(ValueError):
            cls(np.ones((2, 2)))


@pytest.mark.parametrize("cls", SAMPLERS)
class TestDistribution:
    def test_marginal_inclusion(self, cls, rng):
        probs = np.array([0.9, 0.5, 0.3, 0.12, 0.04, 0.007, 0.65, 0.2])
        sampler = cls(probs)
        trials = 30_000
        counts = np.zeros(len(probs))
        for _ in range(trials):
            for i in sampler.sample(rng):
                counts[i] += 1
        freqs = counts / trials
        assert np.all(np.abs(freqs - probs) < 0.012)

    def test_independence_of_pairs(self, cls, rng):
        probs = np.array([0.6, 0.4, 0.25, 0.1])
        sampler = cls(probs)
        trials = 30_000
        both = 0
        for _ in range(trials):
            out = set(sampler.sample(rng))
            if 0 in out and 2 in out:
                both += 1
        assert abs(both / trials - 0.6 * 0.25) < 0.012

    def test_expected_size_is_mu(self, cls, rng):
        probs = np.full(40, 0.05)
        sampler = cls(probs)
        sizes = [len(sampler.sample(rng)) for _ in range(20_000)]
        assert abs(np.mean(sizes) - 2.0) < 0.06

    def test_single_element(self, cls, rng):
        sampler = cls([0.35])
        hits = sum(bool(sampler.sample(rng)) for _ in range(30_000))
        assert abs(hits / 30_000 - 0.35) < 0.012


def test_indexed_and_plain_agree(rng):
    """Both samplers realise the same subset distribution."""
    probs = np.array([0.8, 0.45, 0.2, 0.1, 0.03, 0.6])
    plain = BucketSampler(probs)
    indexed = IndexedBucketSampler(probs)
    trials = 30_000
    freq = {}
    for sampler, key in ((plain, 0), (indexed, 1)):
        counts = np.zeros(len(probs))
        for _ in range(trials):
            for i in sampler.sample(rng):
                counts[i] += 1
        freq[key] = counts / trials
    assert np.all(np.abs(freq[0] - freq[1]) < 0.015)


@settings(max_examples=60, deadline=None)
@given(
    probs=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=40),
    seed=st.integers(0, 2**31),
    indexed=st.booleans(),
)
def test_bucket_structural_invariants(probs, seed, indexed):
    rng = np.random.default_rng(seed)
    cls = IndexedBucketSampler if indexed else BucketSampler
    sampler = cls(probs)
    out = sampler.sample(rng)
    assert len(out) == len(set(out))
    for i in out:
        assert 0 <= i < len(probs)
        assert probs[i] > 0.0  # zero-probability elements never sampled
    must_have = {i for i, p in enumerate(probs) if p == 1.0}
    assert must_have <= set(out)
