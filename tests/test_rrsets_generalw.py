"""Equivalence tests for the general-weight batched kernels.

Mirrors ``test_rrsets_batched.py`` for the two kernels that close the
fast-path matrix: the bucket-skipping SUBSIM kernel on skewed (non-uniform)
in-probabilities and the level-synchronous LT kernel.  Batched pools are
not bit-identical to sequential pools (different draw order) but must be
distributionally identical, honor sentinel semantics, account honestly,
and reproduce exactly run-to-run.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graphs.weights import lt_normalized_weights, wc_weights
from repro.rrsets.collection import RRCollection
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.budget import Budget
from repro.runtime.control import RunControl
from repro.sampling.precompute import (
    lt_alias_tables,
    sorted_segments,
    uniform_arrays,
)
from repro.utils.exceptions import (
    ConfigurationError,
    ExecutionInterrupted,
    GraphFormatError,
)

scipy_stats = pytest.importorskip("scipy.stats")


@pytest.fixture(scope="module")
def lt_graph(pa_graph):
    """The session PA graph with LT-normalised WC weights."""
    return lt_normalized_weights(wc_weights(pa_graph))


def _sizes(graph, cls, count, seed, batch_size=1, workers=1, stop_mask=None,
           **kwargs):
    gen = cls(graph, **kwargs)
    gen.batch_size = batch_size
    gen.workers = workers
    pool = RRCollection(graph.n)
    pool.extend(count, gen, np.random.default_rng(seed), stop_mask=stop_mask)
    return pool, gen


class TestSkewedDistributionalEquivalence:
    """Batched SUBSIM on skewed weights vs the sequential samplers."""

    @pytest.mark.parametrize("general_mode", ["sorted", "bucket"])
    def test_ks_sizes_match_sequential(self, skewed_graph, general_mode):
        seq, _ = _sizes(skewed_graph, SubsimICGenerator, 1200, seed=7,
                        general_mode=general_mode)
        bat, _ = _sizes(skewed_graph, SubsimICGenerator, 1200, seed=701,
                        batch_size=128)
        stat = scipy_stats.ks_2samp(seq.set_sizes(), bat.set_sizes())
        assert stat.pvalue > 1e-3, (
            f"KS p={stat.pvalue:.2e}: batched skewed kernel diverged from "
            f"sequential {general_mode} sampler "
            f"(seq mean {seq.set_sizes().mean():.2f}, "
            f"bat mean {bat.set_sizes().mean():.2f})"
        )

    def test_ks_matches_vanilla_reference(self, skewed_graph):
        # Vanilla per-edge coins are the ground-truth IC sampler; the
        # skewed fast path must agree with it, not just with SUBSIM.
        seq, _ = _sizes(skewed_graph, VanillaICGenerator, 1200, seed=13)
        bat, _ = _sizes(skewed_graph, SubsimICGenerator, 1200, seed=1301,
                        batch_size=128)
        stat = scipy_stats.ks_2samp(seq.set_sizes(), bat.set_sizes())
        assert stat.pvalue > 1e-3

    def test_counter_parity_with_sequential(self, skewed_graph):
        seq, g1 = _sizes(skewed_graph, SubsimICGenerator, 2000, seed=11)
        bat, g2 = _sizes(skewed_graph, SubsimICGenerator, 2000, seed=1101,
                         batch_size=256)
        assert bat.set_sizes().mean() == pytest.approx(
            seq.set_sizes().mean(), rel=0.15
        )
        # Field-for-field counter semantics: same expected edge traffic
        # and RNG consumption as the sequential sorted-mode sampler.
        assert g2.counters.edges_examined == pytest.approx(
            g1.counters.edges_examined, rel=0.2
        )
        assert g2.counters.rng_draws == pytest.approx(
            g1.counters.rng_draws, rel=0.2
        )


class TestLTDistributionalEquivalence:
    def test_ks_sizes_match_sequential(self, lt_graph):
        seq, _ = _sizes(lt_graph, LTGenerator, 1500, seed=7)
        bat, _ = _sizes(lt_graph, LTGenerator, 1500, seed=701,
                        batch_size=128)
        stat = scipy_stats.ks_2samp(seq.set_sizes(), bat.set_sizes())
        assert stat.pvalue > 1e-3, (
            f"KS p={stat.pvalue:.2e}: batched LT walk diverged "
            f"(seq mean {seq.set_sizes().mean():.2f}, "
            f"bat mean {bat.set_sizes().mean():.2f})"
        )

    def test_mean_size_close(self, lt_graph):
        seq, _ = _sizes(lt_graph, LTGenerator, 2000, seed=11)
        bat, _ = _sizes(lt_graph, LTGenerator, 2000, seed=1101,
                        batch_size=256)
        assert bat.set_sizes().mean() == pytest.approx(
            seq.set_sizes().mean(), rel=0.15
        )

    def test_walk_sets_are_paths(self, lt_graph):
        # Each LT RR set is one backward walk: nodes are distinct and every
        # consecutive pair is joined by an in-edge of the earlier node.
        pool, _ = _sizes(lt_graph, LTGenerator, 200, seed=3, batch_size=64)
        indptr, indices = lt_graph.in_indptr, lt_graph.in_indices
        for rr in pool.rr_sets:
            nodes = rr.tolist()
            assert len(set(nodes)) == len(nodes)
            for a, b in zip(nodes, nodes[1:]):
                assert b in indices[indptr[a]: indptr[a + 1]]

    def test_default_mode_bit_identical_to_sequential_loop(self, lt_graph):
        gen = LTGenerator(lt_graph)
        pool = RRCollection(lt_graph.n)
        pool.extend(50, gen, np.random.default_rng(99))
        gen2 = LTGenerator(lt_graph)
        rng = np.random.default_rng(99)
        expected = [gen2.generate(rng) for _ in range(50)]
        for i, rr in enumerate(expected):
            assert np.array_equal(pool.set_nodes(i), rr)
        assert gen.counters.rng_draws == gen2.counters.rng_draws


class TestStopMask:
    @pytest.mark.parametrize(
        "cls,fixture",
        [(SubsimICGenerator, "skewed_graph"), (LTGenerator, "lt_graph")],
        ids=["subsim-skewed", "lt"],
    )
    def test_all_sentinels_stop_immediately(self, cls, fixture, request):
        graph = request.getfixturevalue(fixture)
        stop = np.ones(graph.n, dtype=bool)
        pool, gen = _sizes(graph, cls, 60, seed=5, batch_size=32,
                           stop_mask=stop)
        assert (pool.set_sizes() == 1).all()
        assert gen.counters.sentinel_hits == 60

    def test_partial_sentinels_truncate_lt(self, lt_graph):
        hub = int(np.argmax(lt_graph.out_degree()))
        stop = np.zeros(lt_graph.n, dtype=bool)
        stop[hub] = True
        pool, gen = _sizes(lt_graph, LTGenerator, 400, seed=9,
                           batch_size=64, stop_mask=stop)
        contains_hub = sum(hub in set(rr.tolist()) for rr in pool.rr_sets)
        assert gen.counters.sentinel_hits == contains_hub
        assert 0 < contains_hub < 400

    def test_partial_sentinels_truncate_skewed(self, skewed_graph):
        hub = int(np.argmax(skewed_graph.out_degree()))
        stop = np.zeros(skewed_graph.n, dtype=bool)
        stop[hub] = True
        pool, gen = _sizes(skewed_graph, SubsimICGenerator, 400, seed=9,
                           batch_size=64, stop_mask=stop)
        contains_hub = sum(hub in set(rr.tolist()) for rr in pool.rr_sets)
        assert gen.counters.sentinel_hits == contains_hub


class TestDeterminism:
    @pytest.mark.parametrize(
        "cls,fixture",
        [(SubsimICGenerator, "skewed_graph"), (LTGenerator, "lt_graph")],
        ids=["subsim-skewed", "lt"],
    )
    def test_batched_run_to_run_identical(self, cls, fixture, request):
        graph = request.getfixturevalue(fixture)
        p1, g1 = _sizes(graph, cls, 300, seed=21, batch_size=64)
        p2, g2 = _sizes(graph, cls, 300, seed=21, batch_size=64)
        assert np.array_equal(p1.rr_nodes, p2.rr_nodes)
        assert np.array_equal(p1.set_sizes(), p2.set_sizes())
        assert g1.counters.edges_examined == g2.counters.edges_examined
        assert g1.counters.rng_draws == g2.counters.rng_draws

    def test_lt_multiprocess_run_to_run_identical(self, lt_graph):
        p1, g1 = _sizes(lt_graph, LTGenerator, 200, seed=33,
                        batch_size=32, workers=2)
        p2, g2 = _sizes(lt_graph, LTGenerator, 200, seed=33,
                        batch_size=32, workers=2)
        assert np.array_equal(p1.rr_nodes, p2.rr_nodes)
        assert g1.counters.rng_draws == g2.counters.rng_draws

    def test_skewed_multiprocess_run_to_run_identical(self, skewed_graph):
        p1, _ = _sizes(skewed_graph, SubsimICGenerator, 200, seed=33,
                       batch_size=32, workers=2)
        p2, _ = _sizes(skewed_graph, SubsimICGenerator, 200, seed=33,
                       batch_size=32, workers=2)
        assert np.array_equal(p1.rr_nodes, p2.rr_nodes)


class TestControlIntegration:
    def test_lt_budget_respected_at_batch_boundary(self, lt_graph):
        gen = LTGenerator(lt_graph)
        gen.batch_size = 64
        gen.control = RunControl(budget=Budget(max_rr_sets=100))
        pool = RRCollection(lt_graph.n)
        with pytest.raises(ExecutionInterrupted):
            pool.extend(500, gen, np.random.default_rng(1))
        assert pool.num_rr == 100
        assert gen.counters.sets_generated == 100


class TestModeValidation:
    def test_unknown_mode_enumerates_kernels(self, skewed_graph):
        gen = SubsimICGenerator(skewed_graph)
        gen.batched_mode = "bogus"
        with pytest.raises(ValueError, match="'ic', 'subsim', 'lt'"):
            gen.generate_batch(np.random.default_rng(1), 4)

    def test_ic_kernels_rejected_on_lt_graph(self, lt_graph):
        for cls in (VanillaICGenerator, SubsimICGenerator):
            gen = cls(lt_graph)
            with pytest.raises(GraphFormatError, match="LT-normalized"):
                gen.generate_batch(np.random.default_rng(1), 4)

    def test_run_override_must_be_supported(self, wc_graph):
        from repro.algorithms.opimc import OPIMC

        algo = OPIMC(wc_graph, generator_cls=SubsimICGenerator)
        with pytest.raises(ConfigurationError, match="supports"):
            algo.run(3, eps=0.4, seed=0, batch_size=32, batched_mode="lt")
        with pytest.raises(ConfigurationError, match="must be one of"):
            algo.run(3, eps=0.4, seed=0, batch_size=32, batched_mode="nope")

    def test_run_override_applies_and_resets(self, wc_graph):
        from repro.algorithms.opimc import OPIMC

        algo = OPIMC(wc_graph, generator_cls=SubsimICGenerator)
        result = algo.run(3, eps=0.4, seed=0, batch_size=64,
                          batched_mode="ic")
        assert len(result.seeds) == 3
        assert algo._batched_mode is None

    def test_subsim_ic_override_same_distribution(self, skewed_graph):
        # SUBSIM's "ic" fallback kernel flips per-edge coins; sizes must
        # match the native skipping kernel distributionally.
        bat, _ = _sizes(skewed_graph, SubsimICGenerator, 1000, seed=41,
                        batch_size=128)
        gen = SubsimICGenerator(skewed_graph)
        gen.batch_size = 128
        gen.batched_mode = "ic"
        pool = RRCollection(skewed_graph.n)
        pool.extend(1000, gen, np.random.default_rng(4101))
        stat = scipy_stats.ks_2samp(bat.set_sizes(), pool.set_sizes())
        assert stat.pvalue > 1e-3


class TestPreprocessingCache:
    def test_uniform_arrays_shared_between_instances(self, skewed_graph):
        g1 = SubsimICGenerator(skewed_graph)
        g2 = SubsimICGenerator(skewed_graph)
        assert g1._is_uniform is g2._is_uniform
        assert g1._uniform_p is g2._uniform_p

    def test_node_samplers_shared_per_mode(self, skewed_graph):
        g1 = SubsimICGenerator(skewed_graph, general_mode="bucket")
        g2 = SubsimICGenerator(skewed_graph, general_mode="bucket")
        g3 = SubsimICGenerator(skewed_graph, general_mode="indexed")
        assert g1._node_samplers is g2._node_samplers
        assert g1._node_samplers is not g3._node_samplers
        # Populating one instance's samplers populates the other's.
        rng = np.random.default_rng(1)
        for _ in range(30):
            g1.generate(rng)
        assert len(g2._node_samplers) == len(g1._node_samplers)

    def test_cached_tables_identical_to_fresh_build(self, skewed_graph):
        seg = sorted_segments(skewed_graph)
        assert sorted_segments(skewed_graph) is seg
        arrays = uniform_arrays(skewed_graph)
        assert uniform_arrays(skewed_graph) is arrays

    def test_lt_alias_cached(self, lt_graph):
        tables = lt_alias_tables(lt_graph)
        assert lt_alias_tables(lt_graph) is tables
        # d+1 outcomes per node with in-degree d > 0.
        deg = np.diff(lt_graph.in_indptr)
        expected = int((deg[deg > 0] + 1).sum())
        assert len(tables.prob) == expected

    def test_cache_not_pickled(self, skewed_graph):
        sorted_segments(skewed_graph)
        clone = pickle.loads(pickle.dumps(skewed_graph))
        assert clone._cache == {}
        # A rebuilt cache on the clone matches the original's tables.
        a = sorted_segments(skewed_graph)
        b = sorted_segments(clone)
        assert np.array_equal(a.start, b.start)
        assert np.array_equal(a.q, b.q)

    def test_sequential_results_unchanged_by_cache(self, skewed_graph):
        # Two generators sharing cached arrays must replay identical
        # sequential schedules for the same seed.
        g1 = SubsimICGenerator(skewed_graph)
        g2 = SubsimICGenerator(skewed_graph)
        r1 = np.random.default_rng(5)
        r2 = np.random.default_rng(5)
        for _ in range(40):
            assert g1.generate(r1) == g2.generate(r2)
        assert g1.counters.rng_draws == g2.counters.rng_draws


class TestUncoveredCounts:
    def test_matches_scalar_definition(self, wc_graph, rng):
        pool = RRCollection(wc_graph.n)
        pool.extend(300, VanillaICGenerator(wc_graph), rng)
        covered = np.zeros(pool.num_rr, dtype=bool)
        covered[::3] = True
        nodes = np.arange(wc_graph.n, dtype=np.int64)
        got = pool.uncovered_counts(nodes, covered)
        for v in range(wc_graph.n):
            ids = pool.rrs_containing(v)
            assert got[v] == len(ids) - int(covered[ids].sum())

    def test_prefix_view_restricts_to_prefix(self, wc_graph, rng):
        pool = RRCollection(wc_graph.n)
        pool.extend(300, VanillaICGenerator(wc_graph), rng)
        view = pool.prefix(120)
        covered = np.zeros(view.num_rr, dtype=bool)
        covered[10:40] = True
        nodes = np.arange(wc_graph.n, dtype=np.int64)
        got = view.uncovered_counts(nodes, covered)
        for v in range(wc_graph.n):
            ids = view.rrs_containing(v)
            assert got[v] == len(ids) - int(covered[ids].sum())
