"""Direct numeric fidelity tests of the paper's formulas and lemmas.

Where other test files check behaviour, these pin the implementation to
the paper's printed mathematics: hand-evaluated instances of Eqs. 1-4 and
the combinatorial inequalities of Lemmas 8 and 11 on brute-forceable
coverage instances.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.combinatorics import log_binomial
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import (
    theta_max_im_sentinel,
    theta_max_opimc,
    theta_max_sentinel,
)
from repro.coverage.greedy import max_coverage_greedy
from repro.rrsets.collection import RRCollection


def collection_from(sets, n):
    c = RRCollection(n)
    for s in sets:
        c.add(s)
    return c


def best_coverage(collection, k):
    return max(
        collection.coverage(combo)
        for combo in itertools.combinations(range(collection.n), k)
    )


class TestEquationOne:
    """Eq. 1: ((sqrt(cov + 2 eta/9) - sqrt(eta/2))^2 - eta/18) * n / theta."""

    def test_hand_computed_value(self):
        cov, theta, n, delta = 100.0, 400, 1000, 0.05
        eta = math.log(1 / delta)
        expected = (
            (math.sqrt(cov + 2 * eta / 9) - math.sqrt(eta / 2)) ** 2
            - eta / 18
        ) * n / theta
        assert influence_lower_bound(cov, theta, n, delta) == pytest.approx(
            expected
        )

    def test_converges_to_point_estimate(self):
        # As theta grows with fixed coverage fraction, Eq. 1 -> n * cov/theta.
        n, frac, delta = 1000, 0.25, 0.01
        for theta in (10**3, 10**5, 10**7):
            lower = influence_lower_bound(frac * theta, theta, n, delta)
            gap = n * frac - lower
            assert gap > 0
        tight = influence_lower_bound(frac * 10**7, 10**7, n, delta)
        assert tight == pytest.approx(n * frac, rel=0.01)


class TestEquationTwo:
    """Eq. 2: (sqrt(cov_u + eta/2) + sqrt(eta/2))^2 * n / theta."""

    def test_hand_computed_value(self):
        cov_u, theta, n, delta = 150.0, 400, 1000, 0.05
        eta = math.log(1 / delta)
        expected = (
            math.sqrt(cov_u + eta / 2) + math.sqrt(eta / 2)
        ) ** 2 * n / theta
        assert influence_upper_bound(cov_u, theta, n, delta) == pytest.approx(
            expected
        )


class TestEquationsThreeAndFour:
    def test_eq3_hand_computed(self):
        n, k, eps1, delta1 = 1000, 10, 0.1, 0.01
        ln6d = math.log(6 / delta1)
        expected = (
            2 * n * (math.sqrt(ln6d) + math.sqrt(log_binomial(n, k) + ln6d)) ** 2
            / (eps1**2 * k)
        )
        assert theta_max_sentinel(n, k, eps1, delta1) == math.ceil(expected)

    def test_eq4_hand_computed(self):
        n, k, b, eps2, delta2 = 1000, 10, 3, 0.1, 0.01
        ln9d = math.log(9 / delta2)
        one_minus_inv_e = 1 - 1 / math.e
        expected = (
            2 * n * (
                math.sqrt(ln9d)
                + math.sqrt(
                    one_minus_inv_e * (log_binomial(n - b, k - b) + ln9d)
                )
            ) ** 2
            / (eps2**2 * k)
        )
        assert theta_max_im_sentinel(n, k, b, eps2, delta2) == math.ceil(expected)

    def test_eq4_at_b_zero_close_to_opimc(self):
        # With b = 0 the IM-Sentinel ceiling covers the full problem; it
        # differs from OPIM-C's only in constants (9/delta vs 6/delta and
        # the placement of (1 - 1/e)).
        n, k, eps, delta = 5000, 20, 0.2, 0.01
        ratio = theta_max_im_sentinel(n, k, 0, eps, delta) / theta_max_opimc(
            n, k, eps, delta
        )
        assert 0.5 < ratio < 2.0


class TestLemma8:
    """Greedy prefix coverage: Lambda(S_b) >= (1 - (1-1/k)^b) Lambda(S_k^o)."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_prefix_guarantee_random_instances(self, data):
        n = data.draw(st.integers(3, 7))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=1, max_size=n, unique=True
                )
            )
            for _ in range(data.draw(st.integers(1, 10)))
        ]
        k = data.draw(st.integers(1, n - 1))
        c = collection_from(sets, n)
        greedy = max_coverage_greedy(c, select=k)
        optimal = best_coverage(c, k)
        x = 1 - 1 / k
        for b in range(1, k + 1):
            guarantee = (1 - x**b) * optimal
            assert greedy.coverage_history[b] >= guarantee - 1e-9


class TestLemma11:
    """Completion bound: Lambda(B u S_rest) >= (1 - x^{k-b}) Lambda(opt)
    + x^{k-b} Lambda(B), for greedy completion of any base set B."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_completion_bound_random_instances(self, data):
        n = data.draw(st.integers(4, 7))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=1, max_size=n, unique=True
                )
            )
            for _ in range(data.draw(st.integers(1, 10)))
        ]
        k = data.draw(st.integers(2, n - 1))
        b = data.draw(st.integers(1, k - 1))
        base = data.draw(
            st.lists(st.integers(0, n - 1), min_size=b, max_size=b, unique=True)
        )
        c = collection_from(sets, n)
        initial = c.covered_mask(base)
        greedy = max_coverage_greedy(
            c, select=k - b, topk=k, initial_covered=initial
        )
        optimal = best_coverage(c, k)
        base_coverage = int(initial.sum())
        x = 1 - 1 / k
        bound = (1 - x ** (k - b)) * optimal + x ** (k - b) * base_coverage
        assert greedy.coverage >= bound - 1e-9


class TestHISTBudgetSplit:
    """Algorithm 4's eps/delta split composes to the advertised guarantee."""

    def test_error_budget(self):
        eps = 0.1
        eps1 = eps2 = eps / 2
        assert 1 - 1 / math.e - eps1 - eps2 == pytest.approx(
            1 - 1 / math.e - eps
        )

    def test_failure_budget(self):
        delta = 0.01
        delta1 = delta2 = delta / 2
        assert delta1 + delta2 == pytest.approx(delta)
