"""Tests for snapshot estimation and the exact-influence anchor.

``exact_influence_ic`` enumerates every live-edge pattern, so on tiny
graphs all four estimators in the library — forward simulation, LT-free
snapshots, RR sets, and the analytic value — must converge to the *same*
number.  This is the strongest correctness anchor in the suite.
"""

import numpy as np
import pytest

from repro.estimation.montecarlo import estimate_spread
from repro.estimation.rr_estimator import rr_influence_estimate
from repro.estimation.snapshots import (
    estimate_spread_snapshots,
    exact_influence_ic,
    exact_rr_hit_probability,
    snapshot_spread,
)
from repro.graphs.csr import build_graph
from repro.graphs.generators import path_graph, star_graph
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError


def diamond():
    """0 -> {1, 2} -> 3 with mixed probabilities; m = 4."""
    return build_graph(
        4,
        [0, 0, 1, 2],
        [1, 2, 3, 3],
        [0.5, 0.8, 0.6, 0.3],
    )


class TestExactInfluence:
    def test_single_edge(self):
        g = build_graph(2, [0], [1], [0.4])
        assert exact_influence_ic(g, [0]) == pytest.approx(1.4)

    def test_path_probability_chain(self):
        # 0 -(0.5)-> 1 -(0.5)-> 2: I({0}) = 1 + 0.5 + 0.25
        g = build_graph(3, [0, 1], [1, 2], [0.5, 0.5])
        assert exact_influence_ic(g, [0]) == pytest.approx(1.75)

    def test_diamond_by_hand(self):
        g = diamond()
        # P(1 active) = .5, P(2 active) = .8
        # P(3 active) = 1 - (1 - .5*.6)(1 - .8*.3) = 1 - .7*.76
        expected = 1 + 0.5 + 0.8 + (1 - 0.7 * 0.76)
        assert exact_influence_ic(g, [0]) == pytest.approx(expected)

    def test_deterministic_graph(self):
        assert exact_influence_ic(path_graph(5), [0]) == pytest.approx(5.0)

    def test_multiple_seeds_union_semantics(self):
        g = diamond()
        # Seeding {1, 2} activates both plus 3 with 1 - .4*.7
        expected = 2 + (1 - 0.4 * 0.7)
        assert exact_influence_ic(g, [1, 2]) == pytest.approx(expected)

    def test_empty_seed_set(self):
        assert exact_influence_ic(diamond(), []) == 0.0

    def test_edge_count_guard(self):
        g = star_graph(30, center_out=True)  # m = 29 > guard
        with pytest.raises(ConfigurationError):
            exact_influence_ic(g, [0])

    def test_seed_validation(self):
        with pytest.raises(ConfigurationError):
            exact_influence_ic(diamond(), [9])


class TestEstimatorsAgreeWithExact:
    @pytest.fixture(scope="class")
    def graph(self):
        return diamond()

    @pytest.fixture(scope="class")
    def truth(self, graph):
        return exact_influence_ic(graph, [0])

    def test_forward_simulation(self, graph, truth):
        est = estimate_spread(graph, [0], num_simulations=40_000, seed=0)
        assert est.mean == pytest.approx(truth, rel=0.03)

    def test_snapshot_estimator(self, graph, truth):
        est = estimate_spread_snapshots(graph, [0], num_snapshots=40_000, seed=1)
        assert est.mean == pytest.approx(truth, rel=0.03)

    @pytest.mark.parametrize("gen_cls", [VanillaICGenerator, SubsimICGenerator])
    def test_rr_estimator(self, graph, truth, gen_cls):
        est = rr_influence_estimate(
            graph, [0], num_rr=40_000, generator_cls=gen_cls, seed=2
        )
        assert est == pytest.approx(truth, rel=0.05)

    def test_lemma1_hit_probability(self, graph, truth):
        assert exact_rr_hit_probability(graph, [0]) == pytest.approx(truth / 4)


class TestSnapshotMechanics:
    def test_snapshot_spread_deterministic_graph(self, rng):
        assert snapshot_spread(path_graph(6), [0], rng) == 6

    def test_zero_probability_graph(self, rng):
        g = build_graph(3, [0, 1], [1, 2], [0.0, 0.0])
        assert snapshot_spread(g, [0], rng) == 1

    def test_validation(self):
        g = path_graph(3)
        with pytest.raises(ConfigurationError):
            estimate_spread_snapshots(g, [0], num_snapshots=0)
        with pytest.raises(ConfigurationError):
            estimate_spread_snapshots(g, [99])

    def test_empty_seeds(self):
        est = estimate_spread_snapshots(path_graph(3), [], num_snapshots=10)
        assert est.mean == 0.0
