"""Tests for the extended graph statistics."""

import math

import numpy as np
import pytest

from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.graphs.stats import (
    effective_influence_ceiling,
    power_law_exponent,
    reciprocity,
)


class TestPowerLawExponent:
    def test_pa_in_range(self):
        g = preferential_attachment(3000, 4, seed=0)
        alpha = power_law_exponent(g, "in")
        assert 1.5 < alpha < 4.0

    def test_er_much_larger(self):
        pa = preferential_attachment(3000, 4, seed=0)
        er = erdos_renyi(3000, 4.0, seed=0)
        # ER has no heavy tail: the Hill estimate is far above PA's.
        assert power_law_exponent(er, "in") > power_law_exponent(pa, "in")

    def test_nan_when_tail_empty(self):
        g = path_graph(5)  # all in-degrees <= 1
        assert math.isnan(power_law_exponent(g, "in", d_min=2))

    def test_validation(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            power_law_exponent(g, "sideways")
        with pytest.raises(ValueError):
            power_law_exponent(g, "in", d_min=0)


class TestReciprocity:
    def test_undirected_is_one(self):
        g = preferential_attachment(200, 3, seed=1, directed=False)
        assert reciprocity(g) == 1.0

    def test_dag_is_zero(self):
        assert reciprocity(preferential_attachment(200, 3, seed=1)) == 0.0

    def test_partial(self):
        g = preferential_attachment(400, 3, seed=1, reciprocal=0.5)
        r = reciprocity(g)
        assert 0.3 < r < 0.9

    def test_cycle_n2_equivalent(self):
        # 2-cycle 0 <-> 1: both edges have their reverse.
        from repro.graphs.csr import build_graph

        g = build_graph(2, [0, 1], [1, 0], [1.0, 1.0])
        assert reciprocity(g) == 1.0


class TestInfluenceCeiling:
    def test_cycle_full(self):
        assert effective_influence_ceiling(cycle_graph(30), 20, seed=0) == 30.0

    def test_star_leaf_heavy(self):
        # From the center: n; from a leaf: 1.  Sampling mixes the two.
        value = effective_influence_ceiling(
            star_graph(50, center_out=True), 200, seed=0
        )
        assert 1.0 <= value <= 3.0  # leaves dominate the sample

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_influence_ceiling(cycle_graph(5), 0)
