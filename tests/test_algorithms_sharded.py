"""Running algorithms and sessions on the persistent shard runtime.

End-to-end checks that ``run(shards=...)`` and ``QuerySession(shards=...)``
are deterministic, reuse the warm pool across queries, and reject the
configurations the shard runtime cannot honor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import get_algorithm
from repro.engine.session import QuerySession
from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import wc_weights
from repro.rrsets.shardpool import ShardPool
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def graph():
    return wc_weights(erdos_renyi(200, 4.0, seed=17))


class TestRunWithShards:
    @pytest.mark.parametrize("name", ["opim-c-fast", "subsim", "hist+subsim"])
    def test_run_to_run_deterministic(self, graph, name):
        results = []
        for _ in range(2):
            algo = get_algorithm(name, graph)
            result = algo.run(
                5, eps=0.4, seed=3, shards=2, batch_size=16
            )
            results.append(
                (result.seeds, result.num_rr_sets, result.status)
            )
        assert results[0] == results[1]
        assert results[0][2] == "complete"

    def test_existing_pool_reused_across_runs(self, graph):
        with ShardPool(graph, 2) as pool:
            first = get_algorithm("subsim", graph).run(
                4, eps=0.4, seed=3, shards=pool, batch_size=16
            )
            second = get_algorithm("subsim", graph).run(
                4, eps=0.4, seed=3, shards=pool, batch_size=16
            )
            assert first.seeds == second.seeds
            # The pool survives the runs (they did not close it).
            assert pool.stats() is not None

    def test_lt_model_runs_sharded(self, graph):
        result = get_algorithm("imm-lt", graph, max_rr_sets=2000).run(
            3, eps=0.5, seed=9, shards=2, batch_size=16
        )
        assert result.status in ("complete", "partial")
        assert len(result.seeds) == 3


class TestValidation:
    def test_workers_and_shards_conflict(self, graph):
        with pytest.raises(ConfigurationError):
            get_algorithm("subsim", graph).run(
                3, eps=0.4, seed=1, shards=2, workers=2
            )

    def test_spill_dir_requires_shards(self, graph, tmp_path):
        with pytest.raises(ConfigurationError):
            get_algorithm("subsim", graph).run(
                3, eps=0.4, seed=1, spill_dir=str(tmp_path)
            )

    def test_checkpoint_and_shards_conflict(self, graph, tmp_path):
        with pytest.raises(ConfigurationError):
            get_algorithm("subsim", graph).run(
                3, eps=0.4, seed=1, shards=2,
                checkpoint=str(tmp_path / "c.npz"),
            )

    def test_cursor_algorithms_reject_shards(self, graph):
        for name in ("ssa", "borgs-ris"):
            with pytest.raises(ConfigurationError):
                get_algorithm(name, graph).run(3, eps=0.4, seed=1, shards=2)

    def test_non_rr_algorithms_reject_shards(self, graph):
        with pytest.raises(ConfigurationError):
            get_algorithm("degree", graph).run(3, seed=1, shards=2)


class TestShardedSession:
    def test_sessions_deterministic(self, graph):
        seeds = []
        for _ in range(2):
            with QuerySession(graph, "subsim", seed=5, shards=2) as session:
                result = session.maximize(4, eps=0.4, batch_size=16)
                seeds.append(result.seeds)
        assert seeds[0] == seeds[1]

    def test_warm_queries_reuse_shard_banks(self, graph):
        with QuerySession(graph, "subsim", seed=5, shards=2) as session:
            session.maximize(3, eps=0.4, batch_size=16)
            generated_cold = session.metrics.value("bank.sets_generated")
            session.maximize(4, eps=0.4, batch_size=16)
            assert session.metrics.value("bank.sets_reused") > 0
            assert session.metrics.value("bank.sets_generated") >= generated_cold

    def test_save_rejected_when_sharded(self, graph, tmp_path):
        with QuerySession(graph, "subsim", seed=5, shards=2) as session:
            session.maximize(3, eps=0.4, batch_size=16)
            with pytest.raises(ConfigurationError):
                session.save(str(tmp_path / "s.npz"))

    def test_spill_dir_requires_shards(self, graph, tmp_path):
        with pytest.raises(ConfigurationError):
            QuerySession(
                graph, "subsim", seed=5, spill_dir=str(tmp_path)
            )

    def test_close_idempotent(self, graph):
        session = QuerySession(graph, "subsim", seed=5, shards=2)
        session.maximize(3, eps=0.4, batch_size=16)
        session.close()
        session.close()
