#!/usr/bin/env python
"""Reproduce a paper figure interactively, with an ASCII chart.

The benchmark suite regenerates every figure with shape assertions; this
example is the exploratory spelling — pick a figure, a scale, and watch
the ladder.  Defaults to Figure 6 (the headline HIST result) at a small
scale so it finishes in about a minute.

Run:  python examples/reproduce_figures.py [fig1|fig2|fig4|fig6|fig7] [scale]
"""

import sys

from repro.experiments import figures
from repro.experiments.plotting import runtime_ladder_chart
from repro.experiments.reporting import render_table

RUNNERS = {
    "fig1": lambda scale: (
        figures.figure1_rows(
            datasets=["pokec-like"], k=25, eps=0.5, scale=scale,
            max_rr_sets=50_000,
        ),
        "k",
    ),
    "fig2": lambda scale: (figures.figure2_rows(
        datasets=["pokec-like"], num_rr=1500, scale=scale), None),
    "fig4": lambda scale: (
        figures.figure4_rows(k_values=(5, 10, 25, 50), scale=scale), "k"),
    "fig6": lambda scale: (
        figures.figure6_rows(
            k=25, scale=scale, size_fractions=(0.02, 0.08, 0.2, 0.35)
        ),
        "target_avg_rr_size",
    ),
    "fig7": lambda scale: (
        figures.figure7_rows(
            k=25, scale=scale, size_fractions=(0.02, 0.08, 0.2, 0.35)
        ),
        "target_avg_rr_size",
    ),
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fig6"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.04
    if name not in RUNNERS:
        print(f"unknown figure {name!r}; choose from {sorted(RUNNERS)}")
        raise SystemExit(2)
    print(f"regenerating {name} at scale {scale} (see EXPERIMENTS.md for "
          "the paper-vs-measured discussion)...\n")
    rows, x_key = RUNNERS[name](scale)
    print(render_table(rows, title=f"{name} (scale={scale})"))
    if x_key is not None and "algorithm" in rows[0]:
        print(runtime_ladder_chart(
            rows, x_key=x_key,
            title=f"{name}: runtime (log scale) vs {x_key}",
        ))


if __name__ == "__main__":
    main()
