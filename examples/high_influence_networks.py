#!/usr/bin/env python
"""High-influence networks: where HIST earns its keep (paper Section 4).

When cascades are strong — high edge probabilities, dense graphs — every
random RR set touches a large fraction of the network, and classic RR-based
algorithms drown in sampling cost.  This example calibrates a WC-variant
cascade so the *average RR-set size* is ~15% of the network, then shows how
HIST's sentinel trick collapses RR sizes (and runtime) while certifying the
same (1 - 1/e - eps) guarantee.

Run:  python examples/high_influence_networks.py
"""

from repro import maximize_influence, preferential_attachment
from repro.experiments import average_rr_size, calibrate_wc_variant
from repro.experiments.reporting import render_table

K = 50
EPS = 0.3


def main() -> None:
    base = preferential_attachment(3000, 6, seed=5, reciprocal=0.3)
    target = 0.15 * base.n
    theta, graph, achieved = calibrate_wc_variant(base, target, seed=0)
    print(
        f"calibrated WC-variant theta={theta:.3f}: average RR size "
        f"{achieved:.0f} nodes (~{achieved / base.n:.0%} of the network)\n"
    )

    rows = []
    for algorithm in ("opim-c", "hist", "hist+subsim"):
        result = maximize_influence(graph, K, algorithm=algorithm, eps=EPS, seed=9)
        rows.append(
            {
                "algorithm": algorithm,
                "runtime_s": round(result.runtime_seconds, 3),
                "rr_sets": result.num_rr_sets,
                "avg_rr_size": round(result.average_rr_size, 1),
                "edges_examined": result.edges_examined,
                "sentinels_b": result.extras.get("b", "-"),
            }
        )
    print(render_table(rows, title=f"k={K}, high-influence setting"))

    opimc, hist = rows[0], rows[1]
    print(
        f"HIST shrinks the average RR set "
        f"{opimc['avg_rr_size'] / hist['avg_rr_size']:.0f}x "
        f"(paper reports up to 700x at billion-edge scale) and runs "
        f"{opimc['runtime_s'] / max(hist['runtime_s'], 1e-9):.1f}x faster; "
        f"HIST+SUBSIM compounds both contributions."
    )

    # The uncalibrated baseline for contrast: plain WC is low influence.
    from repro.graphs.weights import wc_weights

    low = wc_weights(base)
    print(
        f"\nfor contrast, plain WC average RR size: "
        f"{average_rr_size(low, seed=0):.1f} nodes — the regime of Figure 1, "
        "where SUBSIM alone is the right tool."
    )


if __name__ == "__main__":
    main()
