#!/usr/bin/env python
"""Extending the library: a custom algorithm, audited and swept.

Shows the extension surface a downstream user touches:

1. write an :class:`~repro.algorithms.base.IMAlgorithm` subclass (here, a
   hybrid that seeds greedy RR selection with PageRank candidates),
2. register it under a name,
3. audit its output with an independent :func:`repro.core.certify_result`
   certificate (no trust in the algorithm's own bookkeeping), and
4. compare it against built-ins with the sweep runner.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import preferential_attachment, wc_weights
from repro.algorithms.base import IMAlgorithm
from repro.algorithms.pagerank import pagerank_scores
from repro.core import certify_result, register_algorithm
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.experiments.reporting import render_table
from repro.experiments.sweep import SweepConfig, run_sweep, summarize_sweep
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator


class PageRankSeededRR(IMAlgorithm):
    """Fixed RR budget, greedy restricted to the PageRank-top candidates.

    A cheap middle ground: spend a *fixed* number of RR sets (no adaptive
    bounds) and only consider the top ``candidate_factor * k`` nodes by
    reverse PageRank during greedy.  No guarantee — which is exactly why
    the example certifies it afterwards.
    """

    name = "pr-seeded-rr"

    def __init__(self, graph, budget: int = 3000, candidate_factor: int = 20):
        super().__init__(graph, SubsimICGenerator)
        self.budget = budget
        self.candidate_factor = candidate_factor

    def _select(self, k, eps, delta, rng) -> IMResult:
        generator = self._new_generator()
        pool = RRCollection(self.graph.n)
        pool.extend(self.budget, generator, rng)
        # Mask out non-candidates by zeroing their index entries.
        scores = pagerank_scores(self.graph, reverse=True)
        keep = set(
            np.argsort(scores)[-self.candidate_factor * k:].tolist()
        )
        restricted = RRCollection(self.graph.n)
        for rr in pool.rr_sets:
            restricted.add([node for node in rr if node in keep] or [rr[0]])
        greedy = max_coverage_greedy(
            restricted, select=k, track_upper_bound=False
        )
        return self._result_from(
            greedy.seeds, k, eps, delta, generators=(generator,),
            candidates=len(keep),
        )


def main() -> None:
    graph = wc_weights(
        preferential_attachment(3000, 5, seed=8, reciprocal=0.3)
    )
    register_algorithm("pr-seeded-rr", lambda g, **kw: PageRankSeededRR(g, **kw))

    k = 15
    config = SweepConfig(
        graphs={"pa-3000": graph},
        algorithms=["pr-seeded-rr", "subsim", "degree"],
        k_values=[k],
        eps=0.2,
        seeds=[0, 1, 2],
        evaluate_spread=True,
        num_simulations=200,
    )
    records = run_sweep(config)
    print(render_table(summarize_sweep(records), title="Sweep (3 seeds each)"))

    # Independent audit of the custom algorithm's most recent run.
    custom = [r for r in records if r.algorithm == "pr-seeded-rr"][-1]
    cert = certify_result(
        graph, custom.result.seeds, k=k, num_rr=20_000, seed=99
    )
    print(
        f"certificate for pr-seeded-rr: I(S) >= {cert.ratio:.3f} * OPT_{k} "
        f"(lower {cert.lower_bound:.1f}, upper {cert.upper_bound:.1f}, "
        f"delta {cert.delta})"
    )
    target = 1 - 1 / np.e - 0.2
    verdict = "meets" if cert.meets(target) else "MISSES"
    print(f"-> {verdict} the (1 - 1/e - 0.2) = {target:.3f} bar the "
          "guaranteed algorithms certify by construction")


if __name__ == "__main__":
    main()
