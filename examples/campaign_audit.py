#!/usr/bin/env python
"""Campaign audit: who earned their free product, and how sure are we?

After a viral-marketing campaign is planned (seeds selected), three audit
questions remain:

1. *How much spread does each seed actually account for?*
   -> per-seed attribution (leave-one-out and selection-order).
2. *How accurate is our spread forecast?*
   -> sequential estimation with an explicit (eps, delta) contract
      (Dagum et al., the paper's reference [16]).
3. *Can we certify the seed set is near-optimal without trusting the
   selection code?*  -> an independent RR-based certificate.

Run:  python examples/campaign_audit.py
"""

from repro import maximize_influence, preferential_attachment, wc_weights
from repro.core import certify_result
from repro.estimation import (
    attribution_table,
    estimate_spread_sequential,
    incremental_contributions,
    marginal_contributions,
)
from repro.experiments.plotting import bar_chart
from repro.experiments.reporting import render_table

K = 8


def main() -> None:
    graph = wc_weights(
        preferential_attachment(4000, 5, seed=17, reciprocal=0.3)
    )
    plan = maximize_influence(graph, K, algorithm="hist+subsim", eps=0.15, seed=3)
    print(f"campaign plan: seeds {plan.seeds} "
          f"(selected in {plan.runtime_seconds:.2f}s)\n")

    # 1a. Leave-one-out: what do we lose if a seed drops out?
    marginal = marginal_contributions(
        graph, plan.seeds, num_simulations=400, seed=1
    )
    print(render_table(attribution_table(marginal),
                       title="Leave-one-out contribution"))

    # 1b. Selection-order gains (telescopes to the full forecast).
    incremental = incremental_contributions(
        graph, plan.seeds, num_simulations=400, seed=1
    )
    print(bar_chart(
        {f"seed {r.seed}": max(r.contribution, 0.0) for r in incremental},
        title="Gain when added (selection order)",
        width=40,
    ))

    # 2. Forecast with an explicit accuracy contract.
    forecast = estimate_spread_sequential(
        graph, plan.seeds, eps=0.05, delta=0.01, seed=2
    )
    print(
        f"forecast: {forecast.mean:.0f} adopters, within +-5% with 99% "
        f"confidence ({forecast.num_samples} cascades simulated)"
    )

    # 3. Independent near-optimality certificate.
    cert = certify_result(graph, plan.seeds, k=K, num_rr=30_000, seed=4)
    print(
        f"certificate: I(S) >= {cert.ratio:.2f} * OPT_{K} with probability "
        f">= {1 - cert.delta}"
    )


if __name__ == "__main__":
    main()
