#!/usr/bin/env python
"""Influence maximization under the Linear Threshold model.

The LT model activates a node once the *total* weight of its active
in-neighbors crosses a random threshold.  Its RR sets are backward walks
(each node keeps at most one live in-edge), so generation is naturally
cheap — the paper shows LT-based IM already enjoys the tightened
``O(k n log n / eps^2)`` bound without algorithmic changes.

This example normalises learned-style (exponential) weights to satisfy the
LT precondition, runs OPIM-C and HIST with the LT generator, and verifies
the seeds by forward LT simulation.

Run:  python examples/linear_threshold.py
"""

from repro import (
    estimate_spread,
    exponential_weights,
    lt_normalized_weights,
    maximize_influence,
    preferential_attachment,
)
from repro.experiments.reporting import render_table


def main() -> None:
    base = preferential_attachment(4000, 6, seed=3, reciprocal=0.3)
    graph = lt_normalized_weights(exponential_weights(base, seed=1))
    print(f"LT network: {graph.n} nodes, max incoming weight sum "
          f"{graph.in_prob_sums.max():.3f} (must be <= 1)\n")

    rows = []
    for algorithm in ("opim-c-lt", "hist-lt", "degree"):
        result = maximize_influence(graph, 25, algorithm=algorithm, eps=0.2, seed=4)
        spread = estimate_spread(
            graph, result.seeds, model="lt", num_simulations=400, seed=1
        )
        rows.append(
            {
                "algorithm": algorithm,
                "runtime_s": round(result.runtime_seconds, 3),
                "rr_sets": result.num_rr_sets,
                "avg_rr_size": round(result.average_rr_size, 2),
                "lt_spread": round(spread.mean, 1),
            }
        )
    print(render_table(rows, title="k=25 under Linear Threshold"))


if __name__ == "__main__":
    main()
