#!/usr/bin/env python
"""Viral marketing: choose which customers receive free products.

The paper's motivating application — a company gives its product to k
influential users hoping word-of-mouth does the rest.  This example models
a customer base with community structure (stochastic block model: a few
tight clusters plus cross-cluster ties), compares every principled
algorithm and heuristic on both *quality* (expected adopters) and *cost*
(runtime, samples), and prints a recommendation table.

Run:  python examples/viral_marketing.py
"""

from repro import (
    available_algorithms,
    estimate_spread,
    maximize_influence,
    stochastic_block_model,
    wc_weights,
)
from repro.experiments.reporting import render_table

BUDGET = 15  # free products to give away
EPS = 0.25  # accuracy/cost knob: SSA in particular is steep below this
CONTENDERS = ("subsim", "hist+subsim", "opim-c", "ssa", "degree",
              "degree-discount", "random")


def main() -> None:
    # Customer communities: 8 clusters of 400, denser inside than across.
    graph = wc_weights(
        stochastic_block_model(
            [400] * 8, p_within=0.02, p_between=0.001, seed=11
        )
    )
    print(f"customer graph: {graph.n} customers, {graph.m} influence edges")
    print(f"available algorithms: {available_algorithms()}\n")

    rows = []
    for algorithm in CONTENDERS:
        result = maximize_influence(
            graph, BUDGET, algorithm=algorithm, eps=EPS, seed=3
        )
        spread = estimate_spread(
            graph, result.seeds, num_simulations=400, seed=1
        )
        rows.append(
            {
                "algorithm": algorithm,
                "expected_adopters": round(spread.mean, 1),
                "runtime_s": round(result.runtime_seconds, 3),
                "rr_sets": result.num_rr_sets,
                "guaranteed": result.num_rr_sets > 0,
            }
        )
    rows.sort(key=lambda r: -r["expected_adopters"])
    print(render_table(rows, title=f"Giving away {BUDGET} products"))

    best = rows[0]
    print(
        f"Recommendation: seed via {best['algorithm']!r} — "
        f"about {best['expected_adopters']} expected adopters from "
        f"{BUDGET} free units."
    )


if __name__ == "__main__":
    main()
