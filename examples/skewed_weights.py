#!/usr/bin/env python
"""Skewed edge weights: SUBSIM's general-IC samplers (paper Section 3.3).

Learned influence probabilities are rarely uniform — the paper evaluates
exponential and Weibull weight distributions.  This example compares all
three subset-sampling strategies against vanilla per-edge coin flipping on
the same graphs, reporting wall time and the machine-independent
``edges_examined`` counter (the quantity the paper's analysis bounds).

Run:  python examples/skewed_weights.py
"""

import time

import numpy as np

from repro import (
    SubsimICGenerator,
    VanillaICGenerator,
    exponential_weights,
    preferential_attachment,
    weibull_weights,
)
from repro.experiments.reporting import render_table

NUM_RR = 3000


def measure(generator, seed: int = 0):
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    for _ in range(NUM_RR):
        generator.generate(rng)
    elapsed = time.perf_counter() - start
    return elapsed, generator.counters


def main() -> None:
    base = preferential_attachment(4000, 8, seed=2, reciprocal=0.3)
    for dist_name, weighter in (
        ("exponential", exponential_weights),
        ("weibull", weibull_weights),
    ):
        graph = weighter(base, seed=7)
        contenders = [
            ("vanilla (Alg. 2)", VanillaICGenerator(graph)),
            ("subsim sorted (index-free)", SubsimICGenerator(graph, "sorted")),
            ("subsim bucket (B-P)", SubsimICGenerator(graph, "bucket")),
            ("subsim indexed (O(1+mu))", SubsimICGenerator(graph, "indexed")),
        ]
        rows = []
        base_time = None
        for label, generator in contenders:
            elapsed, counters = measure(generator)
            if base_time is None:
                base_time = elapsed
            rows.append(
                {
                    "sampler": label,
                    "runtime_s": round(elapsed, 3),
                    "speedup": round(base_time / elapsed, 2),
                    "edges_examined": counters.edges_examined,
                    "avg_rr_size": round(counters.average_size(), 2),
                }
            )
        print(render_table(rows, title=f"{dist_name} weights, {NUM_RR} RR sets"))


if __name__ == "__main__":
    main()
