#!/usr/bin/env python
"""Quickstart: pick influential seeds on a synthetic social network.

Builds a weighted-cascade social graph, runs the paper's best algorithm
(HIST + SUBSIM), evaluates the selected seeds with forward Monte-Carlo
simulation, and compares against a naive high-degree baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    InfluenceMaximizer,
    estimate_spread,
    preferential_attachment,
    wc_weights,
)


def main() -> None:
    # 1. A social network: 5,000 users, heavy-tailed popularity, and
    #    weighted-cascade edge probabilities p(u, v) = 1 / in-degree(v).
    graph = wc_weights(
        preferential_attachment(5000, 6, seed=42, reciprocal=0.3)
    )
    print(f"network: {graph.n} users, {graph.m} follow edges")

    # 2. Select 20 seed users with a (1 - 1/e - 0.1) guarantee.
    maximizer = InfluenceMaximizer(graph)
    result = maximizer.maximize(k=20, algorithm="hist+subsim", eps=0.1, seed=7)
    print(f"algorithm        : {result.algorithm}")
    print(f"selected seeds   : {result.seeds}")
    print(f"runtime          : {result.runtime_seconds:.3f}s")
    print(f"RR sets generated: {result.num_rr_sets} (avg size "
          f"{result.average_rr_size:.1f})")
    print(f"certified ratio  : {result.approx_ratio_certified:.3f} "
          f"(needs > {1 - 1/2.718281828 - 0.1:.3f})")

    # 3. Ground-truth the spread with forward cascade simulation.
    spread = maximizer.evaluate(result, num_simulations=500, seed=1)
    print(f"expected spread  : {spread.mean:.1f} users "
          f"(95% CI {spread.confidence_interval()[0]:.1f}"
          f"-{spread.confidence_interval()[1]:.1f})")

    # 4. Compare against the high-degree heuristic.  On pure
    #    preferential-attachment graphs degree is a strong baseline; the
    #    principled algorithm matches it *and* certifies its quality.
    degree = maximizer.maximize(k=20, algorithm="degree", seed=7)
    degree_spread = estimate_spread(
        graph, degree.seeds, num_simulations=500, seed=1
    )
    print(f"degree heuristic : {degree_spread.mean:.1f} users "
          f"(no guarantee; ratio {spread.mean / max(degree_spread.mean, 1e-9):.2f})")


if __name__ == "__main__":
    main()
