"""The OPIM-style influence bounds (paper Equations 1 and 2).

Both bounds invert the martingale tails of Lemma 2: given an observed
coverage on ``theta`` RR sets, Eq. 1 produces a value that the true influence
of the *measured* seed set exceeds with probability ``1 - delta_l``, and
Eq. 2 produces a value the optimum's influence stays below with probability
``1 - delta_u`` (fed with the greedy-derived coverage upper bound
``Lambda^u``).  The adaptive algorithms stop as soon as
``lower / upper > 1 - 1/e - eps``.
"""

from __future__ import annotations

import math


def _check(theta: int, n: int, delta: float) -> None:
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")


def influence_lower_bound(
    coverage: float, theta: int, n: int, delta_l: float
) -> float:
    """Eq. 1: high-probability lower bound on the influence of a seed set.

    ``coverage`` is the observed ``Lambda_R2(S)`` on ``theta`` RR sets that
    are independent of how ``S`` was chosen.  The result is clamped at 0
    (the raw formula can dip below zero for tiny coverages, where "no
    information" is the honest reading).
    """
    _check(theta, n, delta_l)
    if coverage < 0:
        raise ValueError(f"coverage must be non-negative, got {coverage}")
    eta = math.log(1.0 / delta_l)
    root = math.sqrt(coverage + 2.0 * eta / 9.0) - math.sqrt(eta / 2.0)
    value = (root * root - eta / 18.0) * n / theta
    return max(0.0, value)


def influence_upper_bound(
    coverage_upper: float, theta: int, n: int, delta_u: float
) -> float:
    """Eq. 2: high-probability upper bound on the optimum's influence.

    ``coverage_upper`` is ``Lambda^u_R1(S_k^o)`` — the greedy-derived upper
    bound on the optimum's coverage (see
    :func:`repro.coverage.greedy.max_coverage_greedy`'s
    ``upper_bound_coverage``).
    """
    _check(theta, n, delta_u)
    if coverage_upper < 0:
        raise ValueError(
            f"coverage_upper must be non-negative, got {coverage_upper}"
        )
    eta = math.log(1.0 / delta_u)
    root = math.sqrt(coverage_upper + eta / 2.0) + math.sqrt(eta / 2.0)
    return root * root * n / theta


def sketch_gap_overlap(
    lower: float,
    coverage_upper_est: float,
    theta: int,
    n: int,
    delta_u: float,
    target: float,
    epsilon_sketch: float,
) -> bool:
    """Does the sketch error band straddle the OPIM-C stopping decision?

    The error-adaptive precision ladder's trigger: under a sketch coverage
    backend the Eq. 2 input is an HLL *estimate* whose true value lies in
    ``coverage_upper_est * (1 ± epsilon_sketch)`` within the certified
    confidence band (the Eq. 1 lower bound stays exact).  Re-estimating
    with more registers can only change the round's outcome when the
    *optimistic* end of the band clears ``target`` while the *certified*
    (inflated) end does not — precisely then the sketch error, not the
    sample size, is what blocks convergence, and paying for a finer sketch
    beats doubling theta.  Everywhere else escalation is wasted work:
    either the round converges as-is, or no admissible coverage value
    would let it.
    """
    if not math.isfinite(coverage_upper_est) or coverage_upper_est <= 0:
        return False
    certified = influence_upper_bound(
        min(coverage_upper_est * (1.0 + epsilon_sketch), float(theta)),
        theta,
        n,
        delta_u,
    )
    optimistic = influence_upper_bound(
        max(coverage_upper_est * (1.0 - epsilon_sketch), 0.0),
        theta,
        n,
        delta_u,
    )
    if certified <= 0 or optimistic <= 0:
        return False
    return lower / certified <= target < lower / optimistic
