"""Concentration bounds and sample-size thresholds for RR-based IM."""

from repro.bounds.combinatorics import log_binomial
from repro.bounds.concentration import (
    martingale_lower_tail,
    martingale_upper_tail,
    monte_carlo_sample_bound,
)
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import (
    imm_lambda_prime,
    imm_lambda_star,
    theta_max_im_sentinel,
    theta_max_opimc,
    theta_max_sentinel,
)

__all__ = [
    "imm_lambda_prime",
    "imm_lambda_star",
    "influence_lower_bound",
    "influence_upper_bound",
    "log_binomial",
    "martingale_lower_tail",
    "martingale_upper_tail",
    "monte_carlo_sample_bound",
    "theta_max_im_sentinel",
    "theta_max_opimc",
    "theta_max_sentinel",
]
