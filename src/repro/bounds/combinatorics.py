"""Combinatorial helpers: numerically stable log-binomials."""

from __future__ import annotations

import math


def log_binomial(n: int, k: int) -> float:
    """Natural log of the binomial coefficient C(n, k).

    Computed through ``lgamma`` so that the ``ln C(n, k)`` terms of the
    paper's sample-size thresholds (Eqs. 3 and 4) stay finite for any
    realistic ``n``.  ``k`` outside ``[0, n]`` gives ``-inf`` (an impossible
    event), matching the probabilistic reading.
    """
    if k < 0 or k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
