"""Worst-case sample-size ceilings for the adaptive IM algorithms.

Every adaptive algorithm in this library doubles its RR-set pool until an
early-stopping test passes, but caps the pool at a ``theta_max`` that already
guarantees the approximation unconditionally:

* :func:`theta_max_opimc` — OPIM-C's ceiling (also used by our SUBSIM runner).
* :func:`theta_max_sentinel` — paper Eq. 3, the sentinel-selection phase.
* :func:`theta_max_im_sentinel` — paper Eq. 4, the IM-Sentinel phase.
* :func:`imm_lambda_prime` / :func:`imm_lambda_star` — IMM's two thresholds.
"""

from __future__ import annotations

import math

from repro.bounds.combinatorics import log_binomial

_ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


def _check_common(n: int, k: int, eps: float, delta: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, n={n}], got {k}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")


def theta_max_opimc(n: int, k: int, eps: float, delta: float) -> int:
    """OPIM-C's worst-case RR-set count (OPT lower-bounded by ``k``)."""
    _check_common(n, k, eps, delta)
    ln6d = math.log(6.0 / delta)
    alpha = _ONE_MINUS_INV_E * math.sqrt(ln6d)
    beta = math.sqrt(_ONE_MINUS_INV_E * (log_binomial(n, k) + ln6d))
    return int(math.ceil(2.0 * n * (alpha + beta) ** 2 / (eps * eps * k)))


def theta_max_sentinel(n: int, k: int, eps1: float, delta1: float) -> int:
    """Paper Eq. 3: ceiling for the sentinel-set selection phase.

    Derived from Lemma 6 with the worst-case substitutions
    ``I(S_k^o) -> k``, ``ln C(n, b) -> ln C(n, k)``, ``1 - x^b -> 1``.
    """
    _check_common(n, k, eps1, delta1)
    ln6d = math.log(6.0 / delta1)
    term = math.sqrt(ln6d) + math.sqrt(log_binomial(n, k) + ln6d)
    return int(math.ceil(2.0 * n * term * term / (eps1 * eps1 * k)))


def theta_max_im_sentinel(
    n: int, k: int, b: int, eps2: float, delta2: float
) -> int:
    """Paper Eq. 4: ceiling for the IM-Sentinel phase given sentinel size ``b``."""
    _check_common(n, k, eps2, delta2)
    if not 0 <= b <= k:
        raise ValueError(f"b must lie in [0, k={k}], got {b}")
    ln9d = math.log(9.0 / delta2)
    term = math.sqrt(ln9d) + math.sqrt(
        _ONE_MINUS_INV_E * (log_binomial(n - b, k - b) + ln9d)
    )
    return int(math.ceil(2.0 * n * term * term / (eps2 * eps2 * k)))


def imm_lambda_prime(n: int, k: int, eps_prime: float, delta: float) -> float:
    """IMM's sampling-phase threshold ``lambda'`` ([38], parameterised by delta).

    IMM states the thresholds with failure probability ``n^-l``; we invert
    ``l = ln(1/delta) / ln(n)`` so callers speak in terms of ``delta``.
    """
    _check_common(n, k, eps_prime, delta)
    log_terms = (
        log_binomial(n, k)
        + math.log(1.0 / delta)
        + math.log(max(math.log2(n), 1.0))
    )
    return (2.0 + 2.0 * eps_prime / 3.0) * log_terms * n / (eps_prime * eps_prime)


def imm_lambda_star(n: int, k: int, eps: float, delta: float) -> float:
    """IMM's selection-phase threshold ``lambda*`` ([38])."""
    _check_common(n, k, eps, delta)
    log_inv_delta = math.log(1.0 / delta)
    alpha = math.sqrt(log_inv_delta + math.log(2.0))
    beta = math.sqrt(
        _ONE_MINUS_INV_E * (log_binomial(n, k) + log_inv_delta + math.log(2.0))
    )
    return 2.0 * n * (_ONE_MINUS_INV_E * alpha + beta) ** 2 / (eps * eps)
