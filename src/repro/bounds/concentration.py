"""Martingale concentration bounds (paper Lemma 2) and Monte-Carlo sizing.

Lemma 2 (from the IMM paper [38]) bounds the deviation of the coverage
``Lambda_R(S)`` of a fixed seed set from its expectation
``I(S) * theta / n``, and remains valid when RR sets carry the weak
dependencies introduced by adaptive stopping rules.  These are the
primitives from which the OPIM bounds (Eqs. 1 and 2) are derived, and they
are exported both for the algorithms and for direct verification in tests.
"""

from __future__ import annotations

import math


def martingale_upper_tail(mean_coverage: float, lam: float) -> float:
    """Pr[coverage exceeds its mean by at least ``lam``] (Lemma 2, first bound).

    ``mean_coverage`` is ``I(S) * theta / n``; returns
    ``exp(-lam^2 / (2*mean + 2*lam/3))``.
    """
    if lam <= 0:
        return 1.0
    if mean_coverage < 0:
        raise ValueError("mean_coverage must be non-negative")
    return math.exp(-(lam * lam) / (2.0 * mean_coverage + 2.0 * lam / 3.0))


def martingale_lower_tail(mean_coverage: float, lam: float) -> float:
    """Pr[coverage falls below its mean by at least ``lam``] (Lemma 2, second).

    Returns ``exp(-lam^2 / (2*mean))``; degenerate means give the trivial
    bound.
    """
    if lam <= 0:
        return 1.0
    if mean_coverage < 0:
        raise ValueError("mean_coverage must be non-negative")
    if mean_coverage == 0:
        return 0.0 if lam > 0 else 1.0
    return math.exp(-(lam * lam) / (2.0 * mean_coverage))


def monte_carlo_sample_bound(eps: float, delta: float, mu: float = 1.0) -> int:
    """Samples for an ``eps``-relative estimate of a [0, 1] mean ``mu`` [16].

    ``3 ln(1/delta) / (eps^2 * mu)``, the Dagum et al. bound the paper uses
    to seed its sample schedules: with ``mu = 1`` and relative error near 1
    this reduces to the ``theta_0 = 3 ln(1/delta)`` initialisation of
    Algorithms 7 and 8.
    """
    if not 0 < eps:
        raise ValueError("eps must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if not 0 < mu <= 1:
        raise ValueError("mu must lie in (0, 1]")
    return int(math.ceil(3.0 * math.log(1.0 / delta) / (eps * eps * mu)))
