"""Resource budgets for influence-maximization runs.

A :class:`Budget` declares how much a run is allowed to spend along four
independent axes; :class:`~repro.runtime.control.RunControl` enforces it
cooperatively inside the RR-generation loops and algorithm sampling phases.
Caps are *soft by one step*: generation stops at the first check after a cap
is crossed, so ``edges_examined`` may overshoot by at most one RR set's
worth of work and ``num_rr_sets`` by at most one set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for a single ``run()``.

    Attributes
    ----------
    wall_clock_seconds:
        Deadline relative to the start of the run.  Checked inside the
        RR-generation loops (per activated node) and between Monte-Carlo
        simulations, so even a single enormous RR set cannot overrun it by
        much.
    max_edges_examined:
        Cap on the machine-independent edge-inspection counter summed over
        every generator of the run — the quantity the paper's complexity
        analysis bounds.
    max_rr_sets:
        Cap on the total number of RR sets generated across all pools.
    max_rr_nodes:
        Cap on the total node mass stored across all RR collections — a
        machine-independent proxy for RR-collection memory.
    """

    wall_clock_seconds: Optional[float] = None
    max_edges_examined: Optional[int] = None
    max_rr_sets: Optional[int] = None
    max_rr_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "wall_clock_seconds",
            "max_edges_examined",
            "max_rr_sets",
            "max_rr_nodes",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative when given, got {value}"
                )

    @property
    def unlimited(self) -> bool:
        """True when no axis is capped (the default open-loop behavior)."""
        return (
            self.wall_clock_seconds is None
            and self.max_edges_examined is None
            and self.max_rr_sets is None
            and self.max_rr_nodes is None
        )

    def as_dict(self) -> dict:
        """JSON-friendly summary recorded in partial results."""
        return {
            "wall_clock_seconds": self.wall_clock_seconds,
            "max_edges_examined": self.max_edges_examined,
            "max_rr_sets": self.max_rr_sets,
            "max_rr_nodes": self.max_rr_nodes,
        }
