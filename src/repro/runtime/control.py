"""Run control: the object the hot loops actually consult.

One :class:`RunControl` is created per ``run()`` and shared by every RR
generator and sampling phase of that run, so its counters are the *global*
spend of the run (an algorithm with four pools still has one edge budget).
Generators report progress through three hooks:

* :meth:`on_rr_start` — before generating a set: cancellation, deadline and
  every cap (so caps are enforced between sets);
* :meth:`on_edges` — per activated node with the node's examined-edge
  delta: cancellation, deadline, and the edge cap (so a single runaway RR
  set still stops promptly);
* :meth:`on_rr_complete` — after a set is stored: bumps set/node counters
  and feeds the fault injector.

All checks raise :class:`~repro.utils.exceptions.BudgetExceededError` or
:class:`~repro.utils.exceptions.CancelledError` — both subclasses of
``ExecutionInterrupted``, which the algorithms catch to degrade gracefully.

The spend tallies live in a :class:`~repro.observability.registry
.MetricsRegistry` (one is created when none is supplied) under the
``runtime.*`` counter names; :attr:`edges_examined` / :attr:`rr_sets` /
:attr:`rr_nodes` are views over it, so budget enforcement and the
observability surface read the same numbers by construction.  The control
also carries the run's :class:`~repro.observability.trace.PhaseTracer`
(:data:`~repro.observability.trace.NULL_TRACER` when tracing is off) and
adopts generators into the registry via :meth:`adopt_generator`.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.observability.registry import MetricsRegistry
from repro.observability.trace import NULL_TRACER
from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import FaultInjector
from repro.utils.exceptions import BudgetExceededError

#: registry names of the run-level spend tallies
EDGES_COUNTER = "runtime.edges_examined"
RR_SETS_COUNTER = "runtime.rr_sets"
RR_NODES_COUNTER = "runtime.rr_nodes"
CHECKPOINT_SAVES_COUNTER = "runtime.checkpoint_saves"


class RunControl:
    """Budget enforcement + cancellation + checkpoint/fault plumbing."""

    def __init__(
        self,
        budget: Optional[Budget] = None,
        token: Optional[CancellationToken] = None,
        faults: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointStore] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.budget = budget if budget is not None else Budget()
        self.token = token
        self.faults = faults
        self.checkpoint = checkpoint
        if checkpoint is not None and faults is not None:
            checkpoint.fault_injector = faults
        self._clock = clock
        self._started_at: Optional[float] = None
        self._deadline: Optional[float] = None
        # Global machine-independent spend across every generator of the
        # run, kept in the registry so budgets and observability agree.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stop_reason: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def edges_examined(self) -> int:
        return self.metrics.value(EDGES_COUNTER)

    @property
    def rr_sets(self) -> int:
        return self.metrics.value(RR_SETS_COUNTER)

    @property
    def rr_nodes(self) -> int:
        return self.metrics.value(RR_NODES_COUNTER)

    def adopt_generator(self, gen) -> None:
        """Wire a generator into this run: control hook + metrics source."""
        gen.control = self
        gen.metrics = self.metrics
        self.metrics.attach_source(gen)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the wall clock; called once at the top of ``run()``."""
        self._started_at = self._clock()
        if self.budget.wall_clock_seconds is not None:
            self._deadline = self._started_at + self.budget.wall_clock_seconds

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def active(self) -> bool:
        """True when any cooperative mechanism is attached (fast bail-out)."""
        return (
            not self.budget.unlimited
            or self.token is not None
            or self.faults is not None
        )

    # ------------------------------------------------------------------
    def _stop(self, reason: str, detail: str) -> None:
        self.stop_reason = reason
        raise BudgetExceededError(reason, detail)

    def check(self) -> None:
        """Cheapest check: cancellation + deadline only."""
        if self.token is not None and self.token.cancelled:
            self.stop_reason = "cancelled"
            self.token.raise_if_cancelled()
        if self._deadline is not None and self._clock() >= self._deadline:
            self._stop(
                "deadline",
                f"wall-clock budget of {self.budget.wall_clock_seconds}s "
                f"exhausted after {self.elapsed():.3f}s",
            )

    def on_rr_start(self) -> None:
        """Gate the generation of one more RR set against every cap."""
        self.check()
        budget = self.budget
        if budget.max_rr_sets is not None and self.rr_sets >= budget.max_rr_sets:
            self._stop(
                "num_rr_sets",
                f"RR-set budget of {budget.max_rr_sets} exhausted",
            )
        if (
            budget.max_edges_examined is not None
            and self.edges_examined >= budget.max_edges_examined
        ):
            self._stop(
                "edges_examined",
                f"edge budget of {budget.max_edges_examined} exhausted",
            )
        if budget.max_rr_nodes is not None and self.rr_nodes >= budget.max_rr_nodes:
            self._stop(
                "rr_memory",
                f"RR-collection node budget of {budget.max_rr_nodes} exhausted",
            )

    def on_edges(self, count: int) -> None:
        """Record examined edges; called per activated node inside loops."""
        if count:
            self.metrics.inc(EDGES_COUNTER, count)
            if self.faults is not None:
                self.faults.on_edges(count)
        self.check()
        budget = self.budget
        if (
            budget.max_edges_examined is not None
            and self.edges_examined > budget.max_edges_examined
        ):
            self._stop(
                "edges_examined",
                f"edge budget of {budget.max_edges_examined} exhausted "
                f"mid-generation ({self.edges_examined} examined)",
            )

    def on_rr_complete(self, size: int) -> None:
        """Account one stored RR set; feeds the RR-set fault axis."""
        self.metrics.inc(RR_SETS_COUNTER)
        self.metrics.inc(RR_NODES_COUNTER, size)
        if self.faults is not None:
            self.faults.on_rr_set()

    # ------------------------------------------------------------------
    def maybe_checkpoint(self, builder) -> bool:
        """Round-boundary hook: persist state when a store is attached."""
        if self.checkpoint is None:
            return False
        saved = self.checkpoint.maybe_save(builder)
        if saved:
            self.metrics.inc(CHECKPOINT_SAVES_COUNTER)
        return saved

    def snapshot(self) -> dict:
        """Spend summary recorded into result extras."""
        return {
            "elapsed_seconds": self.elapsed(),
            "edges_examined": self.edges_examined,
            "rr_sets": self.rr_sets,
            "rr_nodes": self.rr_nodes,
            "stop_reason": self.stop_reason,
            "budget": self.budget.as_dict(),
        }
