"""Cooperative cancellation.

A :class:`CancellationToken` is handed to ``run(..., cancel=token)`` and
polled inside every RR-generation loop and sampling phase.  Cancelling is
idempotent, cheap (one attribute write), and safe to do from another thread
— the flag is a plain attribute guarded by the GIL, and the worker observes
it at its next check point.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.exceptions import CancelledError


class CancellationToken:
    """A latch that flips a running algorithm into graceful shutdown."""

    def __init__(self) -> None:
        self._cancelled = False
        self._reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; later calls keep the first reason."""
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> Optional[str]:
        """Why the token fired (None while it has not)."""
        return self._reason

    def raise_if_cancelled(self) -> None:
        """Raise :class:`CancelledError` when the token has fired."""
        if self._cancelled:
            raise CancelledError("cancelled", self._reason or "cancelled")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"cancelled ({self._reason})" if self._cancelled else "armed"
        return f"CancellationToken<{state}>"
