"""Deterministic fault injection for resilience tests.

A :class:`FaultInjector` fires exactly once per event axis, at the Nth RR
set completed, the Nth edge examined, or the Nth I/O call (checkpoint reads
and writes, retry-wrapped graph loads).  ``mode="raise"`` simulates a crash
by raising :class:`~repro.utils.exceptions.InjectedFault`; ``mode="delay"``
simulates a stall by sleeping a seeded-jittered duration through an
injectable ``sleep`` so tests stay instant.

Counting is purely event-driven, so a run with a given RNG seed hits the
fault at the identical point every time — which is what lets the resilience
suite assert bit-identical checkpoint/resume behavior.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError, InjectedFault

_MODES = ("raise", "delay")


class FaultInjector:
    """Fire a deterministic fault at the Nth event of each configured kind."""

    def __init__(
        self,
        at_rr_set: Optional[int] = None,
        at_edge: Optional[int] = None,
        at_io: Optional[int] = None,
        mode: str = "raise",
        delay_seconds: float = 0.01,
        jitter: float = 0.5,
        seed: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        for name, value in (
            ("at_rr_set", at_rr_set),
            ("at_edge", at_edge),
            ("at_io", at_io),
        ):
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1 when given, got {value}"
                )
        if delay_seconds < 0 or jitter < 0:
            raise ConfigurationError("delay_seconds and jitter must be >= 0")
        self.targets: Dict[str, Optional[int]] = {
            "rr_set": at_rr_set,
            "edge": at_edge,
            "io": at_io,
        }
        self.counts: Dict[str, int] = {"rr_set": 0, "edge": 0, "io": 0}
        self.fired: Dict[str, bool] = {"rr_set": False, "edge": False, "io": False}
        self.mode = mode
        self._sleep = sleep
        # The jitter factors are drawn once at construction from a seeded
        # stream, so a given (seed, event order) reproduces identical delays.
        rng = np.random.default_rng(seed)
        self._delays = {
            kind: delay_seconds * (1.0 + jitter * float(rng.random()))
            for kind in ("rr_set", "edge", "io")
        }

    # ------------------------------------------------------------------
    def on_rr_set(self) -> None:
        """Record one completed RR set."""
        self._event("rr_set", 1)

    def on_edges(self, count: int) -> None:
        """Record ``count`` examined edges."""
        if count:
            self._event("edge", count)

    def on_io(self) -> None:
        """Record one I/O call (checkpoint write/read, retried load)."""
        self._event("io", 1)

    # ------------------------------------------------------------------
    def _event(self, kind: str, count: int) -> None:
        before = self.counts[kind]
        self.counts[kind] = before + count
        target = self.targets[kind]
        if target is None or self.fired[kind]:
            return
        if before < target <= self.counts[kind]:
            self.fired[kind] = True
            if self.mode == "raise":
                raise InjectedFault(
                    f"injected fault at {kind} #{target} "
                    f"(counter now {self.counts[kind]})"
                )
            self._sleep(self._delays[kind])

    def pending(self) -> bool:
        """True while at least one configured fault has not fired yet."""
        return any(
            target is not None and not self.fired[kind]
            for kind, target in self.targets.items()
        )
