"""Resilient execution runtime: budgets, cancellation, checkpoints, faults.

Every algorithm in this library runs as an interruptible, resumable,
budget-aware computation:

* :class:`Budget` caps wall-clock time, edges examined, RR sets, and RR
  collection memory; expiry degrades the run to an honest
  ``status="partial"`` result instead of raising.
* :class:`CancellationToken` requests cooperative shutdown from outside.
* :class:`CheckpointStore` persists round-boundary state so a killed run
  resumes bit-identically (see ``docs/ROBUSTNESS.md`` for the format).
* :class:`FaultInjector` deterministically raises or delays at the Nth RR
  set / edge / I/O call, which is how the resilience test suite proves the
  other three work.
"""

from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.runtime.checkpoint import (
    CheckpointStore,
    RestoredCounters,
    coerce_store,
    collection_from_arrays,
    collection_to_arrays,
    counters_from_dict,
    counters_to_dict,
)
from repro.runtime.control import RunControl
from repro.runtime.faults import FaultInjector
from repro.utils.exceptions import (
    BudgetExceededError,
    CancelledError,
    CheckpointError,
    ExecutionInterrupted,
    InjectedFault,
)

__all__ = [
    "Budget",
    "BudgetExceededError",
    "CancellationToken",
    "CancelledError",
    "CheckpointError",
    "CheckpointStore",
    "ExecutionInterrupted",
    "FaultInjector",
    "InjectedFault",
    "RestoredCounters",
    "RunControl",
    "coerce_store",
    "collection_from_arrays",
    "collection_to_arrays",
    "counters_from_dict",
    "counters_to_dict",
]
