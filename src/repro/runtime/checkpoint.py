"""Checkpoint persistence for interruptible runs.

A checkpoint is one compressed ``.npz`` archive holding a JSON metadata
blob (algorithm identity, query parameters, phase state, RNG state,
generator counters) plus the RR pools flattened into data/size arrays.
Writes go through a temp file and ``os.replace`` so a crash mid-write
leaves the previous checkpoint intact — which is exactly the scenario the
fault-injection tests exercise.

The format is deliberately self-validating: :meth:`CheckpointStore.load`
raises :class:`~repro.utils.exceptions.CheckpointError` (with the
underlying cause chained) on truncated archives, and algorithms verify the
metadata matches the resuming query before trusting it.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.rrsets.base import GenerationCounters
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import CheckpointError

PathLike = Union[str, "os.PathLike[str]"]

FORMAT_VERSION = 1


def _json_default(value):
    """Coerce numpy scalars that leak into metadata (counters, seed lists)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"checkpoint metadata must be JSON-able, got {type(value).__name__}"
    )


# ----------------------------------------------------------------------
# RRCollection <-> flat arrays
# ----------------------------------------------------------------------

def collection_to_arrays(coll: RRCollection) -> Dict[str, np.ndarray]:
    """Flatten a collection into ``data`` (concatenated sets) + ``sizes``.

    The collection already stores its pool flat, so this is two array views
    (``data`` widened to int64 to keep the archive format stable).
    """
    return {
        "data": coll.rr_nodes.astype(np.int64),
        "sizes": coll.set_sizes(),
        "n": np.int64(coll.n),
    }


def collection_from_arrays(
    data: np.ndarray, sizes: np.ndarray, n: int
) -> RRCollection:
    """Rebuild a collection from flat arrays (one bulk append)."""
    coll = RRCollection(int(n))
    if len(sizes):
        coll.add_batch(data, sizes)
    return coll


def counters_to_dict(counters: GenerationCounters) -> Dict[str, int]:
    return {
        "edges_examined": counters.edges_examined,
        "rng_draws": counters.rng_draws,
        "nodes_added": counters.nodes_added,
        "sets_generated": counters.sets_generated,
        "sentinel_hits": counters.sentinel_hits,
    }


def counters_from_dict(payload: Dict[str, int]) -> GenerationCounters:
    return GenerationCounters(**{k: int(v) for k, v in payload.items()})


class RestoredCounters:
    """Counter-only stand-in for a finished generator.

    ``IMAlgorithm._result_from`` only reads ``generator.counters``; after a
    resume, phases that already completed exist only as their counters, and
    this shim lets the result assembly treat them uniformly.
    """

    def __init__(self, payload: Dict[str, int]) -> None:
        self.counters = counters_from_dict(payload)


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------

class CheckpointStore:
    """Atomic save/load of run state, with a configurable save interval.

    ``every`` thins round-boundary saves: ``maybe_save`` persists only every
    ``every``-th call (the first call always saves, so short runs still
    leave a checkpoint behind).  ``fault_injector`` — when set by the run
    control — receives one I/O event per physical read or write, which is
    how the test suite kills a run "during a checkpoint".
    """

    def __init__(self, path: PathLike, every: int = 1) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        self.path = os.fspath(path)
        self.every = int(every)
        self.fault_injector = None
        self._calls = 0

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(
        self,
        meta: dict,
        pools: Optional[Dict[str, RRCollection]] = None,
    ) -> None:
        """Persist ``meta`` (JSON-able) plus named RR pools atomically."""
        if self.fault_injector is not None:
            self.fault_injector.on_io()
        arrays: Dict[str, np.ndarray] = {}
        pool_names = []
        for name, coll in (pools or {}).items():
            if "__" in name:
                raise CheckpointError(f"pool name {name!r} may not contain '__'")
            flat = collection_to_arrays(coll)
            arrays[f"{name}__data"] = flat["data"]
            arrays[f"{name}__sizes"] = flat["sizes"]
            arrays[f"{name}__n"] = flat["n"]
            pool_names.append(name)
        envelope = {
            "format_version": FORMAT_VERSION,
            "pools": pool_names,
            "meta": meta,
        }
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    envelope=np.str_(json.dumps(envelope, default=_json_default)),
                    **arrays,
                )
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
                os.unlink(tmp)

    def maybe_save(self, builder) -> bool:
        """Call ``builder() -> (meta, pools)`` and save on interval ticks."""
        self._calls += 1
        if (self._calls - 1) % self.every != 0:
            return False
        meta, pools = builder()
        self.save(meta, pools)
        return True

    def load(self) -> Tuple[dict, Dict[str, RRCollection]]:
        """Read back ``(meta, pools)``; raises CheckpointError when invalid."""
        if self.fault_injector is not None:
            self.fault_injector.on_io()
        try:
            with np.load(self.path, allow_pickle=False) as archive:
                envelope = json.loads(str(archive["envelope"]))
                if envelope.get("format_version") != FORMAT_VERSION:
                    raise CheckpointError(
                        f"{self.path}: unsupported checkpoint format "
                        f"{envelope.get('format_version')!r}"
                    )
                pools = {
                    name: collection_from_arrays(
                        archive[f"{name}__data"],
                        archive[f"{name}__sizes"],
                        int(archive[f"{name}__n"]),
                    )
                    for name in envelope["pools"]
                }
                return envelope["meta"], pools
        except CheckpointError:
            raise
        except (
            OSError,
            ValueError,
            KeyError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ) as exc:
            raise CheckpointError(
                f"{self.path}: cannot read checkpoint: {exc}"
            ) from exc

    def clear(self) -> None:
        """Delete the checkpoint file if present (after a completed run)."""
        if self.exists():
            os.unlink(self.path)


def coerce_store(
    checkpoint: Union[None, PathLike, CheckpointStore],
    every: int = 1,
) -> Optional[CheckpointStore]:
    """Accept a path or a ready store (or None) at API boundaries."""
    if checkpoint is None:
        return None
    if isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint, every=every)
