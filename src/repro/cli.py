"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's workflow:

* ``generate`` — build a synthetic graph (optionally weighted) and save it.
* ``summarize`` — print Table-2 style statistics of a graph file.
* ``run`` — run an IM algorithm on a graph file and print the seeds.
* ``evaluate`` — Monte-Carlo spread of an explicit seed list.
* ``calibrate`` — find the WC-variant theta / uniform p for a target
  average RR-set size.
* ``rr-stats`` — average RR-set size and generation cost per generator.
* ``experiment`` — regenerate one of the paper's figures/tables.
* ``serve`` / ``query`` — run the resilient multi-tenant query daemon and
  talk to it.

Every command accepts ``--seed`` for reproducibility.  Ctrl-C during
``run`` cancels cooperatively: the partial result (with its
``complete=False`` certificate) is printed and the process exits with
code 130 instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

import numpy as np

from repro.core.registry import available_algorithms, get_algorithm
from repro.estimation.montecarlo import estimate_spread
from repro.experiments import calibration, figures, workloads
from repro.experiments.reporting import render_table
from repro.graphs import generators, io, stats, weights
from repro.graphs.csr import CSRGraph
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.budget import Budget
from repro.utils.exceptions import ReproError

#: exit code for a run interrupted by Ctrl-C (after printing the partial
#: result + certificate) — 128 + SIGINT, distinct from error exit 2
EXIT_INTERRUPTED = 130

_GENERATOR_CLASSES = {
    "vanilla": VanillaICGenerator,
    "subsim": SubsimICGenerator,
    "fast-vanilla": FastVanillaICGenerator,
    "lt": LTGenerator,
}

_FIGURES = {
    "table2": lambda args: workloads.table2_rows(scale=args.scale, seed=args.seed),
    "fig1": lambda args: figures.figure1_rows(scale=args.scale, seed=args.seed),
    "fig2": lambda args: figures.figure2_rows(scale=args.scale, seed=args.seed),
    "fig3": lambda args: figures.figure3_rows(scale=args.scale, seed=args.seed),
    "fig4": lambda args: figures.figure4_rows(scale=args.scale, seed=args.seed),
    "fig5": lambda args: figures.figure5_rows(scale=args.scale, seed=args.seed),
    "fig6": lambda args: figures.figure6_rows(scale=args.scale, seed=args.seed),
    "fig7": lambda args: figures.figure7_rows(scale=args.scale, seed=args.seed),
}


def _load(path: str, retries: int = 0) -> CSRGraph:
    """Load a graph file; transient I/O failures retry when ``retries`` > 0.

    Text edge lists go through :func:`repro.graphs.io.load_graph_auto`,
    which prefers (and maintains) a fresh ``<path>.graph.npz`` binary
    sidecar — repeat CLI invocations on large text graphs skip the parse.
    """
    return io.load_graph_auto(path, retries=retries)


def _make_shard_pool(args, graph: CSRGraph, metrics):
    """One warm :class:`ShardPool` shared by every query of a ``--ks`` run."""
    if args.shards is None:
        if args.spill_dir:
            raise ReproError("--spill-dir requires --shards")
        return None
    from repro.rrsets.shardpool import ShardPool

    return ShardPool(
        graph, args.shards, spill_dir=args.spill_dir, metrics=metrics
    )


def _write_json(path: str, payload) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _save(graph: CSRGraph, path: str) -> None:
    if path.endswith(".npz"):
        io.save_npz(graph, path)
    else:
        io.save_edge_list(graph, path)


def _apply_weights(graph: CSRGraph, scheme: str, seed: int) -> CSRGraph:
    """Apply a weight scheme named like "wc", "wc-variant:2.5", "uniform:0.01"."""
    return weights.apply_scheme(graph, scheme, seed=seed)


class _SigintCancel:
    """Turn Ctrl-C into a cooperative cancellation instead of a traceback.

    While active, the first SIGINT cancels the run's
    :class:`~repro.runtime.cancellation.CancellationToken`, so the
    algorithm degrades to a ``status="partial"`` result whose certificate
    the CLI then prints; a second SIGINT restores the default behavior
    (hard exit) in case the run ignores the token.
    """

    def __init__(self) -> None:
        from repro.runtime.cancellation import CancellationToken

        self.token = CancellationToken()
        self._previous = None

    def _handle(self, signum, frame) -> None:
        self.token.cancel("cancelled")
        print("interrupt: finishing with partial results "
              "(Ctrl-C again to force quit)", file=sys.stderr)
        if self._previous is not None:
            signal.signal(signal.SIGINT, self._previous)

    def __enter__(self) -> "_SigintCancel":
        try:
            self._previous = signal.signal(signal.SIGINT, self._handle)
        except ValueError:  # not the main thread; run uninterruptible
            self._previous = None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is not None:
            signal.signal(signal.SIGINT, self._previous)
            self._previous = None


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------

def cmd_generate(args) -> int:
    if args.model == "pa":
        graph = generators.preferential_attachment(
            args.n, max(1, int(args.degree)), seed=args.seed,
            directed=not args.undirected, reciprocal=args.reciprocal,
        )
    elif args.model == "er":
        graph = generators.erdos_renyi(
            args.n, args.degree, seed=args.seed, directed=not args.undirected
        )
    elif args.model == "ws":
        graph = generators.watts_strogatz(
            args.n, max(1, int(args.degree)), args.beta, seed=args.seed
        )
    else:  # dataset stand-in
        graph = workloads.make_dataset(args.model, scale=args.scale, seed=args.seed)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    _save(graph, args.output)
    print(f"wrote {graph.n} nodes / {graph.m} edges to {args.output}")
    return 0


def cmd_summarize(args) -> int:
    graph = _load(args.graph)
    summary = stats.graph_summary(graph)
    print(render_table([summary.as_row()], title=args.graph))
    return 0


def _run_payload(result, args, graph) -> dict:
    """The JSON block ``run`` prints for one query."""
    payload = {
        "algorithm": result.algorithm,
        "status": result.status,
        "seeds": result.seeds,
        "runtime_seconds": round(result.runtime_seconds, 4),
        "num_rr_sets": result.num_rr_sets,
        "average_rr_size": round(result.average_rr_size, 2),
        "certified_ratio": round(result.approx_ratio_certified, 4),
    }
    backend_cert = result.extras.get("coverage_backend")
    if backend_cert is not None:
        payload["coverage_backend"] = {
            key: round(value, 4) if isinstance(value, float) else value
            for key, value in backend_cert.items()
        }
    if result.is_partial:
        from repro.core.certify import partial_certificate

        certificate = partial_certificate(result)
        payload["stop_reason"] = result.stop_reason
        payload["certificate"] = {
            "ratio": round(certificate.ratio, 4),
            "lower_bound": round(certificate.lower_bound, 2),
            "upper_bound": (
                certificate.upper_bound
                if certificate.upper_bound == float("inf")
                else round(certificate.upper_bound, 2)
            ),
            "complete": certificate.complete,
        }
    if args.evaluate:
        spread = estimate_spread(
            graph, result.seeds,
            model="lt" if args.algorithm.endswith("-lt") else "ic",
            num_simulations=args.simulations, seed=args.seed,
        )
        payload["expected_spread"] = round(spread.mean, 2)
    return payload


def cmd_run(args) -> int:
    if (args.k is None) == (args.ks is None):
        raise ReproError("exactly one of --k or --ks is required")
    ks = None
    if args.ks is not None:
        ks = [int(s) for s in args.ks.split(",") if s.strip()]
        if not ks or any(k < 1 for k in ks):
            raise ReproError(f"--ks needs positive integers, got {args.ks!r}")
        if args.checkpoint or args.resume or args.report or args.trace_out:
            raise ReproError(
                "--ks is incompatible with --checkpoint/--resume/--report/"
                "--trace-out; those artifacts describe a single run"
            )
    if args.reuse_pool and ks is None:
        raise ReproError("--reuse-pool requires --ks (a multi-query run)")
    if args.reuse_pool and (args.checkpoint or args.resume):
        raise ReproError(
            "--reuse-pool cannot be combined with --checkpoint/--resume: "
            "sessions persist through QuerySession.save(), not run "
            "checkpoints"
        )
    graph = _load(args.graph, retries=args.load_retries)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    kwargs = {}
    if args.max_rr_sets and args.algorithm in ("imm", "tim+", "imm-lt"):
        kwargs["max_rr_sets"] = args.max_rr_sets

    def make_budget():
        if args.timeout is None and args.max_edges is None:
            return None
        return Budget(
            wall_clock_seconds=args.timeout,
            max_edges_examined=args.max_edges,
        )

    if args.resume and not args.checkpoint:
        raise ReproError("--resume requires --checkpoint")
    if args.batch_size < 1:
        raise ReproError(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.resume and args.workers > 1:
        raise ReproError(
            "--workers > 1 cannot be combined with --resume: resuming "
            "replays the checkpoint's sequential RNG schedule, which "
            "multiprocess fan-out does not follow. Re-run with --workers 1 "
            "to resume, or drop --resume to start a fresh parallel run."
        )
    batched_mode = None if args.batched_mode == "auto" else args.batched_mode
    want_metrics = bool(args.metrics_out or args.report)
    want_trace = bool(args.trace_out or args.report)
    metrics = None
    if want_metrics:
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()

    if ks is not None:
        queries = []
        cancelled = False
        with _SigintCancel() as interrupt:
            if args.reuse_pool:
                from repro.engine.session import QuerySession

                session = QuerySession(
                    graph, args.algorithm, seed=args.seed,
                    shards=args.shards, spill_dir=args.spill_dir,
                    coverage_backend=args.coverage_backend,
                    prefetch=args.prefetch, **kwargs
                )
                try:
                    for k in ks:
                        result = session.maximize(
                            k,
                            eps=args.eps,
                            budget=make_budget(),
                            cancel=interrupt.token,
                            batch_size=args.batch_size,
                            workers=args.workers,
                            batched_mode=batched_mode,
                            metrics=metrics,
                        )
                        entry = _run_payload(result, args, graph)
                        entry["k"] = k
                        entry["session"] = result.extras.get("session")
                        queries.append(entry)
                        if interrupt.token.cancelled:
                            cancelled = True
                            break
                    session_block = {
                        "reuse_pool": True,
                        "sets_generated": session.metrics.value(
                            "bank.sets_generated"
                        ),
                        "sets_reused": session.metrics.value("bank.sets_reused"),
                    }
                finally:
                    session.close()
            else:
                algo = get_algorithm(args.algorithm, graph, **kwargs)
                pool = _make_shard_pool(args, graph, metrics)
                try:
                    for k in ks:
                        result = algo.run(
                            k,
                            eps=args.eps,
                            seed=args.seed,
                            budget=make_budget(),
                            cancel=interrupt.token,
                            batch_size=args.batch_size,
                            workers=args.workers,
                            batched_mode=batched_mode,
                            metrics=metrics,
                            shards=pool,
                            coverage_backend=args.coverage_backend,
                            prefetch=args.prefetch,
                        )
                        entry = _run_payload(result, args, graph)
                        entry["k"] = k
                        queries.append(entry)
                        if interrupt.token.cancelled:
                            cancelled = True
                            break
                finally:
                    if pool is not None:
                        pool.close()
                session_block = {"reuse_pool": False}
        if args.metrics_out:
            _write_json(args.metrics_out, metrics.snapshot())
        print(json.dumps(
            {"queries": queries, "session": session_block},
            indent=2, default=int,
        ))
        return EXIT_INTERRUPTED if cancelled else 0

    algo = get_algorithm(args.algorithm, graph, **kwargs)
    with _SigintCancel() as interrupt:
        result = algo.run(
            args.k,
            eps=args.eps,
            seed=args.seed,
            budget=make_budget(),
            cancel=interrupt.token,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            batch_size=args.batch_size,
            workers=args.workers,
            batched_mode=batched_mode,
            metrics=metrics,
            trace=want_trace,
            shards=args.shards,
            spill_dir=args.spill_dir,
            coverage_backend=args.coverage_backend,
            prefetch=args.prefetch,
        )
    if args.metrics_out:
        _write_json(args.metrics_out, metrics.snapshot())
    if args.trace_out:
        _write_json(args.trace_out, result.extras.get("trace", {}))
    if args.report:
        from repro.observability import build_run_report

        build_run_report(
            result,
            graph,
            seed=args.seed,
            metrics=metrics,
            trace=result.extras.get("trace"),
        ).write(args.report)
    print(json.dumps(_run_payload(result, args, graph), indent=2, default=int))
    if result.is_partial and result.stop_reason == "cancelled":
        return EXIT_INTERRUPTED
    return 0


def cmd_evaluate(args) -> int:
    graph = _load(args.graph)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    seeds = [int(s) for s in args.seeds.split(",")]
    spread = estimate_spread(
        graph, seeds, model=args.model,
        num_simulations=args.simulations, seed=args.seed,
    )
    lo, hi = spread.confidence_interval()
    print(f"expected spread: {spread.mean:.2f}  (95% CI {lo:.2f} - {hi:.2f})")
    return 0


def cmd_audit(args) -> int:
    from repro.core.certify import certify_result
    from repro.estimation.attribution import (
        attribution_table,
        marginal_contributions,
    )

    graph = _load(args.graph)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    seeds = [int(s) for s in args.seeds.split(",")]
    cert = certify_result(
        graph, seeds, k=args.k, num_rr=args.num_rr,
        delta=args.delta, seed=args.seed,
    )
    print(
        f"certificate: I(S) >= {cert.ratio:.4f} * OPT_{args.k} "
        f"(lower {cert.lower_bound:.2f}, upper {cert.upper_bound:.2f}, "
        f"confidence {1 - cert.delta:g})"
    )
    if args.attribution:
        records = marginal_contributions(
            graph, seeds, num_simulations=args.simulations, seed=args.seed
        )
        print(render_table(attribution_table(records),
                           title="leave-one-out attribution"))
    return 0


def cmd_calibrate(args) -> int:
    graph = _load(args.graph)
    if args.mode == "wc-variant":
        value, _, achieved = calibration.calibrate_wc_variant(
            graph, args.target, seed=args.seed
        )
        label = "theta"
    else:
        value, _, achieved = calibration.calibrate_uniform_ic(
            graph, args.target, seed=args.seed
        )
        label = "p"
    print(f"{label} = {value:.6g}  (average RR size {achieved:.1f}, "
          f"target {args.target})")
    return 0


def cmd_rr_stats(args) -> int:
    graph = _load(args.graph)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    rows = []
    for name in args.generators.split(","):
        try:
            cls = _GENERATOR_CLASSES[name]
        except KeyError:
            raise ReproError(
                f"unknown generator {name!r}; choose from "
                f"{sorted(_GENERATOR_CLASSES)}"
            ) from None
        generator = cls(graph)
        rng = np.random.default_rng(args.seed)
        import time

        start = time.perf_counter()
        for _ in range(args.count):
            generator.generate(rng)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "generator": name,
                "rr_sets": args.count,
                "runtime_s": round(elapsed, 4),
                "avg_rr_size": round(generator.counters.average_size(), 2),
                "edges_examined": generator.counters.edges_examined,
            }
        )
    print(render_table(rows, title="RR generation statistics"))
    return 0


def cmd_experiment(args) -> int:
    rows = _FIGURES[args.name](args)
    print(render_table(rows, title=f"{args.name} (scale={args.scale})"))
    return 0


def cmd_report(args) -> int:
    from repro.experiments.reportgen import generate_report

    text = generate_report(args.results_dir, output_path=args.output)
    if args.output:
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def cmd_profile(args) -> int:
    from repro.experiments.profiles import profile_rr_sizes

    graph = _load(args.graph)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    sentinel = (
        [int(s) for s in args.sentinels.split(",")] if args.sentinels else None
    )
    profile = profile_rr_sizes(
        graph,
        num_samples=args.count,
        sentinel_seeds=sentinel,
        seed=args.seed,
    )
    print(render_table([profile.summary_row()], title="RR-set size profile"))
    print(profile.histogram_chart())
    return 0


def _parse_graph_specs(specs: List[str]) -> List[tuple]:
    """Parse repeated ``--graph NAME=PATH`` arguments."""
    parsed = []
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                f"--graph expects NAME=PATH, got {spec!r}"
            )
        parsed.append((name, path))
    return parsed


def _parse_tenant_byte_caps(specs) -> dict:
    """``NAME=BYTES`` pairs (repeatable ``--tenant-byte-cap``) to a dict."""
    caps = {}
    for spec in specs or []:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise ReproError(
                f"--tenant-byte-cap expects NAME=BYTES, got {spec!r}"
            )
        try:
            caps[name] = int(value)
        except ValueError:
            raise ReproError(
                f"--tenant-byte-cap {spec!r}: {value!r} is not an integer"
            )
    return caps


def cmd_serve(args) -> int:
    from repro.serving import GraphRegistry, QueryServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        algorithm=args.algorithm,
        eps=args.eps,
        seed=args.seed,
        byte_cap=args.byte_cap,
        tenant_byte_caps=_parse_tenant_byte_caps(args.tenant_byte_cap),
        coverage_backend=args.coverage_backend,
        prefetch=args.prefetch,
        default_deadline=args.default_deadline,
        lifetime_budget=Budget(
            max_edges_examined=args.max_edges,
            max_rr_sets=args.max_rr_sets,
        ),
        query_retries=args.query_retries,
        snapshot_dir=args.snapshot_dir,
        snapshot_every=args.snapshot_every,
        shards=args.shards,
        spill_dir=args.spill_dir,
    )
    registry = GraphRegistry()
    for name, path in _parse_graph_specs(args.graph):
        registry.add_path(name, path, weight_scheme=args.weights, seed=args.seed)
    server = QueryServer(config, registry=registry)
    server.start()
    host, port = server.address
    # flush: supervisors (and CI) read this banner through a pipe to
    # learn the bound port, so it must not sit in a block buffer.
    print(f"serving {registry.names()} on http://{host}:{port} "
          f"({config.workers} workers, algorithm {config.algorithm})",
          flush=True)
    try:
        while True:
            signal.pause()
    except KeyboardInterrupt:
        print("shutting down: draining workers and snapshotting sessions",
              file=sys.stderr)
    finally:
        server.stop()
    return 0


def cmd_query(args) -> int:
    from repro.serving import ServeClient

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    status_code, payload = client.query(
        args.graph,
        args.k,
        tenant=args.tenant,
        eps=args.eps,
        deadline_seconds=args.deadline,
    )
    print(json.dumps(payload, indent=2, default=float))
    if status_code == 200:
        return 0
    if status_code == 429:
        return 3  # shed: the caller should back off and retry
    return 2


def _parse_edge_spec(text: str, with_prob: bool):
    parts = text.split(":")
    want = 3 if with_prob else 2
    if len(parts) != want:
        shape = "SRC:DST:PROB" if with_prob else "SRC:DST"
        raise ReproError(f"edge spec {text!r} must look like {shape}")
    try:
        if with_prob:
            return [int(parts[0]), int(parts[1]), float(parts[2])]
        return [int(parts[0]), int(parts[1])]
    except ValueError as exc:
        raise ReproError(f"invalid edge spec {text!r}: {exc}") from None


def cmd_delta(args) -> int:
    from repro.serving import ServeClient

    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        if not isinstance(spec, dict):
            raise ReproError("--file must hold a JSON object")
        inserts = spec.get("inserts")
        deletes = spec.get("deletes")
        updates = spec.get("updates")
    else:
        inserts = [_parse_edge_spec(s, True) for s in args.insert or []]
        deletes = [_parse_edge_spec(s, False) for s in args.delete or []]
        updates = [_parse_edge_spec(s, True) for s in args.update or []]
    if not (inserts or deletes or updates):
        raise ReproError(
            "nothing to apply: give --insert/--delete/--update or --file"
        )
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    status_code, payload = client.delta(
        args.graph, inserts=inserts, deletes=deletes, updates=updates
    )
    print(json.dumps(payload, indent=2, default=float))
    return 0 if status_code == 200 else 2


def cmd_stability(args) -> int:
    from repro.experiments.stability import stability_report

    graph = _load(args.graph)
    if args.weights:
        graph = _apply_weights(graph, args.weights, args.seed)
    report = stability_report(
        graph,
        args.algorithm,
        args.k,
        eps=args.eps,
        runs=args.runs,
        num_simulations=args.simulations,
        seed=args.seed,
    )
    print(render_table([report.summary_row()], title="seed-set stability"))
    print(f"core seeds (in every run): {sorted(report.core_seeds)}")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SUBSIM + HIST influence maximization (SIGMOD 2020 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="build a synthetic graph")
    p.add_argument(
        "--model",
        default="pa",
        choices=["pa", "er", "ws", *workloads.DATASET_NAMES],
    )
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--degree", type=float, default=4.0)
    p.add_argument("--beta", type=float, default=0.1, help="WS rewiring prob")
    p.add_argument("--reciprocal", type=float, default=0.0)
    p.add_argument("--undirected", action="store_true")
    p.add_argument("--scale", type=float, default=0.1, help="dataset scale")
    p.add_argument("--weights", default=None, help="e.g. wc, uniform:0.01")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("summarize", help="print graph statistics")
    p.add_argument("graph")
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("run", help="run an IM algorithm")
    p.add_argument("graph")
    p.add_argument("--algorithm", default="hist+subsim",
                   choices=available_algorithms())
    p.add_argument("--k", type=int, default=None,
                   help="seed-set size (exactly one of --k / --ks)")
    p.add_argument("--ks", default=None, metavar="K1,K2,...",
                   help="comma-separated seed-set sizes: run one query per "
                        "k and print a {queries, session} payload")
    p.add_argument("--reuse-pool", action="store_true",
                   help="serve --ks queries from one shared RR-set session "
                        "(later queries reuse earlier queries' RR sets)")
    p.add_argument("--eps", type=float, default=0.1)
    p.add_argument("--weights", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-rr-sets", type=int, default=None)
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; expiry returns a partial result")
    p.add_argument("--max-edges", type=int, default=None,
                   help="edge-examination budget (machine-independent)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="persist round-boundary state to this .npz file")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="save every N-th round boundary (default 1)")
    p.add_argument("--resume", action="store_true",
                   help="continue from --checkpoint if it exists")
    p.add_argument("--load-retries", type=int, default=0, metavar="N",
                   help="retry transient graph-load failures up to N times")
    p.add_argument("--batch-size", type=int, default=1, metavar="B",
                   help="grow B RR sets per vectorized batch (1 = exact "
                        "sequential semantics, the default)")
    p.add_argument("--workers", type=int, default=1, metavar="W",
                   help="shard RR generation across W processes "
                        "(incompatible with --resume)")
    p.add_argument("--shards", type=int, default=None, metavar="S",
                   help="run on a persistent pool of S shard workers "
                        "(shared-memory graph, shard-resident RR banks, "
                        "scatter-gather selection); incompatible with "
                        "--workers > 1 and --checkpoint/--resume")
    p.add_argument("--spill-dir", default=None, metavar="DIR",
                   help="spill cold shard-resident RR pools (and shard "
                        "checkpoints) to this directory; requires --shards")
    p.add_argument("--batched-mode", default="auto",
                   choices=["auto", "ic", "subsim", "lt"],
                   help="vectorized kernel for the batched engine: auto "
                        "keeps each generator's native kernel; ic forces "
                        "per-edge coins, subsim bucket-skipping, lt the "
                        "backward live-edge walk (only meaningful with "
                        "--batch-size > 1 or --workers > 1)")
    p.add_argument("--coverage-backend", default=None,
                   choices=["exact", "sketch", "auto"],
                   help="how selection reads the RR pool: exact "
                        "(inverted-CSR, bit-identical default), sketch "
                        "(per-node HLL rows — much smaller at huge theta, "
                        "certified-approximate bounds), or auto (sketch "
                        "only when the expected pool size is large)")
    p.add_argument("--prefetch", default=None,
                   choices=["off", "next-round"],
                   help="speculative pipelining of the doubling loop: "
                        "next-round overlaps next-round RR generation with "
                        "this round's selection/validation (bit-identical "
                        "results); off keeps the serial loop")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics-registry snapshot "
                        "(counters, gauges, histograms) as JSON")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the structured phase trace (span tree with "
                        "wall time, counter deltas, pool memory) as JSON")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write a full RunReport artifact (graph "
                        "fingerprint, config, counters, certificate); "
                        "implies metrics and tracing")
    p.add_argument("--evaluate", action="store_true")
    p.add_argument("--simulations", type=int, default=500)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("evaluate", help="Monte-Carlo spread of given seeds")
    p.add_argument("graph")
    p.add_argument("--seeds", required=True, help="comma-separated node ids")
    p.add_argument("--model", default="ic", choices=["ic", "lt"])
    p.add_argument("--weights", default=None)
    p.add_argument("--simulations", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("audit", help="certify a seed set + attribute spread")
    p.add_argument("graph")
    p.add_argument("--seeds", required=True, help="comma-separated node ids")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--num-rr", type=int, default=20_000)
    p.add_argument("--delta", type=float, default=0.01)
    p.add_argument("--weights", default=None)
    p.add_argument("--attribution", action="store_true")
    p.add_argument("--simulations", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("calibrate", help="tune theta/p for a target RR size")
    p.add_argument("graph")
    p.add_argument("--mode", default="wc-variant",
                   choices=["wc-variant", "uniform"])
    p.add_argument("--target", type=float, required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("rr-stats", help="RR generation cost per generator")
    p.add_argument("graph")
    p.add_argument("--generators", default="vanilla,subsim")
    p.add_argument("--count", type=int, default=1000)
    p.add_argument("--weights", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_rr_stats)

    p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p.add_argument("name", choices=sorted(_FIGURES))
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("report", help="aggregate benchmark results")
    p.add_argument("--results-dir", default="benchmarks/results")
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("profile", help="RR-set size distribution")
    p.add_argument("graph")
    p.add_argument("--count", type=int, default=1000)
    p.add_argument("--weights", default=None)
    p.add_argument("--sentinels", default=None,
                   help="comma-separated ids enabling sentinel stop")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("serve", help="run the multi-tenant query daemon")
    p.add_argument("--graph", action="append", required=True,
                   metavar="NAME=PATH",
                   help="register a graph file under NAME (repeatable)")
    p.add_argument("--weights", default=None,
                   help="weight scheme applied to every loaded graph")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8337,
                   help="bind port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--max-pending", type=int, default=8,
                   help="dispatch-queue bound; excess requests shed with 429")
    p.add_argument("--algorithm", default="subsim",
                   choices=available_algorithms())
    p.add_argument("--eps", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--byte-cap", type=int, default=None,
                   help="per-session RR-bank byte cap (eviction between "
                        "queries)")
    p.add_argument("--tenant-byte-cap", action="append", default=None,
                   metavar="NAME=BYTES",
                   help="per-tenant override of --byte-cap (repeatable); "
                        "tenants not listed fall back to the global cap")
    p.add_argument("--coverage-backend", default="exact",
                   choices=["exact", "sketch", "auto"],
                   help="coverage backend for every tenant session: exact "
                        "inverted-CSR selection, sketch HLL rows, or auto")
    p.add_argument("--prefetch", default="off",
                   choices=["off", "next-round"],
                   help="speculative pipelining for every tenant query: "
                        "next-round overlaps RR generation with selection "
                        "(bit-identical results); off keeps the serial loop")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS")
    p.add_argument("--max-edges", type=int, default=None,
                   help="lifetime edge-examination budget; exhaustion sheds "
                        "new requests")
    p.add_argument("--max-rr-sets", type=int, default=None,
                   help="lifetime RR-set budget; exhaustion sheds new "
                        "requests")
    p.add_argument("--query-retries", type=int, default=1)
    p.add_argument("--snapshot-dir", default=None,
                   help="session snapshot directory (enables crash recovery)")
    p.add_argument("--snapshot-every", type=int, default=1)
    p.add_argument("--shards", type=int, default=None, metavar="S",
                   help="back every tenant session with a persistent pool "
                        "of S shard workers (incompatible with "
                        "--snapshot-dir)")
    p.add_argument("--spill-dir", default=None, metavar="DIR",
                   help="root directory for shard spill/checkpoint files; "
                        "requires --shards")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query", help="send one query to a running daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8337)
    p.add_argument("--graph", required=True)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--tenant", default="default")
    p.add_argument("--eps", type=float, default=None)
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="client-side HTTP timeout")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "delta", help="stream an edge delta to a running daemon"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8337)
    p.add_argument("--graph", required=True)
    p.add_argument("--insert", action="append", metavar="SRC:DST:PROB",
                   help="insert one edge (repeatable)")
    p.add_argument("--delete", action="append", metavar="SRC:DST",
                   help="delete one edge (repeatable)")
    p.add_argument("--update", action="append", metavar="SRC:DST:PROB",
                   help="reweight one edge (repeatable)")
    p.add_argument("--file", default=None, metavar="JSON",
                   help="JSON file with inserts/deletes/updates lists "
                        "(overrides the per-edge flags)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="client-side HTTP timeout")
    p.set_defaults(func=cmd_delta)

    p = sub.add_parser("stability", help="seed-set stability across runs")
    p.add_argument("graph")
    p.add_argument("--algorithm", default="subsim",
                   choices=available_algorithms())
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--eps", type=float, default=0.3)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--simulations", type=int, default=200)
    p.add_argument("--weights", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_stability)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A Ctrl-C outside a cancellable run (or a forced second one):
        # still no traceback, and the exit code states what happened.
        print("error: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
