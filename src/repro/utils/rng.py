"""Random-number-generator plumbing.

All stochastic components in this library accept either ``None`` (fresh
entropy), an integer seed, or a ready :class:`numpy.random.Generator`.
:func:`as_generator` normalises those three spellings; experiments that need
several independent streams use :func:`spawn_generators`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed spelling.

    Passing a generator returns it unchanged so callers can share one stream;
    passing an int gives a reproducible stream; ``None`` draws OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Independence comes from ``SeedSequence.spawn``; the parent seed fully
    determines every child, so experiment sweeps stay reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a child seed sequence from the generator's own bit stream.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def random_unit(rng: np.random.Generator) -> float:
    """Draw a uniform float in the open interval (0, 1).

    ``Generator.random`` may return exactly 0.0, which breaks ``log(U)``
    style transforms; this helper redraws until the value is positive.
    """
    value = rng.random()
    while value <= 0.0:
        value = rng.random()
    return value


def optional_seed(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng`` if given, otherwise a freshly seeded generator."""
    return rng if rng is not None else np.random.default_rng()
