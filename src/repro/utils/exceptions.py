"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An algorithm or component received invalid parameters."""


class GraphFormatError(ReproError):
    """A graph file or edge list could not be parsed or validated."""


class CalibrationError(ReproError):
    """Calibration failed to find parameters hitting the requested target."""


class ExecutionInterrupted(ReproError):
    """A run was stopped cooperatively before its natural termination.

    Raised inside RR-generation loops and algorithm sampling phases; the
    algorithms catch it and degrade to a ``status="partial"`` result, so it
    should never escape :meth:`IMAlgorithm.run`.  ``reason`` is a short
    machine-readable token (e.g. ``"deadline"``, ``"edges_examined"``,
    ``"cancelled"``) recorded as the result's ``stop_reason``.
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or reason)
        self.reason = reason


class BudgetExceededError(ExecutionInterrupted):
    """A :class:`~repro.runtime.budget.Budget` cap was reached mid-run."""


class CancelledError(ExecutionInterrupted):
    """A :class:`~repro.runtime.cancellation.CancellationToken` fired."""


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from an incompatible run."""


class InjectedFault(ReproError):
    """Deliberate failure raised by the deterministic fault injector.

    Deliberately *not* an :class:`ExecutionInterrupted`: it simulates a
    crash (process kill, disk error), so algorithms must not absorb it into
    a graceful partial result — it propagates out of ``run()`` and the
    checkpoint/resume machinery is what recovers from it.
    """
