"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An algorithm or component received invalid parameters."""


class GraphFormatError(ReproError):
    """A graph file or edge list could not be parsed or validated."""


class CalibrationError(ReproError):
    """Calibration failed to find parameters hitting the requested target."""
