"""Shared utilities: RNG handling, timing, validation, and exceptions."""

from repro.utils.exceptions import (
    CalibrationError,
    ConfigurationError,
    GraphFormatError,
    ReproError,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch, Timer

__all__ = [
    "CalibrationError",
    "ConfigurationError",
    "GraphFormatError",
    "ReproError",
    "Stopwatch",
    "Timer",
    "as_generator",
    "spawn_generators",
]
