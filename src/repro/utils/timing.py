"""Lightweight timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """Context manager measuring wall-clock time of a block.

    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start


class Stopwatch:
    """Accumulates named wall-clock spans across repeated start/stop cycles.

    Used by the multi-phase algorithms (e.g. HIST) to attribute time to the
    sentinel-selection and IM-sentinel phases separately.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._running: Dict[str, float] = {}

    def start(self, name: str) -> None:
        if name in self._running:
            raise RuntimeError(f"span {name!r} already running")
        self._running[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        try:
            begin = self._running.pop(name)
        except KeyError:
            raise RuntimeError(f"span {name!r} was never started") from None
        span = time.perf_counter() - begin
        self._totals[name] = self._totals.get(name, 0.0) + span
        return span

    def total(self, name: str) -> float:
        """Total accumulated seconds for span ``name`` (0.0 if never run)."""
        return self._totals.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)
