"""Maintenance tools runnable as ``python -m repro.tools.<name>``.

* :mod:`repro.tools.update_baseline` — regenerate the committed counter
  baseline (``benchmarks/results/BASELINE_counters.json``).
* :mod:`repro.tools.check_counters` — re-run the fixed-seed workload matrix
  and fail (exit 1) on any deviation from the committed baseline; this is
  what CI's ``counter-regression`` job runs.
"""
