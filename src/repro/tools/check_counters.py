"""Counter-regression gate: diff a fresh run against the committed baseline.

Usage::

    python -m repro.tools.check_counters [--path PATH] [--report-dir DIR]

Exit status 0 when every workload's canonical RunReport matches the
baseline **exactly**, 1 otherwise (with a per-field diff on stdout).
``--report-dir`` additionally writes each workload's canonical report as a
separate JSON file — CI uploads these as artifacts so a failing diff can be
inspected without rerunning anything.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro.tools.counter_baseline import (
    baseline_path,
    collect_baseline,
    diff_documents,
    load_baseline,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check_counters",
        description="compare fixed-seed counters against the committed baseline",
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=None,
        help="baseline file to compare against (default: committed location)",
    )
    parser.add_argument(
        "--report-dir",
        type=Path,
        default=None,
        help="also write each workload's canonical RunReport here",
    )
    args = parser.parse_args(argv)
    path = args.path if args.path is not None else baseline_path()

    if not path.exists():
        print(
            f"no baseline at {path}; generate one with "
            "`python -m repro.tools.update_baseline`"
        )
        return 1

    current = collect_baseline()
    if args.report_dir is not None:
        args.report_dir.mkdir(parents=True, exist_ok=True)
        for name, report in current["workloads"].items():
            out = args.report_dir / (name.replace("/", "_") + ".json")
            with open(out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")

    changes = diff_documents(load_baseline(path), current)
    if changes:
        print(f"counter regression: {len(changes)} deviations from {path}")
        for line in changes:
            print(f"  {line}")
        print(
            "if this change is intended, regenerate the baseline with "
            "`python -m repro.tools.update_baseline` and commit the result"
        )
        return 1
    print(
        f"counters match the baseline ({len(current['workloads'])} workloads, "
        "exact)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
