"""The fixed-seed workload matrix behind the counter-regression gate.

Wall-clock benchmarks are useless as CI gates — shared runners are noisy.
The machine-independent cost counters (``edges_examined``, ``rng_draws``,
RR-size histograms, ...) are exactly reproducible for a fixed ``(code,
graph, config, seed)``, so CI runs a small matrix of algorithm
configurations and diffs the canonical :class:`~repro.observability.report
.RunReport` of each against a committed baseline with **exact** match.

A diff means the change altered sampling behaviour — more edges examined, a
different RNG schedule, a different pool size.  That is sometimes intended
(an optimization that provably skips work); then the baseline is
regenerated with ``python -m repro.tools.update_baseline`` and the new
numbers are reviewed like any other diff.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List

import numpy as np

from repro.core.registry import get_algorithm
from repro.graphs.dynamic import GraphDelta
from repro.graphs.generators import preferential_attachment
from repro.graphs.weights import uniform_weights, wc_weights
from repro.observability import MetricsRegistry, build_run_report

#: bump when the workload matrix or report schema changes incompatibly
BASELINE_SCHEMA_VERSION = 1

#: the graph every workload runs on (small enough for CI, rich enough that
#: every code path — geometric skipping, sentinel stops, batching — fires)
GRAPH_SPEC = {"n": 300, "degree": 3, "seed": 1, "reciprocal": 0.3}

#: query configuration shared by all workloads
QUERY = {"k": 8, "eps": 0.25, "seed": 11}

#: (name, algorithm, weight scheme, batch_size) — vanilla/SUBSIM generation
#: x WC/uniform weighting x sequential/batched execution
WORKLOADS = [
    ("opim-c/wc/sequential", "opim-c", "wc", 1),
    ("opim-c/wc/batched", "opim-c", "wc", 64),
    ("opim-c/uniform/sequential", "opim-c", "uniform", 1),
    ("opim-c/uniform/batched", "opim-c", "uniform", 64),
    ("subsim/wc/sequential", "subsim", "wc", 1),
    ("subsim/wc/batched", "subsim", "wc", 64),
    ("subsim/uniform/sequential", "subsim", "uniform", 1),
    ("subsim/uniform/batched", "subsim", "uniform", 64),
]

#: (name, delta mix) — dynamic workloads: warm session, fixed-seed edge
#: delta, in-place bank repair, second query.  Their counters pin down the
#: whole repair pipeline (dirty-set detection, journal replay, post-delta
#: generation) exactly.
DYNAMIC_WORKLOADS = [
    ("dynamic/insert-heavy", {"inserts": 12, "deletes": 2, "updates": 2}),
    ("dynamic/delete-heavy", {"inserts": 2, "deletes": 12, "updates": 2}),
]

#: (name, algorithm, weight scheme) — sketch-backend workloads.  Hashing,
#: register scatter, ladder escalation and the certified bounds are all
#: deterministic for a fixed seed, so these pin the sketch coverage path
#: exactly the way WORKLOADS pins the exact one.  Appended *after* the
#: original matrix: the first ten workloads' documents stay byte-identical.
SKETCH_WORKLOADS = [
    ("sketch/opim-c/wc", "opim-c", "wc"),
    ("sketch/subsim/wc", "subsim", "wc"),
]

#: RNG seed for the dynamic workloads' delta construction
DELTA_SEED = 23

_UNIFORM_P = 0.05


def baseline_path() -> Path:
    """Where the committed baseline lives (override: ``REPRO_BASELINE``)."""
    override = os.environ.get("REPRO_BASELINE")
    if override:
        return Path(override)
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "results"
        / "BASELINE_counters.json"
    )


def _build_graph(weight_scheme: str):
    graph = preferential_attachment(
        GRAPH_SPEC["n"],
        GRAPH_SPEC["degree"],
        seed=GRAPH_SPEC["seed"],
        reciprocal=GRAPH_SPEC["reciprocal"],
    )
    if weight_scheme == "wc":
        return wc_weights(graph)
    if weight_scheme == "uniform":
        return uniform_weights(graph, _UNIFORM_P)
    raise ValueError(f"unknown weight scheme {weight_scheme!r}")


def run_workload(
    algorithm: str,
    weight_scheme: str,
    batch_size: int,
    coverage_backend: str = None,
) -> Dict[str, Any]:
    """Run one matrix cell; returns the canonical RunReport projection."""
    graph = _build_graph(weight_scheme)
    metrics = MetricsRegistry()
    algo = get_algorithm(algorithm, graph)
    run_kwargs = {}
    config = {"weights": weight_scheme, "batch_size": batch_size}
    if coverage_backend is not None:
        run_kwargs["coverage_backend"] = coverage_backend
        config["coverage_backend"] = coverage_backend
    result = algo.run(
        QUERY["k"],
        eps=QUERY["eps"],
        seed=QUERY["seed"],
        batch_size=batch_size,
        metrics=metrics,
        **run_kwargs,
    )
    report = build_run_report(
        result,
        graph,
        seed=QUERY["seed"],
        metrics=metrics,
        config=config,
    )
    return report.canonical()


def _build_delta(graph, mix: Dict[str, int]) -> GraphDelta:
    """A fixed-seed edge delta with the given insert/delete/update mix."""
    rng = np.random.default_rng(DELTA_SEED)
    indeg = np.diff(graph.in_indptr)
    candidates = np.flatnonzero(indeg > 0)
    picked = set()
    deletes: List = []
    updates: List = []
    while len(deletes) < mix["deletes"] or len(updates) < mix["updates"]:
        v = int(rng.choice(candidates))
        offset = int(rng.integers(indeg[v]))
        u = int(graph.in_indices[graph.in_indptr[v] + offset])
        if (u, v) in picked:
            continue
        picked.add((u, v))
        if len(deletes) < mix["deletes"]:
            deletes.append((u, v))
        else:
            updates.append((u, v, float(rng.uniform(0.05, 0.3))))
    srcs = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.out_indptr)
    )
    existing = set(
        zip(srcs.tolist(), graph.out_indices.astype(np.int64).tolist())
    )
    inserts: List = []
    while len(inserts) < mix["inserts"]:
        u = int(rng.integers(0, graph.n))
        v = int(rng.integers(0, graph.n))
        if u == v or (u, v) in existing or (u, v) in picked:
            continue
        picked.add((u, v))
        inserts.append((u, v, float(rng.uniform(0.05, 0.3))))
    return GraphDelta(inserts=inserts, deletes=deletes, updates=updates)


def run_dynamic_workload(mix: Dict[str, int]) -> Dict[str, Any]:
    """Warm session -> fixed delta -> repair -> requery; exact counters."""
    from repro.engine.session import QuerySession

    graph = _build_graph("wc")
    session = QuerySession(graph, "subsim", seed=QUERY["seed"])
    session.maximize(QUERY["k"], eps=QUERY["eps"])
    delta = _build_delta(graph, mix)
    info = session.apply_delta(delta)
    second = session.maximize(QUERY["k"], eps=QUERY["eps"])
    return {
        "delta": {
            "inserts": len(delta.insert_src),
            "deletes": len(delta.delete_src),
            "updates": len(delta.update_src),
            "touched_nodes": int(info["touched_nodes"]),
        },
        "repair": {
            "sets_total": int(info["sets_total"]),
            "sets_repaired": int(info["sets_repaired"]),
            "banks": {
                name: {
                    "num_rr": int(stats["num_rr"]),
                    "num_dirty": int(stats["num_dirty"]),
                    "num_resampled": int(stats["num_resampled"]),
                    "repair_counters": dict(stats["repair_counters"]),
                }
                for name, stats in sorted(info["banks"].items())
            },
        },
        "second_query": {
            "seeds": [int(s) for s in second.seeds],
            "num_rr_sets": int(second.num_rr_sets),
            "edges_examined": int(second.edges_examined),
            "rng_draws": int(second.rng_draws),
        },
    }


def collect_baseline() -> Dict[str, Any]:
    """Run every workload; returns the JSON-able baseline document."""
    workloads = {
        name: run_workload(algorithm, weights, batch_size)
        for name, algorithm, weights, batch_size in WORKLOADS
    }
    workloads.update({
        name: run_dynamic_workload(mix) for name, mix in DYNAMIC_WORKLOADS
    })
    workloads.update({
        name: run_workload(algorithm, weights, 1, coverage_backend="sketch")
        for name, algorithm, weights in SKETCH_WORKLOADS
    })
    return {
        "baseline_schema_version": BASELINE_SCHEMA_VERSION,
        "graph": dict(GRAPH_SPEC),
        "query": dict(QUERY),
        "workloads": workloads,
    }


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    else:
        out[prefix] = value


def diff_documents(baseline: Dict[str, Any], current: Dict[str, Any]) -> List[str]:
    """Human-readable exact-match diff; empty list means identical."""
    lines: List[str] = []
    base_workloads = baseline.get("workloads", {})
    cur_workloads = current.get("workloads", {})
    for name in sorted(set(base_workloads) | set(cur_workloads)):
        if name not in cur_workloads:
            lines.append(f"{name}: present in baseline, missing from current run")
            continue
        if name not in base_workloads:
            lines.append(f"{name}: produced by current run, missing from baseline")
            continue
        flat_base: Dict[str, Any] = {}
        flat_cur: Dict[str, Any] = {}
        _flatten("", base_workloads[name], flat_base)
        _flatten("", cur_workloads[name], flat_cur)
        for key in sorted(set(flat_base) | set(flat_cur)):
            base_value = flat_base.get(key, "<absent>")
            cur_value = flat_cur.get(key, "<absent>")
            if base_value != cur_value:
                lines.append(
                    f"{name}: {key}: baseline={base_value!r} current={cur_value!r}"
                )
    for key in ("baseline_schema_version", "graph", "query"):
        if baseline.get(key) != current.get(key):
            lines.append(
                f"{key}: baseline={baseline.get(key)!r} current={current.get(key)!r}"
            )
    return lines


def write_baseline(document: Dict[str, Any], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: Path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
