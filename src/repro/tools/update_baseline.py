"""Regenerate the committed counter baseline.

Usage::

    python -m repro.tools.update_baseline [--path PATH]

Run this after a change that *intentionally* alters the sampling behaviour
(counters, RNG schedule, pool sizes), then commit the rewritten
``benchmarks/results/BASELINE_counters.json`` together with the change so
the counter-regression CI job reviews the new numbers explicitly.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.tools.counter_baseline import (
    baseline_path,
    collect_baseline,
    diff_documents,
    load_baseline,
    write_baseline,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.update_baseline",
        description="rewrite the counter-regression baseline from a fresh run",
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=None,
        help="baseline file to write (default: the committed location)",
    )
    args = parser.parse_args(argv)
    path = args.path if args.path is not None else baseline_path()

    document = collect_baseline()
    if path.exists():
        changes = diff_documents(load_baseline(path), document)
        if changes:
            print(f"updating {len(changes)} changed entries:")
            for line in changes:
                print(f"  {line}")
        else:
            print("no changes against the existing baseline")
    write_baseline(document, path)
    print(f"wrote {len(document['workloads'])} workloads to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
