"""Shared sampling engine: schedules, doubling loop, banks, sessions.

The engine is the layer between the RR-set substrate and the algorithms:
algorithms express themselves as (schedule, stop rule, select) against
:class:`~repro.rrsets.bank.RRBank` prefixes, and the engine owns the
grow/checkpoint/interrupt plumbing they used to copy.  See
``docs/ARCHITECTURE.md`` for the full layer map.
"""

from repro.engine.schedule import (
    DoublingOutcome,
    DoublingResume,
    SamplingSchedule,
    fallback_seeds,
    run_doubling,
)
from repro.engine.session import BankProvider, QuerySession

__all__ = [
    "BankProvider",
    "DoublingOutcome",
    "DoublingResume",
    "QuerySession",
    "SamplingSchedule",
    "fallback_seeds",
    "run_doubling",
]
