"""Shard-resident RR banks over a :class:`~repro.rrsets.shardpool.ShardPool`.

A :class:`ShardedRRBank` is the sharded counterpart of
:class:`~repro.rrsets.bank.RRBank`: same role in the algorithms (grow to
``theta``, hand back a selectable prefix view, account generation cost),
but the RR sets themselves never leave the worker processes.  The parent
holds only bookkeeping — per-request shard counts, counter marks, and the
parent-side generator object whose cumulative counters mirror the merged
worker deltas (so ``bank.generator.counters``, run-control accounting, and
result assembly all work unchanged).

**Determinism.**  Every generate request ``i`` of a role seeds worker
``rank`` with ``SeedSequence(entropy, spawn_key=(role_key, rank, i))`` —
self-contained, independent of worker history.  The request index is
monotone for the bank's lifetime: :meth:`reset_pool` (HIST's fresh pool
per sentinel candidate) advances it, matching the single-pool bank whose
stream keeps advancing across resets, while :meth:`evict` rewinds it to
zero so the regenerated prefix is bit-identical to the evicted one.
Fixed ``(entropy, shards)`` therefore reproduces the exact same sharded
pool run-to-run — and makes worker crash recovery a pure journal replay.

**Global set order.**  Within one generate request, sets are ordered
rank-major (all of rank 0's shard, then rank 1's, ...); requests
concatenate in issue order.  :meth:`view` computes, for any global prefix
``theta``, the per-rank local limits plus the global-order segment table
that lets gathered per-set arrays (``per_set_sums``) and masks be
assembled in exactly that order.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.rrsets.base import GenerationCounters, RRGenerator
from repro.rrsets.fanout import _merge_counters, shard_counts
from repro.rrsets.shardpool import ShardPool
from repro.runtime.checkpoint import counters_from_dict, counters_to_dict
from repro.utils.exceptions import ConfigurationError, ExecutionInterrupted


class ShardedSeedMask:
    """Lazy stand-in for ``covered_mask(seeds)`` on a sharded view.

    The actual boolean mask lives distributed across the shards; selection
    code only ever uses the mask to say "treat the sets these seeds cover
    as already covered", so the sharded view returns this marker and the
    sharded selection marks the seeds where the data lives.
    """

    __slots__ = ("seeds",)

    def __init__(self, seeds: Iterable[int]) -> None:
        self.seeds = [int(s) for s in seeds]

    def any(self) -> bool:
        return bool(self.seeds)


class ShardedPoolView:
    """Read-only prefix view over a role's shard-resident pool.

    Mirrors the selection/estimation surface of
    :class:`~repro.rrsets.collection.RRCollection` /
    :class:`~repro.rrsets.collection.RRPrefixView`; every query is a
    scatter-gather over the shard workers.  ``is_sharded`` routes
    :func:`~repro.coverage.greedy.max_coverage_greedy` and
    :func:`~repro.coverage.celf.celf_max_coverage` to their sharded
    implementations.
    """

    is_sharded = True

    def __init__(self, bank: "ShardedRRBank", num_rr: int) -> None:
        self._bank = bank
        self.num_rr = int(num_rr)
        self.limits = bank._limits_for(self.num_rr)

    def __len__(self) -> int:
        return self.num_rr

    @property
    def n(self) -> int:
        return self._bank.graph.n

    @property
    def role(self) -> str:
        return self._bank.role

    @property
    def shard_pool(self) -> ShardPool:
        return self._bank.shard_pool

    # -- coverage/estimation surface -----------------------------------
    def coverage_counts(self) -> np.ndarray:
        return self.shard_pool.coverage_counts(self.role, self.limits)

    def coverage(self, seeds: Iterable[int]) -> int:
        return self.shard_pool.coverage(self.role, self.limits, list(seeds))

    def covered_mask(self, seeds: Iterable[int]) -> ShardedSeedMask:
        return ShardedSeedMask(seeds)

    def estimate_influence(self, seeds: Iterable[int]) -> float:
        if self.num_rr == 0:
            raise ValueError("cannot estimate influence from an empty pool")
        return self.n * self.coverage(seeds) / self.num_rr

    def per_set_sums(
        self, values: np.ndarray, stop: Optional[int] = None
    ) -> np.ndarray:
        """Per-set sums over the first ``stop`` sets, in global set order."""
        stop = self.num_rr if stop is None else min(int(stop), self.num_rr)
        limits = self._bank._limits_for(stop)
        local = self.shard_pool.per_set_sums(self.role, limits, values)
        return self._bank.assemble_global(local, stop)

    def assemble_global(self, per_rank: List[np.ndarray]) -> np.ndarray:
        """Stitch per-rank local-order arrays into global set order."""
        return self._bank.assemble_global(per_rank, self.num_rr)

    def sketch_registers(self, precision: int, hash_seed: int) -> np.ndarray:
        """Merged per-node HLL registers over this view's prefix.

        The sketch backend's scatter-gather path: every worker sketches its
        local sets under globally distinct ids and only the ``(n, 2^p)``
        register arrays travel back, replacing per-node gain vectors on the
        wire (see :meth:`ShardPool.sketch_registers`)."""
        return self.shard_pool.sketch_registers(
            self.role, self.limits, precision, hash_seed
        )


class ShardedRRBank:
    """An RR bank whose pool lives sharded across a :class:`ShardPool`."""

    def __init__(
        self,
        graph: CSRGraph,
        generator: RRGenerator,
        shard_pool: ShardPool,
        *,
        role: str,
        entropy: int,
        stop_mask: Optional[np.ndarray] = None,
        reusable: bool = False,
        byte_cap: Optional[int] = None,
    ) -> None:
        if reusable and stop_mask is not None:
            raise ConfigurationError(
                "a reusable bank cannot carry a stop mask: masked RR sets "
                "are query-specific and must not be served to other queries"
            )
        self.graph = graph
        self.generator = generator
        self.shard_pool = shard_pool
        self.role = role
        self.entropy = int(entropy)
        self.stop_mask = stop_mask
        self.reusable = reusable
        self.byte_cap = byte_cap
        self._role_key = zlib.crc32(role.encode("utf-8"))
        #: per-request per-rank shard counts, in issue order — the complete
        #: description of the global set order.
        self._appends: List[List[int]] = []
        self._rank_totals = [0] * shard_pool.shards
        self._next_req = 0
        self._marks: Dict[int, Dict[str, int]] = {0: _zero_mark()}
        self._sinks: Tuple[Any, ...] = ()
        self._used = 0
        self._query_base = 0
        self._reuse_counted = 0
        self._repair_epoch = 0
        self._dirty = False

    # ------------------------------------------------------------------
    @property
    def num_rr(self) -> int:
        return sum(self._rank_totals)

    @property
    def pool(self) -> ShardedPoolView:
        """Full-pool view (the ``bank.pool`` fallback paths read)."""
        return ShardedPoolView(self, self.num_rr)

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def ensure(
        self, theta: int, stop_mask: Optional[np.ndarray] = None
    ) -> ShardedPoolView:
        """Grow the sharded pool to at least ``theta`` sets (prefix view)."""
        theta = int(theta)
        mask = self._resolve_mask(stop_mask)
        have = self.num_rr
        if theta > have:
            try:
                self._extend(theta - have, mask)
            except ExecutionInterrupted:
                self._dirty = True
                raise
            if self.reusable:
                self._marks[self.num_rr] = counters_to_dict(
                    self.generator.counters
                )
        self._account(min(theta, self.num_rr), self.num_rr - have)
        return self.view(theta)

    def _extend(self, count: int, mask: Optional[np.ndarray]) -> None:
        gen = self.generator
        control = gen.control
        pool = self.shard_pool
        remaining = count
        while remaining > 0:
            req = remaining
            if control is not None:
                # Budget enforcement happens at the request boundary, like
                # the per-call fan-out: on_rr_start raises once the budget
                # is exhausted, and a clamped request under-delivers so the
                # *next* boundary surfaces the expiry.
                control.on_rr_start()
                if control.budget.max_rr_sets is not None:
                    req = min(
                        req, control.budget.max_rr_sets - control.rr_sets
                    )
                if req <= 0:
                    continue
            counts = shard_counts(req, pool.shards)
            seeds = [
                np.random.SeedSequence(
                    self.entropy,
                    spawn_key=(self._role_key, rank, self._next_req),
                )
                for rank in range(pool.shards)
            ]
            self._next_req += 1
            want_metrics = gen.metrics is not None
            replies = pool.generate(
                self.role,
                counts,
                seeds,
                generator_cls=type(gen),
                batched_mode=gen.batched_mode,
                batch_size=max(2, int(gen.batch_size or 1)),
                stop_mask=mask,
                want_metrics=want_metrics,
            )
            merged = tuple(
                sum(r["totals"][i] for r in replies) for i in range(5)
            )
            _merge_counters(gen.counters, merged)
            if want_metrics:
                gen.metrics.merge_snapshots(
                    r["metrics"] for r in replies if r["metrics"] is not None
                )
                gen.metrics.inc("shardpool.generate_calls")
            sizes = np.concatenate([r["sizes"] for r in replies])
            if control is not None:
                gen._tick()  # reports the merged edges_examined delta
                for size in sizes:
                    control.on_rr_complete(int(size))
            self._appends.append(counts)
            for rank, c in enumerate(counts):
                self._rank_totals[rank] += c
            remaining -= int(sum(counts))

    def extend_async(self, theta: int) -> Optional["_ShardedSpeculation"]:
        """Start growing the sharded pool toward ``theta`` without blocking.

        The speculative-pipelining entry point (see
        :mod:`repro.engine.prefetch`): one generate broadcast — seeded with
        the exact request index and per-rank counts a synchronous
        :meth:`ensure` would use next — is issued via
        :meth:`ShardPool.generate_async`, and the workers produce it while
        the parent keeps running select/validate against the current
        prefix.  The returned handle commits (or cancels) the request
        later; until it commits, views of this bank do not see the new
        sets.  The caller is responsible for budget pre-checks — the
        request boundary's ``on_rr_start``/clamp logic is replaced by the
        prefetch layer's conservative launch gate.
        """
        theta = int(theta)
        count = theta - self.num_rr
        if count <= 0:
            return None
        return _ShardedSpeculation(self, count)

    def take(self, index: int) -> np.ndarray:
        raise ConfigurationError(
            "cursor-style take() is not available on sharded banks; "
            "run this algorithm with shards=None"
        )

    def view(self, theta: int) -> ShardedPoolView:
        return ShardedPoolView(self, min(int(theta), self.num_rr))

    def _resolve_mask(
        self, stop_mask: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        if stop_mask is None:
            return self.stop_mask
        if self.reusable:
            raise ConfigurationError(
                f"bank {self.role!r} is reusable and cannot generate "
                "stop-masked sets"
            )
        return stop_mask

    # ------------------------------------------------------------------
    # global set order
    # ------------------------------------------------------------------
    def _limits_for(self, theta: int) -> List[int]:
        """Per-rank local prefix lengths covering the global prefix ``theta``."""
        limits = [0] * self.shard_pool.shards
        remaining = int(theta)
        for counts in self._appends:
            if remaining <= 0:
                break
            for rank, c in enumerate(counts):
                take = min(c, remaining)
                limits[rank] += take
                remaining -= take
                if remaining <= 0:
                    break
        return limits

    def _segments_for(self, theta: int) -> List[Tuple[int, int, int]]:
        """Global-order ``(rank, local_start, count)`` segments for ``theta``."""
        segs: List[Tuple[int, int, int]] = []
        local = [0] * self.shard_pool.shards
        remaining = int(theta)
        for counts in self._appends:
            if remaining <= 0:
                break
            for rank, c in enumerate(counts):
                take = min(c, remaining)
                if take > 0:
                    segs.append((rank, local[rank], take))
                local[rank] += c
                remaining -= take
                if remaining <= 0:
                    break
        return segs

    def assemble_global(
        self, per_rank: List[np.ndarray], theta: int
    ) -> np.ndarray:
        """Assemble per-rank local-order set arrays into global order."""
        if theta == 0:
            return np.zeros(0, dtype=np.int64)
        chunks = [
            per_rank[rank][start: start + count]
            for rank, start, count in self._segments_for(theta)
        ]
        return np.concatenate(chunks)

    # ------------------------------------------------------------------
    # accounting (same semantics as RRBank)
    # ------------------------------------------------------------------
    def _account(self, used: int, generated: int) -> None:
        if used > self._used:
            self._used = used
        reused_now = min(used, self._query_base)
        fresh = reused_now - self._reuse_counted
        if fresh > 0:
            self._reuse_counted = reused_now
        for sink in self._sinks:
            if generated:
                sink.inc("bank.sets_generated", generated)
            if fresh > 0:
                sink.inc("bank.sets_reused", fresh)

    def counters_at(self, num_sets: int) -> GenerationCounters:
        num_sets = int(num_sets)
        if num_sets >= self.num_rr:
            return self.generator.counters
        mark = self._marks.get(num_sets)
        if mark is None:
            best = max(size for size in self._marks if size <= num_sets)
            mark = self._marks[best]
        return counters_from_dict(mark)

    @property
    def counters(self) -> GenerationCounters:
        if not self.reusable:
            return self.generator.counters
        return self.counters_at(self._used)

    def nbytes(self) -> int:
        """Resident bytes of this role's shards across all workers."""
        return sum(
            stats.get(self.role, {}).get("nbytes", 0)
            for stats in self.shard_pool.stats()
        )

    @property
    def over_cap(self) -> bool:
        return self.byte_cap is not None and self.nbytes() > self.byte_cap

    # ------------------------------------------------------------------
    # incremental repair
    # ------------------------------------------------------------------
    def repair(self, dirty_nodes: np.ndarray) -> Dict[str, Any]:
        """Resample the shard-resident sets a graph delta invalidated.

        The counterpart of :meth:`RRBank.repair
        <repro.rrsets.bank.RRBank.repair>`: each worker finds its own
        dirty local ids and reseeds them in place (the repair command is
        journaled, so crash recovery replays it bit-identically).  The
        caller must broadcast the delta itself with
        :meth:`ShardPool.apply_delta` first — the parent-side generator
        here only mirrors counters and needs no graph refresh.
        """
        if not self.reusable:
            raise ConfigurationError("only reusable banks can be repaired")
        self._repair_epoch += 1
        num_rr = self.num_rr
        replies = self.shard_pool.repair(
            self.role,
            np.asarray(dirty_nodes, dtype=np.int64),
            entropy=self.entropy,
            role_key=self._role_key,
            epoch=self._repair_epoch,
        )
        num_dirty = int(sum(r["num_dirty"] for r in replies))
        return {
            "num_rr": int(num_rr),
            "num_dirty": num_dirty,
            "dirty_fraction": num_dirty / num_rr if num_rr else 0.0,
            "repair_epoch": int(self._repair_epoch),
            "repair_counters": _zero_mark(),
        }

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self, sinks: Iterable[Any] = ()) -> None:
        self._sinks = tuple(sinks)
        self._query_base = self.num_rr
        self._reuse_counted = 0
        self._used = 0

    def end_query(self) -> bool:
        evicted = False
        if self.reusable and (self._dirty or self.over_cap):
            self.evict()
            evicted = True
        self._sinks = ()
        return evicted

    def evict(self) -> None:
        """Drop every shard and rewind to the request origin.

        The next query reissues requests ``0, 1, ...`` with the identical
        per-request seeds, so the regenerated prefix is bit-identical to
        the evicted one (same property as the single-pool bank's RNG
        rewind).
        """
        if not self.reusable:
            raise ConfigurationError("only reusable banks can be evicted")
        for sink in self._sinks:
            sink.inc("bank.evictions")
        self.shard_pool.reset_role(self.role)
        self.generator.counters = GenerationCounters()
        self.generator._reported_edges = 0
        self._appends = []
        self._rank_totals = [0] * self.shard_pool.shards
        self._next_req = 0
        self._marks = {0: _zero_mark()}
        self._used = 0
        self._query_base = 0
        self._reuse_counted = 0
        self._dirty = False

    def reset_pool(self) -> None:
        """Drop the shards but keep the request stream advancing.

        HIST's fresh-pool-per-sentinel-candidate pattern: the request index
        is *not* rewound, so each candidate's pool draws from fresh seeds —
        exactly like the single-pool bank whose RNG keeps advancing.
        """
        if self.reusable:
            raise ConfigurationError(
                "reusable banks are prefix-stable and cannot be reset "
                "mid-stream; use evict()"
            )
        self.shard_pool.reset_role(self.role)
        self._appends = []
        self._rank_totals = [0] * self.shard_pool.shards
        self._used = 0
        self._query_base = 0
        self._reuse_counted = 0

    # ------------------------------------------------------------------
    def adopt(self, pool, counters_payload) -> None:
        raise ConfigurationError(
            "sharded banks cannot adopt run-checkpoint state; "
            "checkpoint/resume requires shards=None"
        )

    def state_dict(self) -> Dict[str, Any]:
        raise ConfigurationError(
            "sharded banks do not support warm-start serialization; "
            "session save/restore requires shards=None"
        )

    def restore_state(self, payload, pool) -> None:
        raise ConfigurationError(
            "sharded banks do not support warm-start serialization; "
            "session save/restore requires shards=None"
        )


class _ShardedSpeculation:
    """One in-flight speculative generate request on a sharded bank.

    Issued by :meth:`ShardedRRBank.extend_async`; duck-typed like the
    unsharded ``_ThreadSpeculation`` (``wait_and_commit`` / ``abort`` /
    ``overlap_until`` / ``count``).  The request is identical — same
    request index, seeds, and per-rank counts — to what the next
    synchronous :meth:`ShardedRRBank.ensure` would have sent, so a
    committed speculation leaves the bank bit-identical to the serial
    path.

    Cancellation truncates the request at a worker chunk boundary.  A
    partial request is prefix-stable *within this query* (the delivered
    chunks are the same chunks a full request would start with) but not
    across an eviction of a reusable bank, whose cold regeneration
    replays *full* requests: :meth:`abort` therefore never cancels a
    converged reusable bank's request (it is committed whole, as warm
    inventory) and marks the bank dirty when an interrupt forces a
    partial — end-of-query eviction then restores determinism.
    """

    def __init__(self, bank: ShardedRRBank, count: int) -> None:
        self.bank = bank
        self.count = int(count)
        gen = bank.generator
        pool = bank.shard_pool
        self._counts = shard_counts(self.count, pool.shards)
        seeds = [
            np.random.SeedSequence(
                bank.entropy,
                spawn_key=(bank._role_key, rank, bank._next_req),
            )
            for rank in range(pool.shards)
        ]
        bank._next_req += 1
        self._want_metrics = gen.metrics is not None
        self._pending = pool.generate_async(
            bank.role,
            self._counts,
            seeds,
            generator_cls=type(gen),
            batched_mode=gen.batched_mode,
            batch_size=max(2, int(gen.batch_size or 1)),
            stop_mask=bank.stop_mask,
            want_metrics=self._want_metrics,
        )
        self.committed = 0
        self._done = False
        self.t_launch = time.monotonic()
        self.t_done: Optional[float] = None

    def overlap_until(self, now: float) -> float:
        """Seconds this request has been in flight (workers run remotely,
        so completion time is unknown until collection — the full window
        counts as overlap)."""
        end = self.t_done if self.t_done is not None else now
        return max(0.0, min(end, now) - self.t_launch)

    def _commit(self) -> int:
        if self._done:
            return self.committed
        self._done = True
        replies = self._pending.collect()
        self.t_done = time.monotonic()
        bank = self.bank
        gen = bank.generator
        merged = tuple(
            sum(r["totals"][i] for r in replies) for i in range(5)
        )
        _merge_counters(gen.counters, merged)
        if self._want_metrics and gen.metrics is not None:
            gen.metrics.merge_snapshots(
                r["metrics"] for r in replies if r["metrics"] is not None
            )
            gen.metrics.inc("shardpool.generate_calls")
        sizes = np.concatenate([r["sizes"] for r in replies])
        control = gen.control
        interrupt: Optional[BaseException] = None
        if control is not None:
            # Fold the spend in full, deferring any cancellation raise
            # until the bank's bookkeeping below is complete — a raise
            # mid-fold would leave worker-resident sets the parent's
            # segment map does not cover.
            try:
                gen._tick()
                for size in sizes:
                    control.on_rr_complete(int(size))
            except ExecutionInterrupted as exc:
                interrupt = exc
        delivered = [
            int(r.get("delivered", len(r["sizes"]))) for r in replies
        ]
        bank._appends.append(delivered)
        for rank, c in enumerate(delivered):
            bank._rank_totals[rank] += c
        total = int(sum(delivered))
        if bank.reusable:
            bank._marks[bank.num_rr] = counters_to_dict(gen.counters)
        if gen.metrics is not None and total:
            gen.metrics.inc("generation.speculative_sets", total)
        bank._account(0, total)
        self.committed = total
        if interrupt is not None:
            raise interrupt
        return total

    def wait_and_commit(self) -> int:
        return self._commit()

    def abort(self, interrupted: bool = False) -> int:
        """Resolve an unwanted in-flight request (see class docstring)."""
        bank = self.bank
        if not self._done and (interrupted or not bank.reusable):
            self._pending.cancel()
            if interrupted and bank.reusable:
                bank._dirty = True
        try:
            return self._commit()
        except ExecutionInterrupted:
            # abort() runs on an already-interrupted unwind path (the
            # pipeline's ``finally``); re-raising would mask the original
            # interrupt and strand sibling requests.
            return self.committed


def _zero_mark() -> Dict[str, int]:
    return counters_to_dict(GenerationCounters())
