"""Query sessions: bank provisioning and cross-query RR-set reuse.

Two pieces live here.  :class:`BankProvider` is the factory every
``IMAlgorithm.run`` draws its :class:`~repro.rrsets.bank.RRBank`\\ s from;
it has two modes:

* **transient** — built internally by ``run()`` around the run's own RNG.
  Every ``get`` hands out a fresh single-run bank sharing that RNG, so the
  pools interleave their draws on one stream exactly as the pre-bank code
  did.  Default single-query runs go through this path and replay the seed
  RNG schedule bit-identically.
* **session** — built by :class:`QuerySession` with its own entropy.  Each
  *role* (``"opimc.r1"``, ``"tim.final"``, ...) gets a private RNG stream
  derived from ``(entropy, role)`` only, so the stream a role sees is the
  same whether the pool is cold or warm — the prefix-stability property
  cross-query reuse rests on.  Reusable, unmasked roles are cached and
  served again to later queries; stop-masked or non-reusable roles get a
  fresh bank (on the same per-role stream origin) every query.

:class:`QuerySession` binds a graph + algorithm to a session provider and
serves repeated ``maximize(k, eps)`` calls, reporting per-query
``bank.sets_generated`` / ``bank.sets_reused`` deltas, with warm-start
persistence through the existing
:class:`~repro.runtime.checkpoint.CheckpointStore`.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.observability.registry import MetricsRegistry
from repro.rrsets.bank import RRBank
from repro.rrsets.base import RRGenerator
from repro.rrsets.collection import RRCollection
from repro.runtime.checkpoint import CheckpointStore, coerce_store
from repro.utils.exceptions import CheckpointError, ConfigurationError

#: bumped when the warm-start payload layout changes incompatibly
SESSION_FORMAT = 1


def _session_entropy(seed: Any) -> int:
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise ConfigurationError(
        f"session seed must be an int or None, got {type(seed).__name__}"
    )


class BankProvider:
    """Hands out :class:`RRBank` instances to algorithm code.

    Algorithms never construct banks directly — they ask the provider for a
    *role*, and the provider decides whether that role is a throwaway bank
    on the run's shared RNG (transient mode) or a cached, prefix-stable
    bank on a private stream (session mode).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        rng: Optional[np.random.Generator] = None,
        entropy: Optional[int] = None,
        reuse: bool = False,
        byte_cap: Optional[int] = None,
        session_metrics: Optional[MetricsRegistry] = None,
        shard_pool: Optional[Any] = None,
        coverage_backend: Optional[str] = None,
        prefetch: Optional[str] = None,
    ) -> None:
        if (rng is None) == (entropy is None):
            raise ConfigurationError(
                "a BankProvider needs exactly one of a shared rng "
                "(transient mode) or an entropy (session mode)"
            )
        if coverage_backend is not None:
            from repro.coverage.backend import COVERAGE_BACKENDS

            if coverage_backend not in COVERAGE_BACKENDS:
                raise ConfigurationError(
                    f"coverage_backend must be one of "
                    f"{', '.join(repr(b) for b in COVERAGE_BACKENDS)}, "
                    f"got {coverage_backend!r}"
                )
        if prefetch is not None:
            from repro.engine.prefetch import validate_prefetch_mode

            validate_prefetch_mode(prefetch)
        self.graph = graph
        self.reuse = reuse
        self.byte_cap = byte_cap
        #: default coverage backend for every run served from this provider
        #: (a run-level ``coverage_backend=`` argument overrides it)
        self.coverage_backend = coverage_backend
        #: default speculative-pipelining mode for every run served from
        #: this provider (a run-level ``prefetch=`` argument overrides it)
        self.prefetch = prefetch
        self.metrics = session_metrics
        self.entropy = entropy
        #: when set, every bank this provider hands out is shard-resident
        #: (a :class:`~repro.engine.shards.ShardedRRBank` over this pool)
        self.shard_pool = shard_pool
        self._shared_rng = rng
        self._banks: Dict[str, Any] = {}
        self._staged: Dict[str, Tuple[Dict[str, Any], RRCollection]] = {}
        self._active: List[Any] = []
        self._control: Optional[Any] = None
        self._run_metrics: Optional[MetricsRegistry] = None

    @classmethod
    def transient(
        cls, graph: CSRGraph, rng: np.random.Generator
    ) -> "BankProvider":
        """The single-run provider ``IMAlgorithm.run`` builds by default."""
        return cls(graph, rng=rng)

    @property
    def is_session(self) -> bool:
        return self._shared_rng is None

    # ------------------------------------------------------------------
    # per-query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self, control: Optional[Any] = None) -> None:
        self._control = control
        self._run_metrics = (
            getattr(control, "metrics", None) if control is not None else None
        )
        self._active = []

    def end_query(self) -> None:
        for bank in self._active:
            bank.end_query()
        self._active = []
        self._control = None
        self._run_metrics = None

    # ------------------------------------------------------------------
    # bank provisioning
    # ------------------------------------------------------------------
    def get(
        self,
        role: str,
        make_generator: Callable[[], RRGenerator],
        *,
        stop_mask: Optional[np.ndarray] = None,
        reusable: bool = True,
        batch_size: int = 1,
        workers: int = 1,
        batched_mode: Optional[str] = None,
    ) -> RRBank:
        """The bank serving ``role`` for the current query.

        ``reusable`` declares whether the role's sets are query-agnostic
        (plain RR sets: yes; sentinel-masked or per-candidate validation
        sets: no).  Only reusable, unmasked roles are cached across
        queries; everything else is rebuilt per query — but still on its
        deterministic per-role stream, so cold and warm queries draw
        identically.
        """
        if self._shared_rng is not None:
            gen = make_generator()
            if self.shard_pool is not None:
                return self._sharded_transient(role, gen, stop_mask)
            return RRBank(
                self.graph,
                gen,
                self._shared_rng,
                role=role,
                stop_mask=stop_mask,
                reusable=False,
            )
        persistent = self.reuse and reusable and stop_mask is None
        bank = self._banks.get(role) if persistent else None
        if bank is None:
            gen = make_generator()
            if self.shard_pool is not None:
                from repro.engine.shards import ShardedRRBank

                # Non-persistent roles re-start from their seed origin
                # every query; clear any shards a previous query left.
                if not persistent:
                    self.shard_pool.reset_role(role)
                bank = ShardedRRBank(
                    self.graph,
                    gen,
                    self.shard_pool,
                    role=role,
                    entropy=self.entropy,
                    stop_mask=stop_mask,
                    reusable=persistent,
                    byte_cap=self.byte_cap,
                )
            else:
                bank = RRBank(
                    self.graph,
                    gen,
                    self._stream(role),
                    role=role,
                    stop_mask=stop_mask,
                    reusable=persistent,
                    byte_cap=self.byte_cap,
                    entropy=self.entropy,
                )
            if persistent:
                staged = self._staged.pop(role, None)
                if staged is not None:
                    bank.restore_state(*staged)
                self._banks[role] = bank
        else:
            # Cached bank: rebind its generator to this query's control and
            # batching knobs (the generator object itself persists so its
            # cumulative counters keep matching the recorded marks).
            gen = bank.generator
            gen.batch_size = batch_size
            gen.workers = workers
            if batched_mode is not None:
                gen.batched_mode = batched_mode
            if self._control is not None:
                self._control.adopt_generator(gen)
        sinks: List[MetricsRegistry] = []
        for m in (self._run_metrics, self.metrics):
            # Identity-dedupe: when the run registry IS the session
            # registry (maximize's default), one sink, not two, or every
            # bank counter would double.
            if m is not None and all(m is not existing for existing in sinks):
                sinks.append(m)
        bank.begin_query(sinks)
        self._active.append(bank)
        return bank

    def _sharded_transient(self, role, gen, stop_mask):
        """A fresh single-run sharded bank keyed by one draw of run entropy.

        The draw is accounted exactly like the per-call fan-out's parent
        draw, so a sharded run's RNG schedule is a deterministic function
        of (seed, bank creation order).
        """
        from repro.engine.shards import ShardedRRBank

        gen.counters.rng_draws += 1
        entropy = int(self._shared_rng.integers(0, 2**63 - 1))
        self.shard_pool.reset_role(role)
        return ShardedRRBank(
            self.graph,
            gen,
            self.shard_pool,
            role=role,
            entropy=entropy,
            stop_mask=stop_mask,
            reusable=False,
        )

    def _stream(self, role: str) -> np.random.Generator:
        # The stream depends only on (entropy, role) — not on creation
        # order or query index — so a role re-created for a later query
        # starts at the same origin a cold run would.
        key = zlib.crc32(role.encode("utf-8"))
        seq = np.random.SeedSequence(self.entropy, spawn_key=(key,))
        return np.random.default_rng(seq)

    # ------------------------------------------------------------------
    # warm-start state
    # ------------------------------------------------------------------
    def persistent_banks(self) -> Dict[str, RRBank]:
        return dict(self._banks)

    @property
    def has_banks(self) -> bool:
        return bool(self._banks) or bool(self._staged)

    def stage_restored(
        self, mapping: Dict[str, Tuple[Dict[str, Any], RRCollection]]
    ) -> None:
        """Install warm-start payloads, now or when the role is first used."""
        if self.shard_pool is not None:
            raise ConfigurationError(
                "sharded sessions cannot restore warm-start state; "
                "restore into a session with shards=None"
            )
        for role, (payload, pool) in mapping.items():
            bank = self._banks.get(role)
            if bank is not None:
                bank.restore_state(payload, pool)
            else:
                self._staged[role] = (payload, pool)


class QuerySession:
    """A graph bound to its RR banks, serving repeated queries.

    Successive :meth:`maximize` calls share the session's banks: a query
    whose sampling schedule stops within an already-materialised prefix
    generates nothing new.  With an integer ``seed`` the session is fully
    deterministic — and because every bank stream depends only on
    ``(seed, role)``, each query's seeds and counters are bit-identical to
    what a cold session with the same seed would return for that query
    alone (sequential generation; see ``docs/ARCHITECTURE.md``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: str = "hist+subsim",
        *,
        seed: Any = None,
        byte_cap: Optional[int] = None,
        shards: Optional[int] = None,
        spill_dir: Optional[str] = None,
        coverage_backend: Optional[str] = None,
        prefetch: Optional[str] = None,
        **algorithm_kwargs: Any,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.algorithm_kwargs = dict(algorithm_kwargs)
        #: session-lifetime registry accumulating ``bank.*`` counters
        self.metrics = MetricsRegistry()
        self._shard_pool = None
        if shards is not None:
            from repro.rrsets.shardpool import ShardPool

            # The session owns the worker runtime: one graph share, one set
            # of resident workers, reused by every query it serves.
            self._shard_pool = ShardPool(
                graph, int(shards), spill_dir=spill_dir, metrics=self.metrics
            )
        elif spill_dir is not None:
            raise ConfigurationError("spill_dir requires shards")
        self.provider = BankProvider(
            graph,
            entropy=_session_entropy(seed),
            reuse=True,
            byte_cap=byte_cap,
            session_metrics=self.metrics,
            shard_pool=self._shard_pool,
            coverage_backend=coverage_backend,
            prefetch=prefetch,
        )
        self.queries_served = 0

    @property
    def entropy(self) -> int:
        return int(self.provider.entropy)

    @property
    def shard_pool(self):
        return self._shard_pool

    def close(self) -> None:
        """Release the shard workers (no-op for unsharded sessions)."""
        if self._shard_pool is not None:
            self._shard_pool.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def maximize(
        self,
        k: int,
        eps: float = 0.1,
        delta: Optional[float] = None,
        *,
        budget: Optional[Any] = None,
        cancel: Optional[Any] = None,
        fault_injector: Optional[Any] = None,
        batch_size: int = 1,
        workers: int = 1,
        batched_mode: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = False,
        coverage_backend: Optional[str] = None,
        prefetch: Optional[str] = None,
    ) -> Any:
        """Serve one query against the session's banks.

        Run-level checkpoint/resume is deliberately absent: a session's
        durability story is :meth:`save` / :meth:`restore`, which persist
        the banks themselves.  The result's ``extras["session"]`` block
        reports this query's generated-vs-reused split.
        """
        # Imported lazily: the registry pulls in the algorithm modules,
        # which import the engine — resolving at call time breaks the cycle.
        from repro.core.registry import get_algorithm

        algo = get_algorithm(self.algorithm, self.graph, **self.algorithm_kwargs)
        generated0 = self.metrics.value("bank.sets_generated")
        reused0 = self.metrics.value("bank.sets_reused")
        result = algo.run(
            k,
            eps=eps,
            delta=delta,
            seed=self._query_rng(),
            budget=budget,
            cancel=cancel,
            fault_injector=fault_injector,
            batch_size=batch_size,
            workers=workers,
            batched_mode=batched_mode,
            # Default the run registry to the session's so per-query
            # observability (coverage.sketch_* counters, rr_pool_bytes)
            # survives the query and shows up in serving /metrics.
            metrics=metrics if metrics is not None else self.metrics,
            trace=trace,
            banks=self.provider,
            coverage_backend=coverage_backend,
            prefetch=prefetch,
        )
        self.queries_served += 1
        result.extras["session"] = {
            "query_index": self.queries_served,
            "sets_generated": self.metrics.value("bank.sets_generated")
            - generated0,
            "sets_reused": self.metrics.value("bank.sets_reused") - reused0,
        }
        return result

    # ------------------------------------------------------------------
    # streaming graph updates
    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: Any, *, graph_mutated: bool = False
    ) -> Dict[str, Any]:
        """Apply a :class:`~repro.graphs.dynamic.GraphDelta` and repair
        the warm banks in place instead of discarding them.

        The graph is mutated (unless the caller already did it —
        ``graph_mutated=True`` is the serving layer's path, where several
        sessions share one registry graph object and the delta must be
        applied exactly once), the delta is broadcast to the shard workers
        when the session is sharded, and every persistent bank resamples
        just the sets whose walks could have traversed a changed edge.
        The next :meth:`maximize` reuses the repaired banks; any saved
        session snapshot predating the delta is invalidated automatically
        (snapshots embed the graph fingerprint, which the delta advances).
        """
        touched = delta.touched_nodes()
        if not graph_mutated:
            self.graph.apply_delta(delta)
        if self._shard_pool is not None:
            self._shard_pool.apply_delta(delta)
        bank_stats: Dict[str, Any] = {}
        total = dirty = 0
        for role, bank in self.provider.persistent_banks().items():
            stats = bank.repair(touched)
            bank_stats[role] = stats
            total += stats["num_rr"]
            dirty += stats["num_dirty"]
        fraction = dirty / total if total else 0.0
        self.metrics.inc("generation.repaired", dirty)
        self.metrics.set_gauge("generation.dirty_fraction", fraction)
        return {
            "num_changes": int(delta.num_changes),
            "touched_nodes": int(len(touched)),
            "delta_epoch": int(self.graph.delta_epoch),
            "sets_total": int(total),
            "sets_repaired": int(dirty),
            "dirty_fraction": fraction,
            "banks": bank_stats,
        }

    def _query_rng(self) -> np.random.Generator:
        # The run-level RNG: RR generation never touches it in session mode
        # (banks own their streams); it seeds whatever non-bank randomness
        # an algorithm may have.  Distinct per query, deterministic in
        # (entropy, query index).
        seq = np.random.SeedSequence(
            self.provider.entropy, spawn_key=(0, self.queries_served)
        )
        return np.random.default_rng(seq)

    # ------------------------------------------------------------------
    # warm-start persistence
    # ------------------------------------------------------------------
    def save(self, path: Any) -> None:
        """Persist the reusable banks for a later process to warm-start."""
        if self._shard_pool is not None:
            raise ConfigurationError(
                "sharded sessions cannot be saved: the RR pools are "
                "worker-resident (use spill_dir for on-disk shards instead)"
            )
        store: CheckpointStore = coerce_store(path)
        banks = self.provider.persistent_banks()
        meta = {
            "session_format": SESSION_FORMAT,
            "fingerprint": self.graph.fingerprint(),
            "algorithm": self.algorithm,
            "entropy": self.entropy,
            "queries_served": int(self.queries_served),
            "banks": {role: bank.state_dict() for role, bank in banks.items()},
            "metrics": self.metrics.own_state(),
        }
        store.save(meta, {role: bank.pool for role, bank in banks.items()})

    def restore(self, path: Any) -> "QuerySession":
        """Warm-start this session from a :meth:`save` payload."""
        store: CheckpointStore = coerce_store(path)
        meta, pools = store.load()
        if meta.get("session_format") != SESSION_FORMAT:
            raise CheckpointError(
                f"unsupported session format {meta.get('session_format')!r}"
            )
        fingerprint = self.graph.fingerprint()
        if meta.get("fingerprint") != fingerprint:
            raise CheckpointError(
                "session checkpoint belongs to a different graph "
                f"({meta.get('fingerprint')!r} != {fingerprint!r})"
            )
        if meta.get("algorithm") != self.algorithm:
            raise CheckpointError(
                f"session checkpoint was written by {meta.get('algorithm')!r}, "
                f"not {self.algorithm!r}"
            )
        entropy = int(meta["entropy"])
        if self.queries_served == 0 and not self.provider.has_banks:
            self.provider.entropy = entropy
        elif entropy != self.provider.entropy:
            raise CheckpointError(
                "session checkpoint entropy does not match this session's seed"
            )
        self.queries_served = int(meta["queries_served"])
        self.metrics.restore_own_state(meta.get("metrics", {}))
        self.provider.stage_restored(
            {
                role: (payload, pools[role])
                for role, payload in meta["banks"].items()
            }
        )
        return self
