"""Speculative pipelined doubling: overlap RR generation with selection.

The doubling loop (:func:`~repro.engine.schedule.run_doubling`) is serial
by construction: round ``i`` blocks on ``bank.ensure`` while the parent
sits idle, then the parent runs select/validate while the generation
capacity (shard workers, fan-out processes) sits idle.  This module adds
the *speculation* layer that overlaps the two: a
:class:`PrefetchController` launches the round-``i+1`` extension of both
banks while round ``i``'s select/validate runs, and commits ("lands") the
speculatively generated sets at the top of the next round.

**Determinism is preserved by construction**, never by luck:

* A speculative extension runs only when the two banks' generation
  streams are provably independent (:func:`banks_independent`): session
  banks own private per-role streams, sharded banks derive self-contained
  per-request seeds, while default transient banks interleave both pools'
  draws on the run's single RNG — those stay serial and are bit-identical
  to the historical loop by virtue of not speculating at all.
* An unsharded extension is *staged*: a background thread runs the exact
  generation-unit loop of :meth:`RRCollection.extend
  <repro.rrsets.collection.RRCollection.extend>` against the bank's own
  RNG but buffers the produced sets privately; the main thread later
  installs them with a single ``add_batch``.  The committed pool is
  therefore byte-identical to what a synchronous ``ensure`` would have
  produced, and a discarded speculation rewinds the RNG and counters to
  the pre-launch snapshot so the serial fallback regenerates the same
  prefix.
* On early convergence the in-flight extension is cancelled at a
  generation-unit boundary; completed units are committed as warm
  inventory (an unsharded bank's pool content is a pure stream prefix,
  so partial commits keep prefix stability; sharded reusable banks
  instead wait for the full request — their seeds are request-granular).

**Budget awareness.**  Speculation never starts past ``theta_max`` (the
caller clamps), past a byte cap (projected doubling that would overflow
the cap skips), or past a known-remaining ``max_rr_sets`` budget; edge
and wall-clock budgets disable speculation outright because their spend
cannot be predicted per set.  During staging the generator's run control
is detached and the spend is folded back at the commit boundary — the
same boundary-grain enforcement the multiprocess fan-out already uses.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional

import numpy as np

from repro.runtime.checkpoint import counters_from_dict, counters_to_dict
from repro.utils.exceptions import ExecutionInterrupted

#: accepted values for the ``--prefetch`` knob.
PREFETCH_MODES = ("off", "next-round")


def validate_prefetch_mode(mode: str) -> str:
    """Validate a prefetch knob value, returning it unchanged."""
    from repro.utils.exceptions import ConfigurationError

    if mode not in PREFETCH_MODES:
        raise ConfigurationError(
            f"unknown prefetch mode {mode!r}; expected one of "
            f"{', '.join(PREFETCH_MODES)}"
        )
    return mode


def banks_independent(bank1: Any, bank2: Any) -> bool:
    """True when the two banks draw from provably independent streams.

    Sharded banks have no parent-side RNG (per-request ``SeedSequence``
    specs are self-contained) and are always independent.  Unsharded
    banks are independent exactly when they do not share one RNG object —
    the default transient pair wraps the run's single stream and must
    stay serial to remain bit-identical.
    """
    r1 = getattr(bank1, "rng", None)
    r2 = getattr(bank2, "rng", None)
    if r1 is None or r2 is None:
        return True
    return r1 is not r2


def _bank_size(bank: Any) -> int:
    pool = getattr(bank, "pool", None)
    num = getattr(pool, "num_rr", None)
    if num is None:
        num = getattr(bank, "num_rr", 0)
    return int(num)


def _budget_allows(control: Any, bank: Any, count: int, theta: int) -> bool:
    """Conservative pre-launch gate: may this speculation even start?

    Skipping is always *correct* (the serial fallback generates the
    identical sets later); this gate only refuses launches whose spend
    could overshoot a configured cap in a way boundary enforcement would
    notice too late.
    """
    if control is not None:
        budget = control.budget
        if (
            budget.max_edges_examined is not None
            or budget.wall_clock_seconds is not None
            or budget.max_rr_nodes is not None
        ):
            # Per-set edge/node/time spend is unpredictable; mid-generation
            # enforcement needs the synchronous path.
            return False
        if budget.max_rr_sets is not None:
            if budget.max_rr_sets - control.rr_sets < count:
                return False
    byte_cap = getattr(bank, "byte_cap", None)
    if byte_cap is not None:
        have = _bank_size(bank)
        if have > 0:
            projected = bank.nbytes() * theta / have
            if projected > byte_cap:
                return False
    return True


class _ThreadSpeculation:
    """One staged background extension of an unsharded :class:`RRBank`.

    The background thread mirrors :meth:`RRCollection.extend`'s unit loop
    (sequential sets, batched chunks, or fan-out calls) against the
    bank's own RNG, but stages nodes/sizes/journal entries privately.
    The generator's run control is detached for the duration and its
    metrics redirected to a private registry, so nothing observable
    happens until :meth:`wait_and_commit` installs the units on the main
    thread.  A cancel stops the loop at the next unit boundary; completed
    units still commit — the pool content is a pure prefix of the bank's
    stream either way.
    """

    def __init__(self, bank: Any, theta: int) -> None:
        from repro.observability.registry import MetricsRegistry

        self.bank = bank
        self.theta = int(theta)
        self.count = self.theta - bank.pool.num_rr
        gen = bank.generator
        self._saved_control = gen.control
        self._saved_metrics = gen.metrics
        self._metrics = MetricsRegistry() if gen.metrics is not None else None
        self._rng_state0 = bank.rng.bit_generator.state
        self._counters0 = counters_to_dict(gen.counters)
        self._reported_edges0 = gen._reported_edges
        gen.control = None
        gen.metrics = self._metrics
        self.cancel = threading.Event()
        self.error: Optional[BaseException] = None
        self._base = bank.pool.num_rr
        self._nodes: List[np.ndarray] = []
        self._sizes: List[np.ndarray] = []
        self._journal: List[dict] = []
        self._staged = 0
        self.committed = 0
        self._done = False
        self.t_launch = time.monotonic()
        self.t_done: Optional[float] = None
        self._thread = threading.Thread(
            target=self._run,
            name=f"prefetch-{getattr(bank, 'role', 'bank')}",
            daemon=True,
        )
        self._thread.start()

    # -- background thread ---------------------------------------------
    def _stage(self, nodes: np.ndarray, sizes: np.ndarray, entry) -> None:
        self._nodes.append(np.asarray(nodes, dtype=np.int64))
        self._sizes.append(np.asarray(sizes, dtype=np.int64))
        if entry is not None:
            self._journal.append(entry)
        self._staged += int(len(sizes))

    def _run(self) -> None:
        bank = self.bank
        gen = bank.generator
        rng = bank.rng
        mask = bank.stop_mask
        journaled = bank.reusable
        try:
            workers = int(getattr(gen, "workers", 1) or 1)
            batch_size = int(getattr(gen, "batch_size", 1) or 1)
            remaining = self.count
            if workers > 1:
                from repro.rrsets.fanout import generate_multiprocess

                while remaining > 0 and not self.cancel.is_set():
                    nodes, sizes = generate_multiprocess(
                        gen, remaining, rng, workers, stop_mask=mask
                    )
                    self._stage(nodes, sizes, None)
                    remaining -= len(sizes)
            elif batch_size > 1:
                while remaining > 0 and not self.cancel.is_set():
                    b = min(batch_size, remaining)
                    state = rng.bit_generator.state if journaled else None
                    nodes, sizes = gen.generate_batch(rng, b, stop_mask=mask)
                    self._stage(nodes, sizes, {
                        "start": self._base + self._staged,
                        "count": int(len(sizes)),
                        "requested": int(b),
                        "mode": "batch",
                        "state": state,
                    })
                    remaining -= len(sizes)
            else:
                while remaining > 0 and not self.cancel.is_set():
                    state = rng.bit_generator.state if journaled else None
                    rr = np.asarray(
                        gen.generate(rng, stop_mask=mask), dtype=np.int64
                    )
                    self._stage(rr, np.array([len(rr)], dtype=np.int64), {
                        "start": self._base + self._staged,
                        "count": 1,
                        "requested": 1,
                        "mode": "seq",
                        "state": state,
                    })
                    remaining -= 1
        except BaseException as exc:  # surfaced at commit, never swallowed
            self.error = exc
        finally:
            self.t_done = time.monotonic()

    # -- main thread ----------------------------------------------------
    def overlap_until(self, now: float) -> float:
        end = self.t_done if self.t_done is not None else now
        return max(0.0, min(end, now) - self.t_launch)

    def _discard(self) -> None:
        """Rewind the bank to the pre-launch snapshot (nothing happened)."""
        bank = self.bank
        gen = bank.generator
        bank.rng.bit_generator.state = self._rng_state0
        gen.counters = counters_from_dict(self._counters0)
        gen._reported_edges = self._reported_edges0
        self._nodes = []
        self._sizes = []
        self._journal = []

    def _commit(self) -> int:
        """Install every staged unit into the bank (main thread only)."""
        if self._done:
            return self.committed
        self._done = True
        bank = self.bank
        gen = bank.generator
        gen.control = self._saved_control
        gen.metrics = self._saved_metrics
        if self.error is not None:
            # A failed speculation leaves no trace: the synchronous
            # fallback regenerates the identical prefix (and resurfaces
            # the error with proper mid-generation semantics).
            self._discard()
            return 0
        total = int(sum(len(s) for s in self._sizes))
        if total:
            bank.pool.add_batch(
                np.concatenate(self._nodes), np.concatenate(self._sizes)
            )
            if bank.reusable:
                bank._journal.extend(self._journal)
                bank._marks[bank.pool.num_rr] = counters_to_dict(gen.counters)
            if self._saved_metrics is not None:
                if self._metrics is not None:
                    self._saved_metrics.merge_snapshot(self._metrics.snapshot())
                self._saved_metrics.set_gauge("rr_pool_bytes", bank.nbytes())
                self._saved_metrics.inc("generation.speculative_sets", total)
            control = self._saved_control
            interrupt: Optional[BaseException] = None
            if control is not None:
                # Fold the staged spend into the run at the commit
                # boundary — the fan-out's boundary-grain enforcement.
                # A cancellation raised by the fold is deferred until the
                # bank's accounting is complete: the pool is a pure
                # stream prefix either way, so the commit must finish.
                try:
                    gen._tick()
                    for size in np.concatenate(self._sizes):
                        control.on_rr_complete(int(size))
                except ExecutionInterrupted as exc:
                    interrupt = exc
            bank._account(0, total)
            if interrupt is not None:
                self.committed = total
                raise interrupt
        self.committed = total
        return total

    def wait_and_commit(self) -> int:
        self._thread.join()
        return self._commit()

    def abort(self, interrupted: bool = False) -> int:
        """Stop at the next unit boundary and commit the completed units."""
        self.cancel.set()
        self._thread.join()
        try:
            return self._commit()
        except ExecutionInterrupted:
            # Already on the interrupted unwind path (the pipeline's
            # ``finally``): the commit's bookkeeping completed before the
            # deferred raise, so swallow it rather than mask the original.
            return self.committed


def _speculate(
    bank: Any, theta: int, control: Any, reserved: int = 0
) -> Optional[Any]:
    """Launch one bank's speculative growth toward ``theta`` (or refuse).

    ``reserved`` is the set count already committed to sibling
    speculations against the same run control, so a pair of launches
    cannot jointly overshoot a ``max_rr_sets`` budget that each fits
    individually.
    """
    theta = int(theta)
    count = theta - _bank_size(bank)
    if count <= 0:
        return None
    if not _budget_allows(control, bank, count + int(reserved), theta):
        return None
    extend_async = getattr(bank, "extend_async", None)
    if extend_async is not None:
        return extend_async(theta)
    if getattr(bank, "rng", None) is None:  # unknown bank kind
        return None
    return _ThreadSpeculation(bank, theta)


def ensure_pair(
    bank1: Any,
    bank2: Any,
    theta: int,
    *,
    prefetch_on: bool = False,
) -> None:
    """Grow both banks to ``theta``, concurrently when provably safe.

    The bootstrap counterpart of speculation (and available even with
    ``--prefetch off``): the two ``ensure(theta0)`` calls are independent
    whenever the banks own independent streams, so they run concurrently
    — sharded banks via non-blocking command pipelining, unsharded ones
    via staged background threads.  Serial fallbacks (same committed
    state, bit-identical): a shared run RNG, or an *active* run control
    (budget/cancel/faults) without prefetch explicitly enabled — serial
    growth enforces caps mid-generation and produces the exact partial
    states the budget tests pin down.
    """
    control = getattr(bank1.generator, "control", None)
    if control is None:
        control = getattr(bank2.generator, "control", None)
    parallel = (
        bank1 is not bank2
        and banks_independent(bank1, bank2)
        and (prefetch_on or control is None or not control.active)
    )
    specs: List[Any] = []
    if parallel:
        reserved = 0
        for bank in (bank1, bank2):
            spec = _speculate(bank, theta, control, reserved=reserved)
            if spec is not None:
                specs.append(spec)
                reserved += spec.count
    for spec in specs:
        spec.wait_and_commit()
    bank1.ensure(theta)
    bank2.ensure(theta)


class PrefetchController:
    """Overlap next-round RR generation with this round's select/validate.

    One controller serves one :func:`~repro.engine.schedule.run_doubling`
    invocation.  The loop calls :meth:`land` at the top of each round
    (commit any in-flight speculation, then top up serially if needed),
    :meth:`launch` right after (start growing both banks toward the
    *next* round's theta), and :meth:`finish` on the way out (cancel or
    warm-commit whatever is still in flight).
    """

    def __init__(self, metrics: Any = None) -> None:
        self.metrics = metrics
        self._pending: List[Any] = []
        #: cumulative seconds during which speculative generation ran
        #: concurrently with parent-side work (reported as the
        #: ``pipeline_overlap_seconds`` gauge; wall-clock, non-canonical).
        self.overlap_seconds = 0.0
        #: the most recent :meth:`land`'s overlap contribution.
        self.last_overlap = 0.0
        self.launches = 0
        self.hits = 0
        self.cancelled = 0

    def launch(self, bank1: Any, bank2: Any, theta: int) -> bool:
        """Start speculative growth of both banks toward ``theta``."""
        if self._pending:
            return False
        if not banks_independent(bank1, bank2):
            return False
        control = getattr(bank1.generator, "control", None)
        if control is None:
            control = getattr(bank2.generator, "control", None)
        reserved = 0
        for bank in (bank1, bank2):
            spec = _speculate(bank, theta, control, reserved=reserved)
            if spec is not None:
                self._pending.append(spec)
                reserved += spec.count
        if self._pending:
            self.launches += 1
        return bool(self._pending)

    def land(self, bank1: Any, bank2: Any, theta: int) -> float:
        """Commit in-flight speculation and guarantee both banks ≥ theta.

        Returns this round's overlap seconds.  Extensions that have not
        finished are waited for (the pipeline's sync point); banks whose
        speculation was skipped or fell short are topped up by a plain
        synchronous ``ensure`` — so the call leaves exactly the state the
        serial loop would have, every time.
        """
        control = getattr(bank1.generator, "control", None)
        if control is None:
            control = getattr(bank2.generator, "control", None)
        if control is not None:
            # The serial loop notices cancellation at every ensure's
            # request boundary; with speculation covering the extensions,
            # this sync point takes over that duty.  Raising here leaves
            # ``_pending`` intact for ``finish(interrupted=True)``, which
            # aborts the in-flight requests (committing delivered work and
            # dirty-marking sharded reusable banks).
            control.check()
        now = time.monotonic()
        pending, self._pending = self._pending, []
        overlap = 0.0
        for idx, spec in enumerate(pending):
            overlap += spec.overlap_until(now)
            try:
                committed = spec.wait_and_commit()
            except ExecutionInterrupted:
                # The fold surfaced a cancellation after this spec's
                # bookkeeping completed; hand the uncommitted siblings
                # back so ``finish(interrupted=True)`` aborts them.
                self._pending = list(pending[idx + 1:])
                self.last_overlap = overlap
                self.overlap_seconds += overlap
                raise
            if committed > 0:
                self.hits += 1
                if self.metrics is not None:
                    self.metrics.inc("generation.speculation_hits")
        bank1.ensure(theta)
        bank2.ensure(theta)
        self.last_overlap = overlap
        self.overlap_seconds += overlap
        if self.metrics is not None and overlap > 0.0:
            self.metrics.set_gauge(
                "pipeline_overlap_seconds", self.overlap_seconds
            )
        return overlap

    def finish(self, *, interrupted: bool = False) -> None:
        """Resolve whatever is still in flight (convergence or interrupt).

        Converged runs commit completed work as warm inventory for the
        next session query; interrupted runs additionally mark sharded
        reusable banks dirty (their request-granular seeding cannot keep
        a partial request prefix-stable, so end-of-query eviction
        restores determinism).
        """
        pending, self._pending = self._pending, []
        for spec in pending:
            spec.abort(interrupted=interrupted)
            self.cancelled += 1
            if self.metrics is not None:
                self.metrics.inc("generation.speculation_cancelled")
        if self.metrics is not None and self.overlap_seconds > 0.0:
            self.metrics.set_gauge(
                "pipeline_overlap_seconds", self.overlap_seconds
            )
