"""Sampling schedules and the shared doubling loop.

Every bound-driven algorithm in this codebase (OPIM-C and HIST's
IM-with-sentinels phase; the same shape underlies the others) runs the
identical loop: bootstrap ``theta0`` RR sets, then per round *select*
seeds, *validate* them on an independent pool, stop when the bound ratio
clears the target, else double both pools.  :func:`run_doubling` is that
loop, written once, against :class:`~repro.rrsets.bank.RRBank` prefixes —
so a warm bank serves the early rounds without generating anything, and
the ``ExecutionInterrupted``-to-partial degradation lives here instead of
being copied into every ``_select``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.coverage.greedy import max_coverage_greedy
from repro.engine.prefetch import PrefetchController, ensure_pair
from repro.rrsets.bank import PoolLike, RRBank
from repro.utils.exceptions import ExecutionInterrupted

#: select callback: prefix view -> (seeds, upper bound)
SelectFn = Callable[[PoolLike], Tuple[List[int], float]]
#: validate callback: (prefix view, seeds) -> lower bound
ValidateFn = Callable[[PoolLike, List[int]], float]
#: checkpoint callback: (round index, seeds, lower, upper) -> None
CheckpointFn = Callable[[int, List[int], float, float], None]
#: refine callback: (round index, theta, seeds, lower, upper) -> True to
#: re-run the round at the same theta (the caller tightened its estimator,
#: e.g. the sketch backend's precision ladder), False to accept the round
RefineFn = Callable[[int, int, List[int], float, float], bool]


@dataclass(frozen=True)
class SamplingSchedule:
    """A geometric (doubling) RR-set growth schedule.

    ``theta_at(i)`` is the pool size round ``i`` (1-based) selects over:
    ``theta0 * 2**(i-1)``, never exceeding ``theta_max``.  The round count
    is supplied by the caller because the algorithms bound it differently
    (OPIM-C's ``i_max`` vs. HIST's ``log2(theta_max / theta0)`` variants) —
    the schedule only fixes the geometry.
    """

    theta0: int
    theta_max: int
    rounds: int

    def __post_init__(self) -> None:
        if self.theta0 < 1:
            raise ValueError(f"theta0 must be >= 1, got {self.theta0}")
        if self.theta_max < self.theta0:
            raise ValueError(
                f"theta_max ({self.theta_max}) must be >= theta0 "
                f"({self.theta0})"
            )
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")

    def theta_at(self, round_index: int) -> int:
        """Pool size served to round ``round_index`` (1-based)."""
        if round_index < 1:
            raise ValueError(f"rounds are 1-based, got {round_index}")
        return min(self.theta0 * 2 ** (round_index - 1), self.theta_max)


@dataclass(frozen=True)
class DoublingResume:
    """Mid-loop state restored from a run checkpoint."""

    round_index: int
    seeds: Sequence[int]
    lower: float
    upper: float


@dataclass
class DoublingOutcome:
    """What :func:`run_doubling` produced (complete, converged, or cut short)."""

    seeds: List[int] = field(default_factory=list)
    lower: float = 0.0
    upper: float = float("inf")
    rounds: int = 0
    converged: bool = False
    interrupted: bool = False
    stop_reason: Optional[str] = None


def _no_phase(name: str) -> contextlib.AbstractContextManager:
    return contextlib.nullcontext()


def _annotate_round(
    span: Any, theta: int, outcome: "DoublingOutcome", overlap: float
) -> None:
    """Record the round's theta/bounds/overlap on its trace span."""
    if span is None or not hasattr(span, "annotate"):
        return
    upper = outcome.upper
    span.annotate(
        theta=int(theta),
        lower=float(outcome.lower),
        upper=float(upper),
        bound_ratio=(
            float(outcome.lower / upper)
            if upper > 0 and upper != float("inf")
            else 0.0
        ),
        overlap_seconds=round(float(overlap), 6),
    )


def run_doubling(
    schedule: SamplingSchedule,
    bank1: RRBank,
    bank2: RRBank,
    *,
    select: SelectFn,
    validate: ValidateFn,
    target: float,
    initial_seeds: Sequence[int] = (),
    resume: Optional[DoublingResume] = None,
    checkpointer: Optional[CheckpointFn] = None,
    phase: Optional[Callable[[str], Any]] = None,
    refine: Optional[RefineFn] = None,
    prefetch: Optional[PrefetchController] = None,
) -> DoublingOutcome:
    """Run the bootstrap-select-validate-double loop over two banks.

    Round ``i`` selects on ``bank1``'s first ``theta_at(i)`` sets and
    validates on ``bank2``'s — so both banks grow in lockstep, and on a
    warm bank the early rounds are pure prefix reuse.  The loop stops when
    ``lower / upper > target``, when the schedule's rounds are exhausted,
    or when execution is interrupted (the outcome then carries whatever
    seeds and bounds the last completed round produced — the caller turns
    that into a partial result).

    ``checkpointer`` fires after each non-final round's extension, matching
    the historical save points (the run RNG is snapshotted *after* both
    pools extended).  ``phase`` (e.g. ``IMAlgorithm._phase``) wraps the
    bootstrap and each round in trace spans when provided.

    ``refine`` is the error-adaptive hook: after a round fails the target,
    it may tighten the caller's coverage estimator (the sketch backend's
    precision ladder) and return True to re-select at the *same* theta —
    re-estimating with more registers only when the estimator's error band,
    not the sample size, blocked convergence.  Returning False accepts the
    round and the loop doubles as usual; a refine that cannot help anymore
    must return False or the round would spin.

    ``prefetch`` enables the speculative pipeline: the round-``i+1``
    extension of both banks is issued *before* round ``i``'s select runs
    and committed at the top of round ``i+1``, so generation overlaps
    selection/validation.  Results are bit-identical with or without it
    (see :mod:`repro.engine.prefetch`).  Checkpointing requires the
    synchronous save points, so a ``checkpointer`` disables speculation
    (callers reject the combination up front); either way the bootstrap
    pair still runs concurrently when the banks' streams are independent.
    """
    span = phase if phase is not None else _no_phase
    outcome = DoublingOutcome(seeds=list(initial_seeds))
    pipeline = prefetch if checkpointer is None else None
    start = 1
    if resume is not None:
        outcome.rounds = int(resume.round_index)
        outcome.seeds = list(resume.seeds)
        outcome.lower = float(resume.lower)
        outcome.upper = float(resume.upper)
        start = outcome.rounds + 1
    else:
        try:
            with span("bootstrap"):
                ensure_pair(
                    bank1,
                    bank2,
                    schedule.theta0,
                    prefetch_on=pipeline is not None,
                )
        except ExecutionInterrupted as exc:
            outcome.interrupted = True
            outcome.stop_reason = exc.reason
            return outcome
    try:
        for i in range(start, schedule.rounds + 1):
            outcome.rounds = i
            with span(f"round-{i}") as sp:
                theta = schedule.theta_at(i)
                overlap = 0.0
                if pipeline is not None:
                    overlap = pipeline.land(bank1, bank2, theta)
                    if i < schedule.rounds:
                        next_theta = schedule.theta_at(i + 1)
                        if next_theta > theta:
                            pipeline.launch(bank1, bank2, next_theta)
                while True:
                    seeds, upper = select(bank1.view(theta))
                    outcome.seeds = seeds
                    outcome.upper = upper
                    outcome.lower = validate(bank2.view(theta), seeds)
                    if upper > 0 and outcome.lower / upper > target:
                        outcome.converged = True
                        _annotate_round(sp, theta, outcome, overlap)
                        return outcome
                    if refine is None or not refine(
                        i, theta, seeds, outcome.lower, outcome.upper
                    ):
                        break
                _annotate_round(sp, theta, outcome, overlap)
                if i < schedule.rounds and pipeline is None:
                    bank1.ensure(2 * theta)
                    bank2.ensure(2 * theta)
                    if checkpointer is not None:
                        checkpointer(
                            i, outcome.seeds, outcome.lower, outcome.upper
                        )
    except ExecutionInterrupted as exc:
        outcome.interrupted = True
        outcome.stop_reason = exc.reason
    finally:
        if pipeline is not None:
            pipeline.finish(interrupted=outcome.interrupted)
    return outcome


def fallback_seeds(
    pool: Optional[PoolLike],
    select: int,
    *,
    last: Optional[Any] = None,
    backend: Optional[Any] = None,
    **greedy_kwargs: Any,
) -> List[int]:
    """Best-effort seeds for a partial result.

    Reuses the interrupted round's greedy result when one exists (the
    engine-provided shape of OPIM-C's ``_finalize_partial``); otherwise
    falls back to one greedy pass over whatever the pool holds — through
    ``backend`` when the run used a non-default coverage backend.  Bound
    tracking is disabled — it never affects which seeds greedy picks, and
    a partial result's certificate comes from the completed rounds.
    """
    if last is not None:
        return list(last.seeds)
    if pool is None or pool.num_rr == 0:
        return []
    if backend is not None:
        return backend.max_coverage(
            pool, select, track_upper_bound=False, **greedy_kwargs
        ).seeds
    greedy = max_coverage_greedy(
        pool, select=select, track_upper_bound=False, **greedy_kwargs
    )
    return greedy.seeds
