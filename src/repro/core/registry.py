"""Name-based registry of IM algorithms.

Names match the paper's terminology: ``"subsim"`` is OPIM-C with the SUBSIM
RR generator (the paper's headline configuration), ``"hist"`` uses vanilla
generation inside Hit-and-Stop, and ``"hist+subsim"`` combines both
contributions.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.base import IMAlgorithm
from repro.algorithms.borgs import BorgsRIS
from repro.algorithms.dssa import DSSA
from repro.algorithms.greedy_mc import GreedyMonteCarlo
from repro.algorithms.heuristics import DegreeDiscount, DegreeTopK, RandomSeeds
from repro.algorithms.hist import HIST
from repro.algorithms.imm import IMM
from repro.algorithms.opimc import OPIMC
from repro.algorithms.pagerank import PageRankSeeds
from repro.algorithms.ssa import SSA
from repro.algorithms.tim import TIMPlus
from repro.graphs.csr import CSRGraph
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError

AlgorithmFactory = Callable[..., IMAlgorithm]

_REGISTRY: Dict[str, AlgorithmFactory] = {
    "opim-c": lambda graph, **kw: OPIMC(graph, VanillaICGenerator, **kw),
    "subsim": lambda graph, **kw: OPIMC(graph, SubsimICGenerator, **kw),
    "hist": lambda graph, **kw: HIST(graph, VanillaICGenerator, **kw),
    "hist+subsim": lambda graph, **kw: HIST(graph, SubsimICGenerator, **kw),
    "opim-c-lt": lambda graph, **kw: OPIMC(graph, LTGenerator, **kw),
    "hist-lt": lambda graph, **kw: HIST(graph, LTGenerator, **kw),
    "imm": lambda graph, **kw: IMM(graph, VanillaICGenerator, **kw),
    "imm-lt": lambda graph, **kw: IMM(graph, LTGenerator, **kw),
    "tim+": lambda graph, **kw: TIMPlus(graph, VanillaICGenerator, **kw),
    "ssa": lambda graph, **kw: SSA(graph, VanillaICGenerator, **kw),
    "d-ssa": lambda graph, **kw: DSSA(graph, VanillaICGenerator, **kw),
    "borgs-ris": lambda graph, **kw: BorgsRIS(graph, **kw),
    "opim-c-fast": lambda graph, **kw: OPIMC(graph, FastVanillaICGenerator, **kw),
    "greedy-mc": lambda graph, **kw: GreedyMonteCarlo(graph, **kw),
    "degree": lambda graph, **kw: DegreeTopK(graph, **kw),
    "pagerank": lambda graph, **kw: PageRankSeeds(graph, **kw),
    "degree-discount": lambda graph, **kw: DegreeDiscount(graph, **kw),
    "random": lambda graph, **kw: RandomSeeds(graph, **kw),
}


def available_algorithms() -> List[str]:
    """Sorted list of registry names."""
    return sorted(_REGISTRY)


def get_algorithm(name: str, graph: CSRGraph, **kwargs) -> IMAlgorithm:
    """Instantiate the named algorithm on ``graph``.

    Extra keyword arguments are forwarded to the algorithm's constructor
    (e.g. ``max_rr_sets`` for IMM/TIM+, ``fixed_b`` for HIST).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(graph, **kwargs)


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Extension hook: add a custom algorithm under ``name``.

    Overwriting an existing name raises; unregister is deliberately not
    offered (registries should be append-only in library code).
    """
    if name in _REGISTRY:
        raise ConfigurationError(f"algorithm {name!r} is already registered")
    _REGISTRY[name] = factory
