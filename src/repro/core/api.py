"""The library's front door.

>>> from repro import InfluenceMaximizer, preferential_attachment, wc_weights
>>> graph = wc_weights(preferential_attachment(2000, 4, seed=1))
>>> result = InfluenceMaximizer(graph).maximize(k=10, algorithm="subsim", seed=7)
>>> len(result.seeds)
10
"""

from __future__ import annotations

from typing import Optional

from repro.core.registry import get_algorithm
from repro.core.results import IMResult
from repro.estimation.montecarlo import SpreadEstimate, estimate_spread
from repro.graphs.csr import CSRGraph
from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.utils.rng import SeedLike


class InfluenceMaximizer:
    """Convenience facade binding a graph to the algorithm registry."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph

    def maximize(
        self,
        k: int,
        algorithm: str = "hist+subsim",
        eps: float = 0.1,
        delta: Optional[float] = None,
        seed: SeedLike = None,
        budget: Optional[Budget] = None,
        cancel: Optional[CancellationToken] = None,
        checkpoint=None,
        checkpoint_every: int = 1,
        resume: bool = False,
        fault_injector=None,
        metrics=None,
        trace: bool = False,
        **algorithm_kwargs,
    ) -> IMResult:
        """Select ``k`` seeds with the named algorithm.

        The default — HIST with SUBSIM generation — is the paper's best
        configuration across all evaluated settings.  ``eps`` and ``delta``
        control the ``(1 - 1/e - eps)``-approximation with probability
        ``1 - delta`` (``delta`` defaults to ``1/n``); heuristic algorithms
        ignore them.

        ``budget``, ``cancel``, ``checkpoint``, ``checkpoint_every``,
        ``resume``, ``fault_injector``, ``metrics`` (a
        :class:`~repro.observability.registry.MetricsRegistry` to populate)
        and ``trace`` (enable phase tracing) are forwarded verbatim to
        :meth:`~repro.algorithms.base.IMAlgorithm.run` — see its docstring
        for the partial-result, resume and observability semantics.
        """
        algo = get_algorithm(algorithm, self.graph, **algorithm_kwargs)
        return algo.run(
            k,
            eps=eps,
            delta=delta,
            seed=seed,
            budget=budget,
            cancel=cancel,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            fault_injector=fault_injector,
            metrics=metrics,
            trace=trace,
        )

    def evaluate(
        self,
        result: IMResult,
        model: str = "ic",
        num_simulations: int = 1000,
        seed: SeedLike = None,
    ) -> SpreadEstimate:
        """Monte-Carlo estimate of a result's expected spread."""
        return estimate_spread(
            self.graph,
            result.seeds,
            model=model,
            num_simulations=num_simulations,
            seed=seed,
        )


def maximize_influence(
    graph: CSRGraph,
    k: int,
    algorithm: str = "hist+subsim",
    eps: float = 0.1,
    delta: Optional[float] = None,
    seed: SeedLike = None,
    budget: Optional[Budget] = None,
    cancel: Optional[CancellationToken] = None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
    fault_injector=None,
    metrics=None,
    trace: bool = False,
    **algorithm_kwargs,
) -> IMResult:
    """Functional one-shot spelling of :meth:`InfluenceMaximizer.maximize`."""
    return InfluenceMaximizer(graph).maximize(
        k,
        algorithm=algorithm,
        eps=eps,
        delta=delta,
        seed=seed,
        budget=budget,
        cancel=cancel,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
        fault_injector=fault_injector,
        metrics=metrics,
        trace=trace,
        **algorithm_kwargs,
    )
