"""The library's front door.

>>> from repro import InfluenceMaximizer, preferential_attachment, wc_weights
>>> graph = wc_weights(preferential_attachment(2000, 4, seed=1))
>>> result = InfluenceMaximizer(graph).maximize(k=10, algorithm="subsim", seed=7)
>>> len(result.seeds)
10
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.registry import get_algorithm
from repro.core.results import IMResult
from repro.engine.session import QuerySession
from repro.estimation.montecarlo import SpreadEstimate, estimate_spread
from repro.graphs.csr import CSRGraph
from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike


class InfluenceMaximizer:
    """Convenience facade binding a graph to the algorithm registry."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self._sessions: Dict[Tuple[Any, ...], QuerySession] = {}

    def session(
        self,
        algorithm: str = "hist+subsim",
        *,
        seed: SeedLike = None,
        byte_cap: Optional[int] = None,
        **algorithm_kwargs,
    ) -> QuerySession:
        """A :class:`~repro.engine.session.QuerySession` over this graph.

        Successive ``maximize`` calls on the session share its RR banks, so
        a later query whose schedule stops inside an already-materialised
        prefix generates (almost) nothing new.  ``byte_cap`` bounds the
        banks' resident bytes (enforced between queries).
        """
        return QuerySession(
            self.graph,
            algorithm,
            seed=seed,
            byte_cap=byte_cap,
            **algorithm_kwargs,
        )

    def maximize(
        self,
        k: int,
        algorithm: str = "hist+subsim",
        eps: float = 0.1,
        delta: Optional[float] = None,
        seed: SeedLike = None,
        budget: Optional[Budget] = None,
        cancel: Optional[CancellationToken] = None,
        checkpoint=None,
        checkpoint_every: int = 1,
        resume: bool = False,
        fault_injector=None,
        batch_size: int = 1,
        workers: int = 1,
        batched_mode: Optional[str] = None,
        metrics=None,
        trace: bool = False,
        reuse_pool: bool = False,
        **algorithm_kwargs,
    ) -> IMResult:
        """Select ``k`` seeds with the named algorithm.

        The default — HIST with SUBSIM generation — is the paper's best
        configuration across all evaluated settings.  ``eps`` and ``delta``
        control the ``(1 - 1/e - eps)``-approximation with probability
        ``1 - delta`` (``delta`` defaults to ``1/n``); heuristic algorithms
        ignore them.

        ``budget``, ``cancel``, ``checkpoint``, ``checkpoint_every``,
        ``resume``, ``fault_injector``, ``batch_size``, ``workers``,
        ``batched_mode`` (override the vectorized kernel the batched
        engine runs — ``"ic"``, ``"subsim"`` or ``"lt"``),
        ``metrics`` (a
        :class:`~repro.observability.registry.MetricsRegistry` to populate)
        and ``trace`` (enable phase tracing) are forwarded verbatim to
        :meth:`~repro.algorithms.base.IMAlgorithm.run` — see its docstring
        for the partial-result, resume and observability semantics.

        ``reuse_pool=True`` routes the query through a cached
        :meth:`session` (keyed by algorithm, seed and algorithm kwargs), so
        repeated calls with different ``k`` share RR sets.  Run-level
        checkpointing is a per-run durability story and cannot be combined
        with it — persist the session itself instead.
        """
        if reuse_pool:
            if checkpoint is not None or resume:
                raise ConfigurationError(
                    "reuse_pool=True cannot be combined with run-level "
                    "checkpoint/resume; use session().save() instead"
                )
            key = (
                algorithm,
                seed,
                tuple(sorted(algorithm_kwargs.items(), key=lambda kv: kv[0])),
            )
            session = self._sessions.get(key)
            if session is None:
                session = self.session(
                    algorithm, seed=seed, **algorithm_kwargs
                )
                self._sessions[key] = session
            return session.maximize(
                k,
                eps=eps,
                delta=delta,
                budget=budget,
                cancel=cancel,
                fault_injector=fault_injector,
                batch_size=batch_size,
                workers=workers,
                batched_mode=batched_mode,
                metrics=metrics,
                trace=trace,
            )
        algo = get_algorithm(algorithm, self.graph, **algorithm_kwargs)
        return algo.run(
            k,
            eps=eps,
            delta=delta,
            seed=seed,
            budget=budget,
            cancel=cancel,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            fault_injector=fault_injector,
            batch_size=batch_size,
            workers=workers,
            batched_mode=batched_mode,
            metrics=metrics,
            trace=trace,
        )

    def evaluate(
        self,
        result: IMResult,
        model: str = "ic",
        num_simulations: int = 1000,
        seed: SeedLike = None,
    ) -> SpreadEstimate:
        """Monte-Carlo estimate of a result's expected spread."""
        return estimate_spread(
            self.graph,
            result.seeds,
            model=model,
            num_simulations=num_simulations,
            seed=seed,
        )


def maximize_influence(
    graph: CSRGraph,
    k: int,
    algorithm: str = "hist+subsim",
    eps: float = 0.1,
    delta: Optional[float] = None,
    seed: SeedLike = None,
    budget: Optional[Budget] = None,
    cancel: Optional[CancellationToken] = None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
    fault_injector=None,
    batch_size: int = 1,
    workers: int = 1,
    batched_mode: Optional[str] = None,
    metrics=None,
    trace: bool = False,
    **algorithm_kwargs,
) -> IMResult:
    """Functional one-shot spelling of :meth:`InfluenceMaximizer.maximize`."""
    return InfluenceMaximizer(graph).maximize(
        k,
        algorithm=algorithm,
        eps=eps,
        delta=delta,
        seed=seed,
        budget=budget,
        cancel=cancel,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
        fault_injector=fault_injector,
        batch_size=batch_size,
        workers=workers,
        batched_mode=batched_mode,
        metrics=metrics,
        trace=trace,
        **algorithm_kwargs,
    )
