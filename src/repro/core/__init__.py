"""Public facade: one entry point over every IM algorithm in the library."""

from repro.core.api import InfluenceMaximizer, maximize_influence
from repro.core.certify import Certificate, certify_result
from repro.core.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.results import IMResult
from repro.core.serialization import load_result, save_result

__all__ = [
    "Certificate",
    "IMResult",
    "InfluenceMaximizer",
    "available_algorithms",
    "certify_result",
    "get_algorithm",
    "load_result",
    "maximize_influence",
    "register_algorithm",
    "save_result",
]
