"""Result object shared by every influence-maximization algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set


@dataclass
class IMResult:
    """Seeds plus the bookkeeping the experiment harness reports on.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced the result.
    seeds:
        Selected seed nodes, in selection order.
    k, eps, delta:
        The query parameters (heuristics report ``eps = delta = 0``).
    runtime_seconds:
        Wall-clock time of the full run.
    num_rr_sets:
        Total RR sets generated across all pools and phases.
    average_rr_size:
        Mean node count per generated RR set (0 for non-RR algorithms).
    edges_examined, rng_draws:
        Machine-independent cost counters summed over all generators.
    lower_bound, upper_bound:
        The final influence bounds of adaptive algorithms (0 / inf
        otherwise); ``approx_ratio_certified = lower_bound / upper_bound``.
    status:
        ``"complete"`` for a run that finished its schedule; ``"partial"``
        when a budget expired or a cancellation token fired mid-run and the
        algorithm degraded to best-so-far seeds.  A partial result's bounds
        (and hence ``approx_ratio_certified``) reflect only what was
        certified before the interruption — typically weaker than the
        ``(1 - 1/e - eps)`` target, never invalid.
    stop_reason:
        Why a partial run stopped (``"deadline"``, ``"edges_examined"``,
        ``"num_rr_sets"``, ``"rr_memory"``, ``"cancelled"``); None when
        complete.
    phases:
        Per-phase wall-clock seconds (e.g. HIST's "sentinel" and
        "im_sentinel").
    extras:
        Algorithm-specific details (e.g. HIST's sentinel size ``b``).
    """

    algorithm: str
    seeds: List[int]
    k: int
    eps: float
    delta: float
    runtime_seconds: float
    num_rr_sets: int = 0
    average_rr_size: float = 0.0
    edges_examined: int = 0
    rng_draws: int = 0
    lower_bound: float = 0.0
    upper_bound: float = float("inf")
    status: str = "complete"
    stop_reason: Optional[str] = None
    phases: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def seed_set(self) -> Set[int]:
        """The seeds as a set (order-insensitive comparisons)."""
        return set(self.seeds)

    @property
    def is_partial(self) -> bool:
        """True when the run degraded instead of completing its schedule."""
        return self.status == "partial"

    @property
    def approx_ratio_certified(self) -> float:
        """The lower/upper bound ratio the algorithm certified at stop time."""
        if self.upper_bound in (0.0, float("inf")):
            return 0.0
        return self.lower_bound / self.upper_bound

    def summary_row(self) -> Dict[str, Any]:
        """Flat dictionary for table rendering."""
        return {
            "algorithm": self.algorithm,
            "k": self.k,
            "status": self.status,
            "runtime_s": round(self.runtime_seconds, 4),
            "num_rr_sets": self.num_rr_sets,
            "avg_rr_size": round(self.average_rr_size, 2),
            "edges_examined": self.edges_examined,
            "certified_ratio": round(self.approx_ratio_certified, 4),
        }
