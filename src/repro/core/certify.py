"""Post-hoc certification of a seed set's approximation quality.

An algorithm's in-run bounds depend on its own (possibly buggy or
mis-seeded) pools.  :func:`certify_result` re-derives both sides from
*fresh* samples, independent of how the seeds were produced:

* a lower bound on ``I(seeds)`` from Eq. 1 over new RR sets (valid because
  the new pool is independent of the seed choice), and
* an upper bound on ``OPT_k`` from Eq. 2 via a fresh greedy run's
  ``Lambda^u``.

The returned certificate states the largest ``ratio`` such that
``I(seeds) >= ratio * OPT_k`` holds with probability ``1 - delta`` under
the fresh randomness.  This is how the test suite audits every algorithm
without trusting its internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Type

from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.coverage.greedy import max_coverage_greedy
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Certificate:
    """Outcome of an independent quality audit of a seed set."""

    ratio: float            # certified I(S) / OPT_k
    lower_bound: float      # certified lower bound on I(S)
    upper_bound: float      # certified upper bound on OPT_k
    num_rr_sets: int        # fresh samples spent (per pool)
    delta: float            # total failure probability of the certificate
    #: False when the certificate was salvaged from an interrupted run's
    #: in-run bounds instead of a completed schedule.  The bounds are still
    #: statistically valid (each round's test carried its own union-bound
    #: share), but the ratio is whatever the run managed before stopping —
    #: not the (1 - 1/e - eps) target the full schedule would certify.
    complete: bool = True

    def meets(self, target_ratio: float) -> bool:
        """Does the certificate establish at least ``target_ratio``?"""
        return self.ratio >= target_ratio


def certify_result(
    graph: CSRGraph,
    seeds: Iterable[int],
    k: int,
    num_rr: int = 20_000,
    delta: float = 0.01,
    generator_cls: Type[RRGenerator] = SubsimICGenerator,
    seed: SeedLike = None,
) -> Certificate:
    """Audit ``seeds`` against the size-``k`` optimum with fresh RR sets.

    ``delta`` is split evenly between the two bounds.  Larger ``num_rr``
    tightens the certificate; the cost is two fresh pools of that size.
    """
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    if not seed_list:
        raise ConfigurationError("cannot certify an empty seed set")
    if not 1 <= k <= graph.n:
        raise ConfigurationError(f"k must lie in [1, n={graph.n}], got {k}")
    if num_rr < 1:
        raise ConfigurationError("num_rr must be positive")
    if not 0 < delta < 1:
        raise ConfigurationError("delta must lie in (0, 1)")

    rng = as_generator(seed)
    half_delta = delta / 2.0

    # Lower bound on I(seeds): pool independent of the seed choice.
    lower_pool = RRCollection(graph.n)
    lower_pool.extend(num_rr, generator_cls(graph), rng)
    lower = influence_lower_bound(
        lower_pool.coverage(seed_list), num_rr, graph.n, half_delta
    )

    # Upper bound on OPT_k: fresh pool + greedy-derived Lambda^u (Eq. 2).
    upper_pool = RRCollection(graph.n)
    upper_pool.extend(num_rr, generator_cls(graph), rng)
    greedy = max_coverage_greedy(upper_pool, select=min(k, graph.n), topk=k)
    upper = influence_upper_bound(
        greedy.upper_bound_coverage, num_rr, graph.n, half_delta
    )

    ratio = lower / upper if upper > 0 else 0.0
    return Certificate(
        ratio=ratio,
        lower_bound=lower,
        upper_bound=upper,
        num_rr_sets=num_rr,
        delta=delta,
    )


def partial_certificate(result) -> Certificate:
    """Weakened, flagged certificate salvaged from a partial run.

    When a budget expires mid-run, the last completed round's Eq. 1 / Eq. 2
    bounds still hold with their per-round failure probability, so the
    result's ``lower_bound / upper_bound`` ratio is an honest — merely
    weaker — guarantee.  The returned certificate carries it with
    ``complete=False`` so downstream consumers cannot mistake it for a full
    ``(1 - 1/e - eps)`` certification.  A run interrupted before its first
    bound computation yields the vacuous ``ratio = 0`` certificate.
    """
    upper = result.upper_bound
    ratio = (
        result.lower_bound / upper
        if upper not in (0.0, float("inf"))
        else 0.0
    )
    return Certificate(
        ratio=ratio,
        lower_bound=result.lower_bound,
        upper_bound=upper,
        num_rr_sets=result.num_rr_sets,
        delta=result.delta,
        complete=result.status == "complete",
    )
