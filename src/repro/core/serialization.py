"""JSON persistence for :class:`~repro.core.results.IMResult`.

Experiment sweeps produce many results; these helpers round-trip them
losslessly (up to float text representation) so runs can be archived and
re-analysed without recomputation.
"""

from __future__ import annotations

import json
import math
import os
from typing import Union

from repro.core.results import IMResult

PathLike = Union[str, "os.PathLike[str]"]


def result_to_dict(result: IMResult) -> dict:
    """Plain-JSON-compatible dictionary of every result field."""
    def clean(value):
        if isinstance(value, float) and not math.isfinite(value):
            return str(value)  # "inf" / "nan" survive JSON round-trips
        return value

    return {
        "algorithm": result.algorithm,
        "seeds": [int(s) for s in result.seeds],
        "k": result.k,
        "eps": result.eps,
        "delta": result.delta,
        "runtime_seconds": result.runtime_seconds,
        "num_rr_sets": result.num_rr_sets,
        "average_rr_size": result.average_rr_size,
        "edges_examined": result.edges_examined,
        "rng_draws": result.rng_draws,
        "lower_bound": clean(result.lower_bound),
        "upper_bound": clean(result.upper_bound),
        "status": result.status,
        "stop_reason": result.stop_reason,
        "phases": dict(result.phases),
        "extras": {k: clean(v) for k, v in result.extras.items()},
    }


def result_from_dict(payload: dict) -> IMResult:
    """Inverse of :func:`result_to_dict`."""
    def revive(value):
        if isinstance(value, str) and value in ("inf", "-inf", "nan"):
            return float(value)
        return value

    return IMResult(
        algorithm=payload["algorithm"],
        seeds=list(payload["seeds"]),
        k=payload["k"],
        eps=payload["eps"],
        delta=payload["delta"],
        runtime_seconds=payload["runtime_seconds"],
        num_rr_sets=payload.get("num_rr_sets", 0),
        average_rr_size=payload.get("average_rr_size", 0.0),
        edges_examined=payload.get("edges_examined", 0),
        rng_draws=payload.get("rng_draws", 0),
        lower_bound=revive(payload.get("lower_bound", 0.0)),
        upper_bound=revive(payload.get("upper_bound", float("inf"))),
        status=payload.get("status", "complete"),
        stop_reason=payload.get("stop_reason"),
        phases=dict(payload.get("phases", {})),
        extras={k: revive(v) for k, v in payload.get("extras", {}).items()},
    )


def save_result(result: IMResult, path: PathLike) -> None:
    """Write one result as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2, default=int)


def load_result(path: PathLike) -> IMResult:
    """Load a result previously written by :func:`save_result`."""
    with open(path) as handle:
        return result_from_dict(json.load(handle))
