"""Per-figure experiment functions (paper Section 7, Figures 1-7).

Each function regenerates the data series behind one figure on the scaled
stand-in datasets, returning a list of dict-rows that
:func:`repro.experiments.reporting.render_table` prints in the same
who-wins-where layout the paper plots.  Absolute numbers differ from the
paper's C++/200GB testbed — the reproduction target is the *shape*:

* Figure 1 — SUBSIM fastest under WC; IMM slowest by orders of magnitude.
* Figure 2 — SUBSIM beats vanilla RR generation on skewed (exponential /
  Weibull) weights by roughly the average degree.
* Figure 3 — HIST needs far fewer RR sets in its sentinel phase than
  OPIM-C overall (3a) and its average RR set is orders of magnitude
  smaller (3b).
* Figures 4/5 — HIST's advantage grows with k; influence still rises.
* Figures 6/7 — the larger the average RR size (theta / p ladder), the
  bigger HIST's win over OPIM-C.

Every function takes ``scale`` (dataset size multiplier) and ``seed`` so
benchmarks can dial cost; defaults are sized for laptop runs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.calibration import calibrate_uniform_ic, calibrate_wc_variant
from repro.experiments.harness import timed_run
from repro.experiments.workloads import DATASET_NAMES, make_dataset
from repro.graphs.csr import CSRGraph
from repro.graphs.weights import exponential_weights, wc_weights, weibull_weights
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.rng import as_generator

_DEFAULT_DATASETS = DATASET_NAMES


def _graphs(
    datasets: Optional[Sequence[str]], scale: float, seed: int
) -> Dict[str, CSRGraph]:
    names = datasets if datasets is not None else _DEFAULT_DATASETS
    return {name: make_dataset(name, scale=scale, seed=seed) for name in names}


# ----------------------------------------------------------------------
# Figure 1: running time under the WC model.
# ----------------------------------------------------------------------

def figure1_rows(
    datasets: Optional[Sequence[str]] = None,
    k: int = 50,
    eps: float = 0.5,
    scale: float = 0.05,
    seed: int = 0,
    algorithms: Sequence[str] = ("imm", "ssa", "opim-c", "subsim"),
    max_rr_sets: int = 200_000,
) -> List[dict]:
    """IM running time under WC: SUBSIM vs IMM / SSA / OPIM-C.

    ``max_rr_sets`` caps IMM/TIM+'s faithful-but-huge schedules (reported in
    the ``capped`` column when hit).
    """
    rows = []
    for name, base in _graphs(datasets, scale, seed).items():
        graph = wc_weights(base)
        for algorithm in algorithms:
            kwargs = (
                {"max_rr_sets": max_rr_sets}
                if algorithm in ("imm", "tim+")
                else {}
            )
            record = timed_run(
                graph, name, algorithm, k, eps, seed, setting="wc", **kwargs
            )
            row = record.as_row()
            row["capped"] = record.result.extras.get("capped", False)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 2: RR-generation cost under skewed weight distributions.
# ----------------------------------------------------------------------

def figure2_rows(
    datasets: Optional[Sequence[str]] = None,
    num_rr: int = 2000,
    distributions: Sequence[str] = ("exponential", "weibull"),
    scale: float = 0.05,
    seed: int = 0,
) -> List[dict]:
    """Vanilla vs SUBSIM generation cost for a fixed number of RR sets."""
    weighters = {"exponential": exponential_weights, "weibull": weibull_weights}
    rows = []
    for name, base in _graphs(datasets, scale, seed).items():
        for dist in distributions:
            graph = weighters[dist](base, seed=seed)
            for gen_cls in (VanillaICGenerator, SubsimICGenerator):
                generator = gen_cls(graph)
                rng = as_generator(seed)
                start = time.perf_counter()
                for _ in range(num_rr):
                    generator.generate(rng)
                elapsed = time.perf_counter() - start
                rows.append(
                    {
                        "dataset": name,
                        "distribution": dist,
                        "generator": generator.name,
                        "num_rr": num_rr,
                        "runtime_s": round(elapsed, 4),
                        "edges_examined": generator.counters.edges_examined,
                        "avg_rr_size": round(generator.counters.average_size(), 2),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Figures 3-6: WC-variant high-influence ladder.
# ----------------------------------------------------------------------

def _calibrated_wc_variant(
    base: CSRGraph, target_size: float, seed: int
) -> CSRGraph:
    _, graph, _ = calibrate_wc_variant(
        base, target_size, num_samples=120, seed=seed
    )
    return graph


def figure3_rows(
    datasets: Optional[Sequence[str]] = None,
    k: int = 100,
    eps: float = 0.3,
    scale: float = 0.05,
    seed: int = 0,
    target_size_fraction: float = 0.2,
) -> List[dict]:
    """RR-set statistics: HIST's sentinel phase vs OPIM-C (Figures 3a/3b).

    ``target_size_fraction`` positions the WC-variant theta so the average
    RR size is that fraction of n — the paper's theta_4K regime scaled down.
    """
    rows = []
    for name, base in _graphs(datasets, scale, seed).items():
        graph = _calibrated_wc_variant(base, target_size_fraction * base.n, seed)
        opim = timed_run(graph, name, "opim-c", k, eps, seed, setting="theta_hi")
        hist = timed_run(graph, name, "hist", k, eps, seed, setting="theta_hi")
        rows.append(
            {
                "dataset": name,
                "k": k,
                "opimc_rr_sets": opim.result.num_rr_sets,
                "hist_sentinel_rr_sets": hist.result.extras["sentinel_rr_sets"],
                "opimc_avg_rr_size": round(opim.result.average_rr_size, 1),
                "hist_avg_rr_size": round(hist.result.average_rr_size, 1),
                "rr_set_reduction": round(
                    opim.result.num_rr_sets
                    / max(hist.result.extras["sentinel_rr_sets"], 1),
                    2,
                ),
                "size_reduction": round(
                    opim.result.average_rr_size
                    / max(hist.result.average_rr_size, 1e-9),
                    2,
                ),
            }
        )
    return rows


def figure4_rows(
    dataset: str = "pokec-like",
    k_values: Sequence[int] = (1, 5, 10, 25, 50, 100),
    eps: float = 0.3,
    scale: float = 0.05,
    seed: int = 0,
    target_size_fraction: float = 0.2,
    algorithms: Sequence[str] = ("opim-c", "hist", "hist+subsim"),
) -> List[dict]:
    """Running time vs k under the WC-variant high-influence setting."""
    base = make_dataset(dataset, scale=scale, seed=seed)
    graph = _calibrated_wc_variant(base, target_size_fraction * base.n, seed)
    rows = []
    for k in k_values:
        for algorithm in algorithms:
            record = timed_run(
                graph, dataset, algorithm, k, eps, seed, setting="theta_hi"
            )
            rows.append(record.as_row())
    return rows


def figure5_rows(
    dataset: str = "pokec-like",
    k_values: Sequence[int] = (1, 5, 10, 25, 50, 100),
    eps: float = 0.3,
    scale: float = 0.05,
    seed: int = 0,
    target_size_fraction: float = 0.2,
    algorithm: str = "hist+subsim",
    num_simulations: int = 200,
) -> List[dict]:
    """Expected influence of the selected seeds as k grows."""
    base = make_dataset(dataset, scale=scale, seed=seed)
    graph = _calibrated_wc_variant(base, target_size_fraction * base.n, seed)
    rows = []
    for k in k_values:
        record = timed_run(
            graph,
            dataset,
            algorithm,
            k,
            eps,
            seed,
            setting="theta_hi",
            evaluate_spread=True,
            num_simulations=num_simulations,
        )
        row = record.as_row()
        row["spread_fraction_of_n"] = round(record.spread / graph.n, 4)
        rows.append(row)
    return rows


def figure6_rows(
    dataset: str = "pokec-like",
    k: int = 50,
    eps: float = 0.3,
    scale: float = 0.05,
    seed: int = 0,
    size_fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.35),
    algorithms: Sequence[str] = ("opim-c", "hist", "hist+subsim"),
) -> List[dict]:
    """Running time across the WC-variant average-RR-size ladder."""
    base = make_dataset(dataset, scale=scale, seed=seed)
    rows = []
    for fraction in size_fractions:
        target = fraction * base.n
        graph = _calibrated_wc_variant(base, target, seed)
        for algorithm in algorithms:
            record = timed_run(
                graph,
                dataset,
                algorithm,
                k,
                eps,
                seed,
                setting=f"size~{int(target)}",
            )
            row = record.as_row()
            row["target_avg_rr_size"] = int(target)
            rows.append(row)
    return rows


def figure7_rows(
    dataset: str = "pokec-like",
    k: int = 50,
    eps: float = 0.3,
    scale: float = 0.05,
    seed: int = 0,
    size_fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.35),
    algorithms: Sequence[str] = ("opim-c", "hist", "hist+subsim"),
) -> List[dict]:
    """Running time across the uniform-IC average-RR-size ladder."""
    base = make_dataset(dataset, scale=scale, seed=seed)
    rows = []
    for fraction in size_fractions:
        target = fraction * base.n
        p, graph, _ = calibrate_uniform_ic(base, target, num_samples=120, seed=seed)
        for algorithm in algorithms:
            record = timed_run(
                graph,
                dataset,
                algorithm,
                k,
                eps,
                seed,
                setting=f"p={p:.4g}",
            )
            row = record.as_row()
            row["target_avg_rr_size"] = int(target)
            rows.append(row)
    return rows
