"""Empirical verification of the (1 - 1/e - eps, delta) guarantee.

The theoretical claim behind every principled algorithm here: with
probability at least ``1 - delta`` the returned seed set's influence is at
least ``(1 - 1/e - eps) * OPT_k``.  This module audits that claim head-on:
run the algorithm many times with independent randomness, certify each
run's output with fresh samples (:func:`repro.core.certify.certify_result`),
and compare the empirical failure rate against ``delta``.

Because the certificate itself is conservative (it compares a *lower*
bound on ``I(S)`` against an *upper* bound on ``OPT_k``), a run counted as
"below target" is not proof of an algorithm bug — but a failure rate well
above ``delta + certificate slack`` is.  The audit therefore reports both
the strict rate and the certificate-adjusted target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.certify import Certificate, certify_result
from repro.core.registry import get_algorithm
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import spawn_generators


@dataclass
class GuaranteeAudit:
    """Outcome of a repeated-runs guarantee audit."""

    algorithm: str
    k: int
    eps: float
    delta: float
    target_ratio: float
    certificates: List[Certificate]
    certificate_slack: float

    @property
    def runs(self) -> int:
        return len(self.certificates)

    @property
    def certified_ratios(self) -> List[float]:
        return [c.ratio for c in self.certificates]

    @property
    def failures(self) -> int:
        """Runs whose certificate missed even the slack-adjusted target."""
        adjusted = self.target_ratio - self.certificate_slack
        return sum(1 for c in self.certificates if c.ratio < adjusted)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.runs if self.runs else 0.0

    def holds(self) -> bool:
        """Empirical failure rate within the promised delta (plus noise)."""
        # Binomial noise allowance: one standard deviation above delta.
        allowance = math.sqrt(
            max(self.delta * (1 - self.delta), 1e-12) / max(self.runs, 1)
        )
        return self.failure_rate <= self.delta + allowance + 1e-12

    def summary_row(self) -> dict:
        ratios = self.certified_ratios
        return {
            "algorithm": self.algorithm,
            "k": self.k,
            "eps": self.eps,
            "runs": self.runs,
            "target_ratio": round(self.target_ratio, 4),
            "min_certified": round(min(ratios), 4) if ratios else 0.0,
            "mean_certified": round(sum(ratios) / len(ratios), 4)
            if ratios
            else 0.0,
            "failures": self.failures,
            "holds": self.holds(),
        }


def audit_guarantee(
    graph: CSRGraph,
    algorithm: str,
    k: int,
    eps: float = 0.3,
    delta: float = 0.1,
    runs: int = 10,
    certificate_rr: int = 20_000,
    certificate_slack: float = 0.1,
    seed: int = 0,
    **algorithm_kwargs,
) -> GuaranteeAudit:
    """Run ``algorithm`` ``runs`` times and certify every output.

    ``certificate_slack`` absorbs the certificate's own conservatism (the
    gap between its bound pair at ``certificate_rr`` samples); shrink it as
    you raise ``certificate_rr``.
    """
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    if not 0 <= certificate_slack < 1:
        raise ConfigurationError("certificate_slack must lie in [0, 1)")
    target = 1.0 - 1.0 / math.e - eps
    streams = spawn_generators(seed, 2 * runs)
    certificates = []
    for i in range(runs):
        algo = get_algorithm(algorithm, graph, **algorithm_kwargs)
        result = algo.run(k, eps=eps, delta=delta, seed=streams[2 * i])
        certificates.append(
            certify_result(
                graph,
                result.seeds,
                k=k,
                num_rr=certificate_rr,
                delta=0.01,
                seed=streams[2 * i + 1],
            )
        )
    return GuaranteeAudit(
        algorithm=algorithm,
        k=k,
        eps=eps,
        delta=delta,
        target_ratio=target,
        certificates=certificates,
        certificate_slack=certificate_slack,
    )
