"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

import io
import math
from typing import Iterable, List, Mapping, Optional, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Compact float formatting: trims trailing zeros, keeps magnitude."""
    if not math.isfinite(value):
        return str(value)  # "inf", "-inf", "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}g}"


def _cell(value) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    title: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    ``columns`` fixes the column order; by default the first row's key order
    is used (dicts preserve insertion order).
    """
    out = io.StringIO()
    if title:
        out.write(f"== {title} ==\n")
    if not rows:
        out.write("(no rows)\n")
        return out.getvalue()
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(c), *(len(_cell(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in rows:
        out.write(
            "  ".join(_cell(row.get(c, "")).ljust(widths[c]) for c in columns) + "\n"
        )
    return out.getvalue()


def rows_to_csv(rows: Iterable[Mapping[str, object]], path: str) -> None:
    """Persist dict-rows as CSV (column order from the first row)."""
    rows = list(rows)
    if not rows:
        with open(path, "w") as handle:
            handle.write("")
        return
    columns: List[str] = list(rows[0].keys())
    with open(path, "w") as handle:
        handle.write(",".join(columns) + "\n")
        for row in rows:
            handle.write(",".join(_cell(row.get(c, "")) for c in columns) + "\n")
