"""Experiment harness reproducing the paper's evaluation (Section 7)."""

from repro.experiments.calibration import (
    average_rr_size,
    calibrate_uniform_ic,
    calibrate_wc_variant,
)
from repro.experiments.guarantees import GuaranteeAudit, audit_guarantee
from repro.experiments.harness import RunRecord, timed_run
from repro.experiments.profiles import RRSizeProfile, profile_rr_sizes
from repro.experiments.reportgen import available_results, generate_report
from repro.experiments.reporting import format_float, render_table, rows_to_csv
from repro.experiments.stability import (
    StabilityReport,
    pairwise_jaccard,
    seed_set_jaccard,
    stability_report,
)
from repro.experiments.sweep import SweepConfig, run_sweep, summarize_sweep
from repro.experiments.theory_checks import (
    check_lemma3,
    check_lemma4_wc,
    theory_check_rows,
)
from repro.experiments.workloads import (
    DATASET_NAMES,
    dataset_spec,
    make_dataset,
    table2_rows,
)

__all__ = [
    "DATASET_NAMES",
    "GuaranteeAudit",
    "RRSizeProfile",
    "RunRecord",
    "StabilityReport",
    "SweepConfig",
    "audit_guarantee",
    "available_results",
    "average_rr_size",
    "generate_report",
    "calibrate_uniform_ic",
    "calibrate_wc_variant",
    "check_lemma3",
    "check_lemma4_wc",
    "theory_check_rows",
    "dataset_spec",
    "format_float",
    "make_dataset",
    "pairwise_jaccard",
    "profile_rr_sizes",
    "render_table",
    "rows_to_csv",
    "seed_set_jaccard",
    "stability_report",
    "run_sweep",
    "summarize_sweep",
    "table2_rows",
    "timed_run",
]
