"""RR-set size profiling.

Figure 3's "average size" hides a heavy tail: in high-influence settings a
few giant RR sets dominate cost and memory.  The profiler collects the full
size distribution for any generator/sentinel configuration — percentiles,
tail mass, and a text histogram — which is how the examples and docs
motivate HIST beyond the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

import numpy as np

from repro.experiments.plotting import bar_chart
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class RRSizeProfile:
    """Distribution summary of random RR-set sizes."""

    sizes: np.ndarray
    edges_examined: int

    @property
    def count(self) -> int:
        return len(self.sizes)

    @property
    def mean(self) -> float:
        return float(self.sizes.mean())

    @property
    def maximum(self) -> int:
        return int(self.sizes.max())

    def percentile(self, q: float) -> float:
        """Size at percentile ``q`` (0-100)."""
        return float(np.percentile(self.sizes, q))

    def tail_mass(self, threshold: int) -> float:
        """Fraction of total *node mass* in RR sets larger than ``threshold``.

        The cost-relevant number: one 10k-node RR set outweighs a thousand
        10-node ones.
        """
        total = self.sizes.sum()
        if total == 0:
            return 0.0
        return float(self.sizes[self.sizes > threshold].sum() / total)

    def summary_row(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "p50": round(self.percentile(50), 1),
            "p90": round(self.percentile(90), 1),
            "p99": round(self.percentile(99), 1),
            "max": self.maximum,
            "edges_examined": self.edges_examined,
        }

    def histogram_chart(self, bins: int = 8, title: Optional[str] = None) -> str:
        """Log-spaced text histogram of the size distribution."""
        hi = max(self.maximum, 2)
        edges = np.unique(
            np.round(np.geomspace(1, hi, bins + 1)).astype(np.int64)
        )
        counts, _ = np.histogram(self.sizes, bins=edges)
        labels = {
            f"{lo}-{hi_}": int(c)
            for lo, hi_, c in zip(edges[:-1], edges[1:], counts)
        }
        return bar_chart(labels, title=title or "RR-set size distribution")


def profile_rr_sizes(
    graph: CSRGraph,
    num_samples: int = 1000,
    generator_cls: Type[RRGenerator] = SubsimICGenerator,
    sentinel_seeds: Optional[list] = None,
    seed: SeedLike = 0,
) -> RRSizeProfile:
    """Sample ``num_samples`` random RR sets and profile their sizes.

    ``sentinel_seeds`` enables Algorithm 5's early stop, profiling exactly
    what HIST's second phase experiences.
    """
    if num_samples < 1:
        raise ConfigurationError("num_samples must be >= 1")
    stop_mask = None
    if sentinel_seeds is not None:
        stop_mask = np.zeros(graph.n, dtype=bool)
        for s in sentinel_seeds:
            if not 0 <= s < graph.n:
                raise ConfigurationError(
                    f"sentinel {s} out of range [0, {graph.n})"
                )
            stop_mask[s] = True
    rng = as_generator(seed)
    generator = generator_cls(graph)
    sizes = np.fromiter(
        (
            len(generator.generate(rng, stop_mask=stop_mask))
            for _ in range(num_samples)
        ),
        dtype=np.int64,
        count=num_samples,
    )
    return RRSizeProfile(
        sizes=sizes, edges_examined=generator.counters.edges_examined
    )
