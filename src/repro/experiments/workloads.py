"""Scaled stand-ins for the paper's four benchmark datasets (Table 2).

The originals (Pokec 30.6M edges, Orkut 117M, Twitter 1.5B, Friendster
1.8B) are far beyond an interpreted traversal, so each dataset is replaced
by a preferential-attachment graph that preserves the properties the
paper's effects hinge on — directedness, heavy-tailed in-degree, and the
relative average-degree ordering — at ``scale * base_n`` nodes.  See
DESIGN.md ("Substitutions") for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import preferential_attachment
from repro.graphs.stats import graph_summary
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset."""

    name: str
    stand_in_for: str
    directed: bool
    base_n: int
    edges_per_node: int
    reciprocal: float
    paper_n: str
    paper_m: str


_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("pokec-like", "Pokec", True, 20_000, 8, 0.4, "1.6M", "30.6M"),
        DatasetSpec("orkut-like", "Orkut", False, 15_000, 9, 0.0, "3.1M", "117.2M"),
        DatasetSpec(
            "twitter-like", "Twitter", True, 30_000, 7, 0.25, "41.7M", "1.5B"
        ),
        DatasetSpec(
            "friendster-like", "Friendster", False, 25_000, 7, 0.0, "65.6M", "1.8B"
        ),
    )
}

DATASET_NAMES = tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset recipe by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(_SPECS)}"
        ) from None


def make_dataset(name: str, scale: float = 1.0, seed: int = 0) -> CSRGraph:
    """Build the named stand-in at the given scale (unweighted edges).

    ``scale`` multiplies the node count; apply a weighting scheme from
    :mod:`repro.graphs.weights` before running algorithms.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    spec = dataset_spec(name)
    n = max(int(spec.base_n * scale), spec.edges_per_node + 1)
    return preferential_attachment(
        n,
        spec.edges_per_node,
        seed=seed,
        directed=spec.directed,
        reciprocal=spec.reciprocal,
    )


def table2_rows(scale: float = 1.0, seed: int = 0) -> List[dict]:
    """Regenerate the paper's Table 2 for the stand-in datasets.

    Each row carries the paper's original sizes alongside the stand-in's,
    making the substitution explicit in the rendered table.
    """
    rows = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        graph = make_dataset(name, scale=scale, seed=seed)
        summary = graph_summary(graph)
        rows.append(
            {
                "dataset": name,
                "stand_in_for": spec.stand_in_for,
                "type": "directed" if spec.directed else "undirected",
                "n": summary.n,
                "m": summary.m,
                "avg_degree": round(summary.avg_degree, 1),
                "paper_n": spec.paper_n,
                "paper_m": spec.paper_m,
            }
        )
    return rows
