"""Calibrating cascade parameters to a target average RR-set size.

The paper's high-influence experiments (Figures 3, 4, 6, 7) are organised
around the *average size of a random RR set*: for each dataset it tunes the
WC-variant constant ``theta`` (edge weight ``min(1, theta/d_in)``) or the
uniform probability ``p`` until the average size hits 50 / 400 / 1K / 4K /
8K / 32K.  These helpers perform the same tuning by Monte-Carlo evaluation
plus bisection — average RR size is monotone in both knobs in expectation.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.graphs.csr import CSRGraph
from repro.graphs.weights import uniform_weights, wc_variant_weights
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.exceptions import CalibrationError
from repro.utils.rng import SeedLike, as_generator


def average_rr_size(
    graph: CSRGraph,
    num_samples: int = 200,
    seed: SeedLike = 0,
    generator_cls=SubsimICGenerator,
) -> float:
    """Monte-Carlo estimate of the mean random-RR-set size on ``graph``."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = as_generator(seed)
    generator = generator_cls(graph)
    total = 0
    for _ in range(num_samples):
        total += len(generator.generate(rng))
    return total / num_samples


def _bisect_parameter(
    build: Callable[[float], CSRGraph],
    lo: float,
    hi: float,
    target: float,
    num_samples: int,
    seed: SeedLike,
    rel_tol: float,
    max_iters: int,
) -> Tuple[float, CSRGraph, float]:
    """Bisection on a monotone parameter -> average-RR-size curve.

    Evaluations reuse the same RNG seed so that the empirical curve stays
    (nearly) monotone despite sampling noise.
    """
    best = None
    for _ in range(max_iters):
        mid = (lo + hi) / 2.0
        graph = build(mid)
        size = average_rr_size(graph, num_samples=num_samples, seed=seed)
        if best is None or abs(size - target) < abs(best[2] - target):
            best = (mid, graph, size)
        if abs(size - target) <= rel_tol * target:
            return mid, graph, size
        if size < target:
            lo = mid
        else:
            hi = mid
    assert best is not None
    return best


def calibrate_wc_variant(
    graph: CSRGraph,
    target_avg_size: float,
    num_samples: int = 200,
    seed: SeedLike = 0,
    rel_tol: float = 0.2,
    max_iters: int = 25,
) -> Tuple[float, CSRGraph, float]:
    """Find ``theta`` so the WC-variant model hits ``target_avg_size``.

    Returns ``(theta, weighted_graph, achieved_size)``.  Raises
    :class:`~repro.utils.exceptions.CalibrationError` when the target is
    unreachable (it cannot exceed the mean reachable-set size at the
    all-edges-live extreme, i.e. roughly ``n`` on a connected graph).
    """
    if target_avg_size < 1.0:
        raise CalibrationError("target size below 1 is unreachable (root counts)")
    max_theta = float(max(int(graph.in_degree().max()), 1))
    ceiling = average_rr_size(
        wc_variant_weights(graph, max_theta), num_samples=num_samples, seed=seed
    )
    if target_avg_size > ceiling:
        raise CalibrationError(
            f"target {target_avg_size} exceeds the graph's ceiling {ceiling:.1f}"
        )
    return _bisect_parameter(
        lambda theta: wc_variant_weights(graph, theta),
        1.0,
        max_theta,
        target_avg_size,
        num_samples,
        seed,
        rel_tol,
        max_iters,
    )


def calibrate_uniform_ic(
    graph: CSRGraph,
    target_avg_size: float,
    num_samples: int = 200,
    seed: SeedLike = 0,
    rel_tol: float = 0.2,
    max_iters: int = 30,
) -> Tuple[float, CSRGraph, float]:
    """Find the uniform-IC probability ``p`` hitting ``target_avg_size``.

    Returns ``(p, weighted_graph, achieved_size)``.
    """
    if target_avg_size < 1.0:
        raise CalibrationError("target size below 1 is unreachable (root counts)")
    ceiling = average_rr_size(
        uniform_weights(graph, 1.0), num_samples=num_samples, seed=seed
    )
    if target_avg_size > ceiling:
        raise CalibrationError(
            f"target {target_avg_size} exceeds the graph's ceiling {ceiling:.1f}"
        )
    return _bisect_parameter(
        lambda p: uniform_weights(graph, p),
        0.0,
        1.0,
        target_avg_size,
        num_samples,
        seed,
        rel_tol,
        max_iters,
    )
