"""Empirical validation of the paper's cost analysis (Lemmas 3 and 4).

The complexity results rest on two quantitative claims that can be
measured directly:

* **Lemma 3** — sampling a subset of ``h`` equal-probability elements
  costs ``O(1 + mu)`` expected, ``mu = h p``: the number of positions a
  geometric-skip pass examines should track ``1 + mu``.
* **Lemma 4** — the expected number of edges examined per random RR set is
  at most ``theta(m/n) * I(v*)``, where ``v*`` is drawn with probability
  proportional to ``theta(d_in(v))``.  Under WC (``theta = 1``) this says:
  *edges examined per RR set <= expected influence of a degree-biased
  random node* — a sharp, measurable inequality.

These checks turn the paper's Section 3.2 from prose into assertions; the
theory bench runs them on every stand-in dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.estimation.montecarlo import simulate_ic
from repro.graphs.csr import CSRGraph
from repro.rrsets.subsim import SubsimICGenerator
from repro.sampling.geometric import sample_equal_probability
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Lemma3Check:
    """Measured vs predicted subset-sampling cost."""

    h: int
    p: float
    measured_cost: float     # geometric draws per sample (examined + final)
    predicted_cost: float    # 1 + h * p

    @property
    def ratio(self) -> float:
        return self.measured_cost / self.predicted_cost


def check_lemma3(
    h: int, p: float, trials: int = 5000, seed: SeedLike = 0
) -> Lemma3Check:
    """Measure geometric-skip cost against the ``1 + mu`` prediction.

    Cost is counted as the number of geometric draws per run — one per
    selected element plus the terminal overshoot — whose expectation is
    exactly ``1 + h p`` for ``p < 1``.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    rng = as_generator(seed)
    total_draws = 0
    for _ in range(trials):
        total_draws += len(sample_equal_probability(h, p, rng)) + 1
    return Lemma3Check(
        h=h,
        p=p,
        measured_cost=total_draws / trials,
        predicted_cost=1.0 + h * p,
    )


@dataclass(frozen=True)
class Lemma4Check:
    """Measured RR cost vs the degree-biased-influence bound."""

    measured_cost: float         # mean edges examined per random RR set
    bound: float                 # theta(m/n) * I(v*) estimate
    influence_vstar: float       # E[I(v*)] under the theta-biased root
    theta_m_over_n: float

    @property
    def slack(self) -> float:
        """bound / measured — >= 1 when the lemma holds."""
        if self.measured_cost == 0:
            return float("inf")
        return self.bound / self.measured_cost


def check_lemma4_wc(
    graph: CSRGraph,
    num_rr: int = 2000,
    num_influence_samples: int = 2000,
    seed: SeedLike = 0,
) -> Lemma4Check:
    """Validate Lemma 4 under WC, where ``theta(x) = 1``.

    The bound specialises to: mean SUBSIM edges-examined per random RR set
    ``<= 1 * I(v*)``, with ``v*`` uniform over nodes with at least one
    in-edge (``theta(d_in) = 1`` for every such node; nodes with no
    in-edges contribute no sampling work).

    Under WC every step of the proof holds with *equality* (each node's
    incoming probabilities sum to exactly ``theta(d_in) = 1``), so the two
    sides estimate the same quantity: expect ``slack ~= 1`` up to
    Monte-Carlo noise — which is a sharper validation than the inequality.
    """
    if graph.weight_model != "wc":
        raise ConfigurationError(
            f"this check is specialised to WC weights, got "
            f"{graph.weight_model!r}"
        )
    rng = as_generator(seed)

    generator = SubsimICGenerator(graph)
    for _ in range(num_rr):
        generator.generate(rng)
    measured = generator.counters.edges_examined / num_rr

    # E[I(v*)]: v* uniform over nodes with in-degree >= 1 (theta = 1 each).
    candidates = np.flatnonzero(graph.in_degree() > 0)
    if len(candidates) == 0:
        return Lemma4Check(measured, 0.0, 0.0, 1.0)
    total = 0
    for _ in range(num_influence_samples):
        v = int(candidates[rng.integers(0, len(candidates))])
        total += simulate_ic(graph, [v], rng)
    influence = total / num_influence_samples
    # theta(V) = |candidates|; bound = theta(V)/n * I(v*) <= theta(m/n)=1 * I.
    bound = (len(candidates) / graph.n) * influence
    return Lemma4Check(
        measured_cost=measured,
        bound=bound,
        influence_vstar=influence,
        theta_m_over_n=1.0,
    )


def theory_check_rows(graph: CSRGraph, seed: int = 0) -> Dict[str, object]:
    """One summary row combining both checks on a WC graph.

    Influence under WC on heavy-tailed graphs is itself heavy-tailed, so
    the bound side needs generous sampling before the inequality is
    visible through the noise.
    """
    lemma4 = check_lemma4_wc(
        graph, num_rr=3000, num_influence_samples=8000, seed=seed
    )
    lemma3 = check_lemma3(
        h=max(int(graph.average_degree()), 1), p=0.1, seed=seed
    )
    return {
        "n": graph.n,
        "m": graph.m,
        "lemma3_measured": round(lemma3.measured_cost, 3),
        "lemma3_predicted": round(lemma3.predicted_cost, 3),
        "lemma4_cost_per_rr": round(lemma4.measured_cost, 2),
        "lemma4_bound": round(lemma4.bound, 2),
        "lemma4_slack": round(lemma4.slack, 2),
    }
