"""Extension experiments beyond the paper's printed figures.

The paper proves (Section 3.2) that LT-model IM already enjoys the
tightened bound and claims seed quality is unaffected by SUBSIM/HIST; these
experiments check both claims empirically, plus the engineering ablation
between the interpreted and vectorised vanilla generators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.estimation.montecarlo import estimate_spread
from repro.experiments.harness import timed_run
from repro.experiments.workloads import make_dataset
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    wc_weights,
)


def lt_model_rows(
    dataset: str = "pokec-like",
    k: int = 25,
    eps: float = 0.3,
    scale: float = 0.05,
    seed: int = 0,
    algorithms: Sequence[str] = ("opim-c-lt", "hist-lt", "degree", "pagerank"),
    num_simulations: int = 200,
) -> List[dict]:
    """Runtime and LT-spread comparison on normalised skewed weights."""
    base = make_dataset(dataset, scale=scale, seed=seed)
    graph = lt_normalized_weights(exponential_weights(base, seed=seed))
    rows = []
    for algorithm in algorithms:
        record = timed_run(graph, dataset, algorithm, k, eps, seed, setting="lt")
        spread = estimate_spread(
            graph,
            record.result.seeds,
            model="lt",
            num_simulations=num_simulations,
            seed=seed,
        ).mean
        row = record.as_row()
        row["lt_spread"] = round(spread, 1)
        rows.append(row)
    return rows


def seed_quality_rows(
    dataset: str = "pokec-like",
    k: int = 25,
    eps: float = 0.2,
    scale: float = 0.05,
    seed: int = 0,
    algorithms: Sequence[str] = (
        "subsim",
        "hist+subsim",
        "opim-c",
        "imm",
        "degree",
        "degree-discount",
        "pagerank",
        "random",
    ),
    num_simulations: int = 300,
    max_rr_sets: Optional[int] = 100_000,
) -> List[dict]:
    """Spread of every algorithm's seeds under the WC model.

    The paper's implicit quality claim: SUBSIM and HIST select seeds as
    good as the baselines' (the guarantee is preserved), while heuristics
    may trail arbitrarily.
    """
    base = make_dataset(dataset, scale=scale, seed=seed)
    graph = wc_weights(base)
    rows = []
    for algorithm in algorithms:
        kwargs = (
            {"max_rr_sets": max_rr_sets}
            if algorithm in ("imm", "tim+") and max_rr_sets
            else {}
        )
        record = timed_run(
            graph,
            dataset,
            algorithm,
            k,
            eps,
            seed,
            setting="wc",
            evaluate_spread=True,
            num_simulations=num_simulations,
            **kwargs,
        )
        rows.append(record.as_row())
    rows.sort(key=lambda r: -r["spread"])
    return rows
