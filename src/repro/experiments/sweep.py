"""Generic parameter-sweep runner.

Benchmarks cover the paper's figures; research use needs free-form grids
("every algorithm x every k x three seeds on these two datasets").
:func:`run_sweep` executes the Cartesian product of a :class:`SweepConfig`,
returns flat records, and optionally persists them as CSV for external
analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import RunRecord, timed_run
from repro.experiments.reporting import rows_to_csv
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError


@dataclass
class SweepConfig:
    """Grid specification for :func:`run_sweep`.

    ``graphs`` maps dataset labels to already-weighted graphs;
    ``algorithm_kwargs`` supplies per-algorithm constructor arguments
    (e.g. ``{"imm": {"max_rr_sets": 50_000}}``).
    """

    graphs: Dict[str, CSRGraph]
    algorithms: Sequence[str]
    k_values: Sequence[int]
    eps: float = 0.3
    seeds: Sequence[int] = (0,)
    evaluate_spread: bool = False
    num_simulations: int = 200
    algorithm_kwargs: Dict[str, dict] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.graphs:
            raise ConfigurationError("sweep needs at least one graph")
        if not self.algorithms:
            raise ConfigurationError("sweep needs at least one algorithm")
        if not self.k_values or min(self.k_values) < 1:
            raise ConfigurationError("k_values must be positive")
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")

    def size(self) -> int:
        """Number of runs the sweep will execute."""
        return (
            len(self.graphs)
            * len(self.algorithms)
            * len(self.k_values)
            * len(self.seeds)
        )


def run_sweep(
    config: SweepConfig, csv_path: Optional[str] = None
) -> List[RunRecord]:
    """Execute the full grid; optionally write flat rows to ``csv_path``.

    Runs are ordered dataset-major, then algorithm, k, seed — so partial
    output (the returned list grows in this order) is easy to reason about
    when interrupted.
    """
    config.validate()
    records: List[RunRecord] = []
    for (label, graph), algorithm, k, seed in itertools.product(
        config.graphs.items(), config.algorithms, config.k_values, config.seeds
    ):
        kwargs = config.algorithm_kwargs.get(algorithm, {})
        record = timed_run(
            graph,
            label,
            algorithm,
            k,
            config.eps,
            seed,
            setting=f"seed={seed}",
            evaluate_spread=config.evaluate_spread,
            num_simulations=config.num_simulations,
            **kwargs,
        )
        records.append(record)
    if csv_path is not None:
        rows_to_csv([r.as_row() for r in records], csv_path)
    return records


def summarize_sweep(records: Sequence[RunRecord]) -> List[dict]:
    """Aggregate repeated seeds: mean runtime / spread per configuration."""
    grouped: Dict[tuple, List[RunRecord]] = {}
    for record in records:
        key = (record.dataset, record.algorithm, record.k)
        grouped.setdefault(key, []).append(record)
    rows = []
    for (dataset, algorithm, k), group in grouped.items():
        runtimes = [r.result.runtime_seconds for r in group]
        row = {
            "dataset": dataset,
            "algorithm": algorithm,
            "k": k,
            "runs": len(group),
            "mean_runtime_s": round(sum(runtimes) / len(runtimes), 4),
            "max_runtime_s": round(max(runtimes), 4),
        }
        spreads = [r.spread for r in group if r.spread is not None]
        if spreads:
            row["mean_spread"] = round(sum(spreads) / len(spreads), 1)
        rows.append(row)
    return rows
