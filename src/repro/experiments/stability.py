"""Seed-set stability analysis.

Randomised algorithms return different seed sets run to run; what should
be stable is their *quality*, while membership can legitimately churn
among near-equivalent nodes.  These tools quantify both:

* :func:`seed_set_jaccard` / :func:`pairwise_jaccard` — membership overlap;
* :func:`stability_report` — run an algorithm several times and report
  overlap statistics alongside the spread band, separating "unstable
  seeds" (fine) from "unstable quality" (a bug or an eps too large).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.core.registry import get_algorithm
from repro.estimation.montecarlo import estimate_spread
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import spawn_generators


def seed_set_jaccard(a: Iterable[int], b: Iterable[int]) -> float:
    """Jaccard similarity |A ∩ B| / |A ∪ B| of two seed sets."""
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def pairwise_jaccard(seed_sets: Sequence[Iterable[int]]) -> List[float]:
    """Jaccard similarity of every unordered pair of seed sets."""
    sets = [set(s) for s in seed_sets]
    out = []
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            out.append(seed_set_jaccard(sets[i], sets[j]))
    return out


@dataclass
class StabilityReport:
    """Membership and quality stability over repeated runs."""

    algorithm: str
    k: int
    seed_sets: List[Set[int]]
    spreads: List[float]

    @property
    def runs(self) -> int:
        return len(self.seed_sets)

    @property
    def mean_jaccard(self) -> float:
        values = pairwise_jaccard(self.seed_sets)
        return sum(values) / len(values) if values else 1.0

    @property
    def core_seeds(self) -> Set[int]:
        """Seeds present in every run — the consensus backbone."""
        if not self.seed_sets:
            return set()
        core = set(self.seed_sets[0])
        for s in self.seed_sets[1:]:
            core &= s
        return core

    @property
    def spread_band(self) -> float:
        """Relative quality spread: (max - min) / max."""
        if not self.spreads or max(self.spreads) == 0:
            return 0.0
        return (max(self.spreads) - min(self.spreads)) / max(self.spreads)

    def summary_row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "k": self.k,
            "runs": self.runs,
            "mean_jaccard": round(self.mean_jaccard, 3),
            "core_seeds": len(self.core_seeds),
            "min_spread": round(min(self.spreads), 1) if self.spreads else 0,
            "max_spread": round(max(self.spreads), 1) if self.spreads else 0,
            "spread_band": round(self.spread_band, 4),
        }


def stability_report(
    graph: CSRGraph,
    algorithm: str,
    k: int,
    eps: float = 0.3,
    runs: int = 5,
    num_simulations: int = 200,
    seed: int = 0,
    **algorithm_kwargs,
) -> StabilityReport:
    """Run ``algorithm`` ``runs`` times with independent randomness."""
    if runs < 2:
        raise ConfigurationError("stability needs at least 2 runs")
    streams = spawn_generators(seed, runs)
    seed_sets: List[Set[int]] = []
    spreads: List[float] = []
    for stream in streams:
        algo = get_algorithm(algorithm, graph, **algorithm_kwargs)
        result = algo.run(k, eps=eps, seed=stream)
        seed_sets.append(set(result.seeds))
        spreads.append(
            estimate_spread(
                graph, result.seeds,
                num_simulations=num_simulations, seed=seed,
            ).mean
        )
    return StabilityReport(
        algorithm=algorithm, k=k, seed_sets=seed_sets, spreads=spreads
    )
