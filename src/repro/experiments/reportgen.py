"""Aggregate benchmark outputs into a single reproduction report.

``pytest benchmarks/ --benchmark-only`` leaves one rendered table per
experiment under ``benchmarks/results/``; :func:`generate_report` stitches
them into a single Markdown document ordered like the paper's evaluation,
ready to diff against EXPERIMENTS.md or attach to an issue.
"""

from __future__ import annotations

import datetime
import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.utils.exceptions import ConfigurationError

PathLike = Union[str, "os.PathLike[str]"]

#: canonical presentation order: paper artifacts first, then extensions
_SECTIONS: Sequence[Tuple[str, str]] = (
    ("table2_datasets", "Table 2 — datasets"),
    ("fig1_wc_running_time", "Figure 1 — WC running time"),
    ("fig2_skewed_rr_cost", "Figure 2 — skewed RR generation cost"),
    ("fig3_rr_statistics", "Figure 3 — RR statistics (HIST vs OPIM-C)"),
    ("fig4_hist_vary_k", "Figure 4 — runtime vs k"),
    ("fig5_expected_influence", "Figure 5 — expected influence vs k"),
    ("fig6_wc_variant_ladder", "Figure 6 — WC-variant ladder"),
    ("fig7_uniform_ladder", "Figure 7 — uniform-IC ladder"),
    ("full_field_wc", "Extension — full field"),
    ("ext_seed_quality", "Extension — seed quality"),
    ("ext_lt_model", "Extension — LT model"),
    ("ext_vectorised_generator", "Extension — generator engineering"),
    ("guarantee_audit", "Extension — guarantee audit"),
    ("ablation_hist_variants", "Ablation — HIST variants"),
    ("ablation_general_ic_samplers", "Ablation — general-IC samplers"),
    ("ablation_upper_bound_tracking", "Ablation — Eq. 2 tracking"),
)


def available_results(results_dir: PathLike) -> List[str]:
    """Names (stem) of result tables present in ``results_dir``."""
    directory = Path(results_dir)
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.txt"))


def generate_report(
    results_dir: PathLike,
    output_path: Optional[PathLike] = None,
    title: str = "Reproduction report",
) -> str:
    """Compose all present result tables into one Markdown document.

    Returns the document text; writes it to ``output_path`` when given.
    Missing sections are listed at the end so a partial benchmark run is
    visible rather than silently incomplete.
    """
    directory = Path(results_dir)
    if not directory.is_dir():
        raise ConfigurationError(f"no results directory at {directory}")
    present = set(available_results(directory))
    if not present:
        raise ConfigurationError(
            f"{directory} holds no result tables; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )

    lines = [f"# {title}", ""]
    lines.append(
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} from "
        f"`{directory}`.  Shape discussion: see EXPERIMENTS.md."
    )
    lines.append("")

    ordered = [name for name, _ in _SECTIONS if name in present]
    extras = sorted(present - {name for name, _ in _SECTIONS})
    titles = dict(_SECTIONS)

    for name in ordered + extras:
        lines.append(f"## {titles.get(name, name)}")
        lines.append("")
        lines.append("```")
        lines.append((directory / f"{name}.txt").read_text().rstrip())
        lines.append("```")
        lines.append("")

    missing = [t for n, t in _SECTIONS if n not in present]
    if missing:
        lines.append("## Missing sections")
        lines.append("")
        for item in missing:
            lines.append(f"- {item}")
        lines.append("")

    text = "\n".join(lines)
    if output_path is not None:
        Path(output_path).write_text(text)
    return text
