"""Dependency-free ASCII charts for the experiment harness.

The benchmarks print tables; sometimes a quick visual of a runtime curve
or a ladder makes the shape obvious in a terminal or CI log.  Two chart
types cover the repo's needs: grouped horizontal bars (one figure rung per
row) and a multi-series line chart over a shared x axis.
"""

from __future__ import annotations

import io
import math
from typing import Dict, Mapping, Optional, Sequence

_BLOCK = "#"


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:.3g}"


def bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 50,
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart of non-negative label -> value pairs.

    ``log_scale`` maps bar lengths logarithmically — the right choice for
    the order-of-magnitude runtime gaps these experiments produce.
    """
    if not values:
        return "(no data)\n"
    if min(values.values()) < 0:
        raise ValueError("bar_chart needs non-negative values")
    out = io.StringIO()
    if title:
        out.write(f"== {title} ==\n")
    label_width = max(len(str(k)) for k in values)
    positives = [v for v in values.values() if v > 0]
    if log_scale and positives:
        low = min(positives)
        high = max(positives)
        span = math.log10(high / low) if high > low else 1.0

        def length(v: float) -> int:
            if v <= 0:
                return 0
            return 1 + int((width - 1) * math.log10(v / low) / span)
    else:
        high = max(values.values()) or 1.0

        def length(v: float) -> int:
            return int(round(width * v / high))

    for label, value in values.items():
        bar = _BLOCK * length(value)
        out.write(f"{str(label).ljust(label_width)} | {bar} {_fmt(value)}\n")
    return out.getvalue()


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    title: Optional[str] = None,
    height: int = 12,
    log_scale: bool = False,
) -> str:
    """Multi-series ASCII line chart over a shared categorical x axis.

    Each series gets a distinct marker; y positions are binned into
    ``height`` rows (optionally in log space).  Values must be positive
    when ``log_scale`` is on.
    """
    if not series:
        return "(no data)\n"
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must match x_labels in length")
    if height < 2:
        raise ValueError("height must be >= 2")

    markers = "ox+*#@%&"
    flat = [v for vs in series.values() for v in vs]
    if log_scale:
        if min(flat) <= 0:
            raise ValueError("log_scale needs strictly positive values")
        transform = math.log10
    else:
        def transform(v):
            return v
    lo = min(transform(v) for v in flat)
    hi = max(transform(v) for v in flat)
    span = (hi - lo) or 1.0

    grid = [[" "] * len(x_labels) for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for col, value in enumerate(values):
            row = int((transform(value) - lo) / span * (height - 1))
            row = height - 1 - row  # row 0 is the top
            if grid[row][col] == " ":
                grid[row][col] = marker
            else:
                grid[row][col] = "*"  # collision

    out = io.StringIO()
    if title:
        out.write(f"== {title} ==\n")
    y_top = _fmt(10 ** hi if log_scale else hi)
    y_bot = _fmt(10 ** lo if log_scale else lo)
    pad = max(len(y_top), len(y_bot))
    for i, row in enumerate(grid):
        label = y_top if i == 0 else (y_bot if i == height - 1 else "")
        out.write(f"{label.rjust(pad)} | " + "  ".join(row) + "\n")
    out.write(" " * pad + " +-" + "-" * (3 * len(x_labels) - 1) + "\n")
    out.write(
        " " * pad + "   " + " ".join(str(x)[:2].ljust(2) for x in x_labels) + "\n"
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    out.write(f"{' ' * pad}   [{legend}]\n")
    return out.getvalue()


def runtime_ladder_chart(
    rows: Sequence[Dict[str, object]],
    x_key: str,
    series_key: str = "algorithm",
    y_key: str = "runtime_s",
    title: Optional[str] = None,
) -> str:
    """Render figure-style rows (as produced by the harness) as a line chart."""
    x_values = sorted({r[x_key] for r in rows})
    series: Dict[str, list] = {}
    for r in rows:
        series.setdefault(str(r[series_key]), [None] * len(x_values))
    for r in rows:
        series[str(r[series_key])][x_values.index(r[x_key])] = float(r[y_key])
    for name, values in series.items():
        if any(v is None for v in values):
            raise ValueError(f"series {name!r} is missing points")
    return line_chart(series, x_values, title=title, log_scale=True)
