"""Shared runner utilities for the per-figure experiment functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.registry import get_algorithm
from repro.core.results import IMResult
from repro.estimation.montecarlo import estimate_spread
from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike


@dataclass
class RunRecord:
    """One (dataset, algorithm, setting) measurement."""

    dataset: str
    algorithm: str
    k: int
    setting: str
    result: IMResult
    spread: Optional[float] = None

    def as_row(self) -> Dict[str, Any]:
        row = {
            "dataset": self.dataset,
            "setting": self.setting,
            "algorithm": self.algorithm,
            "k": self.k,
            "runtime_s": round(self.result.runtime_seconds, 4),
            "num_rr_sets": self.result.num_rr_sets,
            "avg_rr_size": round(self.result.average_rr_size, 2),
            "edges_examined": self.result.edges_examined,
        }
        if self.spread is not None:
            row["spread"] = round(self.spread, 1)
        return row


def timed_run(
    graph: CSRGraph,
    dataset: str,
    algorithm: str,
    k: int,
    eps: float,
    seed: SeedLike,
    setting: str = "",
    evaluate_spread: bool = False,
    num_simulations: int = 300,
    **algorithm_kwargs,
) -> RunRecord:
    """Run one algorithm and wrap the outcome as a :class:`RunRecord`.

    ``IMResult.runtime_seconds`` is measured inside ``run`` itself, so the
    record's timing excludes graph construction and spread evaluation.
    """
    algo = get_algorithm(algorithm, graph, **algorithm_kwargs)
    result = algo.run(k, eps=eps, seed=seed)
    spread = None
    if evaluate_spread:
        spread = estimate_spread(
            graph, result.seeds, num_simulations=num_simulations, seed=seed
        ).mean
    return RunRecord(
        dataset=dataset,
        algorithm=algorithm,
        k=k,
        setting=setting,
        result=result,
        spread=spread,
    )
