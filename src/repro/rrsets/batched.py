"""Batched RR-set generation: level-synchronous vectorized frontier expansion.

The sequential generators (:mod:`repro.rrsets.vanilla`,
:mod:`repro.rrsets.subsim`, :mod:`repro.rrsets.lt`) pay an interpreted-Python
constant per examined edge — faithful to the paper's cost model, but orders
of magnitude slower than the hardware.  This engine grows ``B`` RR sets
*together*, replacing the per-edge loop with one NumPy kernel per frontier
level:

* the in-adjacency of every frontier node of every set is gathered with a
  single ``np.repeat``-based CSR expansion;
* **IC kernel** (``batched_mode="ic"``): one vectorized coin flip per
  gathered edge (Algorithm 2, batched);
* **SUBSIM kernel** (``batched_mode="subsim"``): nodes with uniform
  in-probability take vectorized geometric jumps (Algorithm 3, batched) —
  the same draw-per-landing schedule as the sequential sampler — while
  skewed nodes run the *sorted-segment* kernel: their positional buckets
  (Section 3.3, precompiled once per graph by
  :func:`repro.sampling.precompute.sorted_segments`) take geometric skips at
  the bucket ceiling with vectorized thin-by-``p/q`` acceptance, the exact
  process of the sequential ``_scan_sorted_block``;
* **LT kernel** (``batched_mode="lt"``): level-synchronous backward
  live-edge walks — every live walk picks its single live in-edge (or the
  "no live edge" outcome) with one flat Walker alias lookup per level
  (:func:`repro.sampling.precompute.lt_alias_tables`), two draws per walk
  per level regardless of degree;
* per-set visited state lives in a ``(B, ceil(n/64))`` ``uint64`` bitmap;
  candidate activations are deduplicated and test-and-set in bulk;
* a boolean ``stop_mask`` (HIST's sentinel early stop, Algorithm 5) is
  honored *per set within the batch*: a set stops expanding at the end of
  the level in which it first activates a sentinel.

Counter semantics match the sequential generators field-for-field
(``edges_examined`` = edge inspections, ``rng_draws`` = random numbers
consumed, plus ``nodes_added`` / ``sets_generated`` / ``sentinel_hits``),
and a :class:`~repro.runtime.control.RunControl` attached to the generator
is consulted at batch boundaries (``on_rr_start``) and once per frontier
level (``on_edges``), so budgets, cancellation and PR 1's partial-result
guarantees survive unchanged — an interrupted batch is abandoned whole and
the pool keeps every previously completed batch.  The LT kernel's
``edges_examined`` counts one inspection per alias pick that lands on a real
edge (the O(1) lookup touches exactly that edge), whereas the sequential
walk scans a prefix of the block — same model, cheaper inspection schedule.

What batching deliberately gives up is the *sequential RNG schedule*: draws
are consumed in level order across the batch, so seeded runs are
reproducible batch-to-batch but not bit-identical to ``batch_size=1`` (the
sampled distribution is identical; see ``tests/test_rrsets_batched.py`` and
``tests/test_rrsets_generalw.py``).  Sentinel stops are level-granular
rather than activation-granular, so a stopped set may contain a few extra
same-level nodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.sampling.precompute import (
    lt_alias_tables,
    sorted_segments,
    uniform_arrays,
)
from repro.utils.exceptions import GraphFormatError

_TINY = 2.2250738585072014e-308  # smallest positive normal double

#: every kernel this engine implements
BATCHED_MODES = ("ic", "subsim", "lt")


def _ragged_slots(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-row ``[start, end)`` ranges into flat positions.

    Returns ``(pos, owner)`` where ``owner[i]`` is the row that contributed
    ``pos[i]`` — the generic ragged-gather under both CSR expansion and
    segment-slot enumeration.
    """
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.cumsum(lens)
    pos = np.repeat(starts, lens) + np.arange(total, dtype=np.int64) - np.repeat(
        cum - lens, lens
    )
    owner = np.repeat(np.arange(len(starts), dtype=np.int64), lens)
    return pos, owner


def _ragged_edges(
    indptr: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the CSR edge positions of every node in ``nodes``.

    Returns ``(edge_idx, owner)`` where ``edge_idx`` indexes the flat edge
    arrays and ``owner[i]`` is the position in ``nodes`` that contributed
    ``edge_idx[i]`` — the batched equivalent of the per-node adjacency scan.
    """
    return _ragged_slots(indptr[nodes], indptr[nodes + 1])


def _geometric_candidates(
    sets: np.ndarray,
    nodes: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    log1mp: np.ndarray,
    rng: np.random.Generator,
    counters,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Vectorized Algorithm 3: geometric jumps over uniform-probability blocks.

    One entry per (set, activated node); every round draws one uniform per
    still-live entry and advances its position by the geometric gap, exactly
    the sequential sampler's draw-per-landing schedule, but batched.
    """
    cand_sets: List[np.ndarray] = []
    cand_nodes: List[np.ndarray] = []
    if len(nodes) == 0:
        return cand_sets, cand_nodes
    pos = indptr[nodes].astype(np.float64)
    hi = indptr[nodes + 1].astype(np.float64)
    lg = log1mp[nodes]
    owner_sets = sets
    # Round 0 jumps from just before the block; subsequent rounds jump from
    # the last landing.  A jump past the block end retires the entry.
    while len(pos):
        counters.rng_draws += len(pos)
        u = rng.random(len(pos))
        np.maximum(u, _TINY, out=u)
        jump = np.log(u) / lg
        pos = pos + np.floor(jump)
        live = jump < hi - (pos - np.floor(jump))  # jump fits in the block
        if not live.any():
            break
        pos = pos[live]
        hi = hi[live]
        lg = lg[live]
        owner_sets = owner_sets[live]
        landed = pos.astype(np.int64)
        counters.edges_examined += len(landed)
        cand_sets.append(owner_sets)
        cand_nodes.append(indices[landed].astype(np.int64))
        pos = pos + 1.0  # next jump starts after the landing
    return cand_sets, cand_nodes


def _sorted_segment_candidates(
    sets: np.ndarray,
    nodes: np.ndarray,
    seg,
    indices: np.ndarray,
    probs: np.ndarray,
    rng: np.random.Generator,
    counters,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Vectorized Section 3.3: positional-bucket skipping on skewed nodes.

    Every (set, skewed node) frontier entry expands to its node's
    precompiled segments.  Certain-ceiling segments (``q >= 1``) examine
    each slot and accept with the slot's own probability; partial-ceiling
    segments take geometric skips at rate ``q`` and thin each landing with
    an acceptance coin where ``p < q`` — the batched twin of the sequential
    ``_scan_sorted_block``, consuming the same draws per landing in a
    level-ordered schedule.
    """
    cand_sets: List[np.ndarray] = []
    cand_nodes: List[np.ndarray] = []
    if len(nodes) == 0:
        return cand_sets, cand_nodes
    sid, owner = _ragged_slots(
        seg.node_indptr[nodes], seg.node_indptr[nodes + 1]
    )
    if len(sid) == 0:
        return cand_sets, cand_nodes
    owner_sets = sets[owner]
    q = seg.q[sid]

    certain = q >= 1.0
    if certain.any():
        cid = sid[certain]
        slot, sowner = _ragged_slots(seg.start[cid], seg.end[cid])
        counters.edges_examined += len(slot)
        pj = probs[slot]
        accept = np.ones(len(slot), dtype=bool)
        need = np.flatnonzero(pj < 1.0)
        counters.rng_draws += len(need)
        if len(need):
            accept[need] = rng.random(len(need)) < pj[need]
        cand_sets.append(owner_sets[certain][sowner[accept]])
        cand_nodes.append(indices[slot[accept]].astype(np.int64))

    partial = ~certain
    if not partial.any():
        return cand_sets, cand_nodes
    pid = sid[partial]
    pos = seg.start[pid].astype(np.float64)
    hi = seg.end[pid].astype(np.float64)
    qq = seg.q[pid]
    lg = seg.log1mq[pid]
    osets = owner_sets[partial]
    # Same recurrence as the uniform geometric kernel, with per-entry
    # ceiling q and a thinning coin per landing where p < q.
    while len(pos):
        counters.rng_draws += len(pos)
        u = rng.random(len(pos))
        np.maximum(u, _TINY, out=u)
        jump = np.log(u) / lg
        live = jump < hi - pos
        pos = pos + np.floor(jump)
        if not live.any():
            break
        pos = pos[live]
        hi = hi[live]
        qq = qq[live]
        lg = lg[live]
        osets = osets[live]
        landed = pos.astype(np.int64)
        counters.edges_examined += len(landed)
        pj = probs[landed]
        accept = np.ones(len(landed), dtype=bool)
        need = np.flatnonzero(pj < qq)
        counters.rng_draws += len(need)
        if len(need):
            accept[need] = rng.random(len(need)) < pj[need] / qq[need]
        cand_sets.append(osets[accept])
        cand_nodes.append(indices[landed[accept]].astype(np.int64))
        pos = pos + 1.0
    return cand_sets, cand_nodes


def _resolve_mode(gen) -> str:
    """Validate the generator's batched mode against the known kernels."""
    mode = gen.batched_mode
    known = ", ".join(repr(m) for m in BATCHED_MODES)
    if mode not in BATCHED_MODES:
        raise ValueError(
            f"generator {gen.name!r} requested unknown batched mode "
            f"{mode!r}; supported batched modes are {known}"
        )
    supported = getattr(gen, "supported_batched_modes", BATCHED_MODES)
    if mode not in supported:
        offered = ", ".join(repr(m) for m in supported) or "none"
        raise ValueError(
            f"generator {gen.name!r} supports batched modes {offered}, "
            f"not {mode!r} (known kernels: {known})"
        )
    if mode in ("ic", "subsim") and gen.graph.weight_model.startswith("lt:"):
        raise GraphFormatError(
            f"batched mode {mode!r} samples the IC model, but the graph's "
            f"weights are LT-normalized "
            f"(weight_model={gen.graph.weight_model!r}); use an LT "
            "generator (batched_mode='lt') or reweight the graph for IC"
        )
    return mode


def generate_batch(
    gen,
    rng: np.random.Generator,
    count: int,
    stop_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Grow ``count`` RR sets at once; returns flat ``(nodes, sizes)``.

    ``gen`` is a sequential :class:`~repro.rrsets.base.RRGenerator` whose
    :attr:`batched_mode` names the kernel; its graph, counters and attached
    run control are shared, so accounting is indistinguishable from the
    sequential path at batch granularity.
    """
    mode = _resolve_mode(gen)
    if mode == "lt":
        return _generate_lt_batch(gen, rng, count, stop_mask)
    return _generate_ic_batch(gen, rng, count, stop_mask, mode)


def _clamped_count(gen, count: int) -> int:
    """Gate the batch on the run control and clamp to the RR-set budget."""
    control = gen.control
    gen._begin()  # budget / cancellation gate at the batch boundary
    if control is not None and control.budget.max_rr_sets is not None:
        # Clamp so a cap mid-batch yields the same pool a sequential run
        # would have: the remaining sets now, the BudgetExceeded next call.
        count = min(count, control.budget.max_rr_sets - control.rr_sets)
    return count


def _finalize_batch(
    gen,
    chunk_sets: List[np.ndarray],
    chunk_nodes: List[np.ndarray],
    count: int,
    hit: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble per-level chunks into flat ``(nodes, sizes)`` and account."""
    counters = gen.counters
    control = gen.control
    all_sets = np.concatenate(chunk_sets)
    all_nodes = np.concatenate(chunk_nodes)
    # Stable sort groups entries per set while keeping discovery order, so
    # each set starts with its root exactly like the sequential generators.
    order = np.argsort(all_sets, kind="stable")
    nodes = all_nodes[order]
    sizes = np.bincount(all_sets, minlength=count).astype(np.int64)

    counters.nodes_added += len(nodes)
    counters.sets_generated += count
    counters.sentinel_hits += int(hit.sum())
    if gen.metrics is not None:
        gen.metrics.observe_many("rr_size", sizes)
    if control is not None:
        gen._tick()
        for size in sizes:
            control.on_rr_complete(int(size))
    return nodes, sizes


def _generate_ic_batch(
    gen,
    rng: np.random.Generator,
    count: int,
    stop_mask: Optional[np.ndarray],
    mode: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """The IC-family kernels: per-edge coins ("ic") or SUBSIM ("subsim")."""
    graph = gen.graph
    counters = gen.counters
    n = graph.n
    indptr = graph.in_indptr
    indices = graph.in_indices
    probs = graph.in_probs

    count = _clamped_count(gen, count)
    if count <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    if mode == "subsim":
        is_uniform, uniform_p, log1mp = uniform_arrays(graph)
        segments = sorted_segments(graph)

    counters.rng_draws += count
    roots = rng.integers(0, n, size=count)

    words = (n + 63) >> 6
    bits = np.zeros((count, words), dtype=np.uint64)
    set_ids = np.arange(count, dtype=np.int64)
    bits[set_ids, roots >> 6] = np.uint64(1) << (roots & 63).astype(np.uint64)

    chunk_sets: List[np.ndarray] = [set_ids]
    chunk_nodes: List[np.ndarray] = [roots.astype(np.int64)]

    alive = np.ones(count, dtype=bool)
    hit = np.zeros(count, dtype=bool)
    if stop_mask is not None:
        root_hits = stop_mask[roots]
        hit |= root_hits
        alive &= ~root_hits

    frontier_sets = set_ids[alive]
    frontier_nodes = roots[alive].astype(np.int64)

    while len(frontier_nodes):
        cs_parts: List[np.ndarray] = []
        cn_parts: List[np.ndarray] = []

        if mode == "ic":
            coin_sets, coin_nodes = frontier_sets, frontier_nodes
        else:
            uni = is_uniform[frontier_nodes]
            p = uniform_p[frontier_nodes]
            certain = uni & (p >= 1.0)
            geom = uni & (p > 0.0) & (p < 1.0)
            skew = ~uni
            # Certain activations: every in-neighbor joins, no draws.
            if certain.any():
                edge_idx, owner = _ragged_edges(indptr, frontier_nodes[certain])
                counters.edges_examined += len(edge_idx)
                cs_parts.append(frontier_sets[certain][owner])
                cn_parts.append(indices[edge_idx].astype(np.int64))
            gs, gn = _geometric_candidates(
                frontier_sets[geom], frontier_nodes[geom],
                indptr, indices, log1mp, rng, counters,
            )
            cs_parts.extend(gs)
            cn_parts.extend(gn)
            if skew.any():
                ss, sn = _sorted_segment_candidates(
                    frontier_sets[skew], frontier_nodes[skew],
                    segments, indices, probs, rng, counters,
                )
                cs_parts.extend(ss)
                cn_parts.extend(sn)
            coin_sets = coin_nodes = np.empty(0, dtype=np.int64)

        if len(coin_nodes):
            # Vectorized Algorithm 2: one coin per examined edge.
            edge_idx, owner = _ragged_edges(indptr, coin_nodes)
            counters.edges_examined += len(edge_idx)
            counters.rng_draws += len(edge_idx)
            if len(edge_idx):
                success = rng.random(len(edge_idx)) < probs[edge_idx]
                cs_parts.append(coin_sets[owner[success]])
                cn_parts.append(indices[edge_idx[success]].astype(np.int64))

        gen._tick()  # report this level's examined-edge delta, poll budget
        if not cs_parts:
            break
        cand_sets = np.concatenate(cs_parts)
        cand_nodes = np.concatenate(cn_parts)
        if len(cand_sets) == 0:
            break

        # Dedup within the level, then test-and-set against the bitmaps.
        key = cand_sets * np.int64(n) + cand_nodes
        key = np.unique(key)
        u_sets = key // n
        u_nodes = key - u_sets * n
        word = u_nodes >> 6
        bit = np.uint64(1) << (u_nodes & 63).astype(np.uint64)
        fresh = (bits[u_sets, word] & bit) == 0
        u_sets, u_nodes, word, bit = (
            u_sets[fresh], u_nodes[fresh], word[fresh], bit[fresh]
        )
        if len(u_sets) == 0:
            break
        np.bitwise_or.at(bits, (u_sets, word), bit)
        chunk_sets.append(u_sets)
        chunk_nodes.append(u_nodes)

        if stop_mask is not None:
            sentinel = stop_mask[u_nodes]
            if sentinel.any():
                stopped = np.unique(u_sets[sentinel])
                hit[stopped] = True
                alive[stopped] = False
                keep = alive[u_sets]
                u_sets, u_nodes = u_sets[keep], u_nodes[keep]
        frontier_sets, frontier_nodes = u_sets, u_nodes

    return _finalize_batch(gen, chunk_sets, chunk_nodes, count, hit)


def _generate_lt_batch(
    gen,
    rng: np.random.Generator,
    count: int,
    stop_mask: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Level-synchronous backward live-edge walks (LT model, batched).

    Each RR set is a walk; per level every live walk resolves its single
    live in-edge with one flat alias-table pick: a uniform slot draw plus
    an acceptance coin (two ``rng_draws``), then one edge inspection if the
    outcome is a real edge.  Walks retire on the "no live edge" outcome, on
    revisiting a node (cycle), or on activating a ``stop_mask`` sentinel.
    """
    graph = gen.graph
    counters = gen.counters
    n = graph.n
    in_indptr = graph.in_indptr
    in_indices = graph.in_indices
    tables = lt_alias_tables(graph)

    count = _clamped_count(gen, count)
    if count <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    counters.rng_draws += count
    roots = rng.integers(0, n, size=count)

    words = (n + 63) >> 6
    bits = np.zeros((count, words), dtype=np.uint64)
    set_ids = np.arange(count, dtype=np.int64)
    bits[set_ids, roots >> 6] = np.uint64(1) << (roots & 63).astype(np.uint64)

    chunk_sets: List[np.ndarray] = [set_ids]
    chunk_nodes: List[np.ndarray] = [roots.astype(np.int64)]

    hit = np.zeros(count, dtype=bool)
    if stop_mask is not None:
        root_hits = stop_mask[roots]
        hit |= root_hits
        cur_sets = set_ids[~root_hits]
        cur_nodes = roots[~root_hits].astype(np.int64)
    else:
        cur_sets = set_ids
        cur_nodes = roots.astype(np.int64)

    t_indptr = tables.indptr
    t_prob = tables.prob
    t_alias = tables.alias
    while len(cur_nodes):
        off = t_indptr[cur_nodes]
        size = t_indptr[cur_nodes + 1] - off
        has_edges = size > 0
        cur_sets = cur_sets[has_edges]
        cur_nodes = cur_nodes[has_edges]
        off = off[has_edges]
        size = size[has_edges]
        m = len(cur_nodes)
        if m == 0:
            break
        # Flat alias pick: outcome in [0, size) per walk, where outcome
        # size-1 is "no live in-edge" and the rest index the in-block.
        counters.rng_draws += 2 * m
        slot = np.minimum(
            (rng.random(m) * size).astype(np.int64), size - 1
        )
        coin = rng.random(m)
        pick = off + slot
        take_alias = coin >= t_prob[pick]
        outcome = np.where(take_alias, t_alias[pick], slot)
        is_edge = outcome < size - 1
        counters.edges_examined += int(is_edge.sum())
        gen._tick()  # report this level's inspected edges, poll budget
        cur_sets = cur_sets[is_edge]
        cur_nodes = cur_nodes[is_edge]
        outcome = outcome[is_edge]
        if len(cur_nodes) == 0:
            break
        nxt = in_indices[in_indptr[cur_nodes] + outcome].astype(np.int64)
        word = nxt >> 6
        bit = np.uint64(1) << (nxt & 63).astype(np.uint64)
        # Each live walk contributes exactly one candidate per level, so
        # (set, word) pairs are unique and plain fancy indexing suffices.
        fresh = (bits[cur_sets, word] & bit) == 0
        cur_sets = cur_sets[fresh]
        nxt = nxt[fresh]
        word = word[fresh]
        bit = bit[fresh]
        if len(cur_sets) == 0:
            break
        bits[cur_sets, word] |= bit
        chunk_sets.append(cur_sets)
        chunk_nodes.append(nxt)
        if stop_mask is not None:
            sentinel = stop_mask[nxt]
            if sentinel.any():
                hit[cur_sets[sentinel]] = True
                keep = ~sentinel
                cur_sets = cur_sets[keep]
                nxt = nxt[keep]
        cur_nodes = nxt

    return _finalize_batch(gen, chunk_sets, chunk_nodes, count, hit)
