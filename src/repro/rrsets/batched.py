"""Batched RR-set generation: level-synchronous vectorized frontier expansion.

The sequential generators (:mod:`repro.rrsets.vanilla`,
:mod:`repro.rrsets.subsim`) pay an interpreted-Python constant per examined
edge — faithful to the paper's cost model, but orders of magnitude slower
than the hardware.  This engine grows ``B`` RR sets *together*, replacing
the per-edge loop with one NumPy kernel per frontier level:

* the in-adjacency of every frontier node of every set is gathered with a
  single ``np.repeat``-based CSR expansion;
* **IC kernel** (``batched_mode="ic"``): one vectorized coin flip per
  gathered edge (Algorithm 2, batched);
* **SUBSIM kernel** (``batched_mode="subsim"``): nodes with uniform
  in-probability take vectorized geometric jumps (Algorithm 3, batched) —
  the same draw-per-landing schedule as the sequential sampler — while
  skewed nodes fall back to vectorized coin flips;
* per-set visited state lives in a ``(B, ceil(n/64))`` ``uint64`` bitmap;
  candidate activations are deduplicated and test-and-set in bulk;
* a boolean ``stop_mask`` (HIST's sentinel early stop, Algorithm 5) is
  honored *per set within the batch*: a set stops expanding at the end of
  the level in which it first activates a sentinel.

Counter semantics match the sequential generators field-for-field
(``edges_examined`` = edge inspections, ``rng_draws`` = random numbers
consumed, plus ``nodes_added`` / ``sets_generated`` / ``sentinel_hits``),
and a :class:`~repro.runtime.control.RunControl` attached to the generator
is consulted at batch boundaries (``on_rr_start``) and once per frontier
level (``on_edges``), so budgets, cancellation and PR 1's partial-result
guarantees survive unchanged — an interrupted batch is abandoned whole and
the pool keeps every previously completed batch.

What batching deliberately gives up is the *sequential RNG schedule*: draws
are consumed in level order across the batch, so seeded runs are
reproducible batch-to-batch but not bit-identical to ``batch_size=1`` (the
sampled distribution is identical; see ``tests/test_rrsets_batched.py``).
Sentinel stops are level-granular rather than activation-granular, so a
stopped set may contain a few extra same-level nodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

_TINY = 2.2250738585072014e-308  # smallest positive normal double


def _ragged_edges(
    indptr: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the CSR edge positions of every node in ``nodes``.

    Returns ``(edge_idx, owner)`` where ``edge_idx`` indexes the flat edge
    arrays and ``owner[i]`` is the position in ``nodes`` that contributed
    ``edge_idx[i]`` — the batched equivalent of the per-node adjacency scan.
    """
    lo = indptr[nodes]
    deg = indptr[nodes + 1] - lo
    total = int(deg.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.cumsum(deg)
    edge_idx = np.repeat(lo, deg) + np.arange(total, dtype=np.int64) - np.repeat(
        cum - deg, deg
    )
    owner = np.repeat(np.arange(len(nodes), dtype=np.int64), deg)
    return edge_idx, owner


def _geometric_candidates(
    sets: np.ndarray,
    nodes: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    log1mp: np.ndarray,
    rng: np.random.Generator,
    counters,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Vectorized Algorithm 3: geometric jumps over uniform-probability blocks.

    One entry per (set, activated node); every round draws one uniform per
    still-live entry and advances its position by the geometric gap, exactly
    the sequential sampler's draw-per-landing schedule, but batched.
    """
    cand_sets: List[np.ndarray] = []
    cand_nodes: List[np.ndarray] = []
    if len(nodes) == 0:
        return cand_sets, cand_nodes
    pos = indptr[nodes].astype(np.float64)
    hi = indptr[nodes + 1].astype(np.float64)
    lg = log1mp[nodes]
    owner_sets = sets
    # Round 0 jumps from just before the block; subsequent rounds jump from
    # the last landing.  A jump past the block end retires the entry.
    while len(pos):
        counters.rng_draws += len(pos)
        u = rng.random(len(pos))
        np.maximum(u, _TINY, out=u)
        jump = np.log(u) / lg
        pos = pos + np.floor(jump)
        live = jump < hi - (pos - np.floor(jump))  # jump fits in the block
        if not live.any():
            break
        pos = pos[live]
        hi = hi[live]
        lg = lg[live]
        owner_sets = owner_sets[live]
        landed = pos.astype(np.int64)
        counters.edges_examined += len(landed)
        cand_sets.append(owner_sets)
        cand_nodes.append(indices[landed].astype(np.int64))
        pos = pos + 1.0  # next jump starts after the landing
    return cand_sets, cand_nodes


def generate_batch(
    gen,
    rng: np.random.Generator,
    count: int,
    stop_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Grow ``count`` RR sets at once; returns flat ``(nodes, sizes)``.

    ``gen`` is a sequential :class:`~repro.rrsets.base.RRGenerator` whose
    :attr:`batched_mode` names the kernel; its graph, counters and attached
    run control are shared, so accounting is indistinguishable from the
    sequential path at batch granularity.
    """
    graph = gen.graph
    mode = gen.batched_mode
    if mode not in ("ic", "subsim"):
        raise ValueError(f"generator {gen.name!r} has no batched kernel")
    counters = gen.counters
    control = gen.control
    n = graph.n
    indptr = graph.in_indptr
    indices = graph.in_indices
    probs = graph.in_probs

    gen._begin()  # budget / cancellation gate at the batch boundary
    if control is not None and control.budget.max_rr_sets is not None:
        # Clamp so a cap mid-batch yields the same pool a sequential run
        # would have: the remaining sets now, the BudgetExceeded next call.
        count = min(count, control.budget.max_rr_sets - control.rr_sets)
    if count <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    if mode == "subsim":
        is_uniform = gen._is_uniform
        uniform_p = gen._uniform_p
        log1mp = gen._log_one_minus_p

    counters.rng_draws += count
    roots = rng.integers(0, n, size=count)

    words = (n + 63) >> 6
    bits = np.zeros((count, words), dtype=np.uint64)
    set_ids = np.arange(count, dtype=np.int64)
    bits[set_ids, roots >> 6] = np.uint64(1) << (roots & 63).astype(np.uint64)

    chunk_sets: List[np.ndarray] = [set_ids]
    chunk_nodes: List[np.ndarray] = [roots.astype(np.int64)]

    alive = np.ones(count, dtype=bool)
    hit = np.zeros(count, dtype=bool)
    if stop_mask is not None:
        root_hits = stop_mask[roots]
        hit |= root_hits
        alive &= ~root_hits

    frontier_sets = set_ids[alive]
    frontier_nodes = roots[alive].astype(np.int64)

    while len(frontier_nodes):
        cs_parts: List[np.ndarray] = []
        cn_parts: List[np.ndarray] = []

        if mode == "ic":
            coin_sets, coin_nodes = frontier_sets, frontier_nodes
        else:
            uni = is_uniform[frontier_nodes]
            p = uniform_p[frontier_nodes]
            certain = uni & (p >= 1.0)
            geom = uni & (p > 0.0) & (p < 1.0)
            skew = ~uni
            # Certain activations: every in-neighbor joins, no draws.
            if certain.any():
                edge_idx, owner = _ragged_edges(indptr, frontier_nodes[certain])
                counters.edges_examined += len(edge_idx)
                cs_parts.append(frontier_sets[certain][owner])
                cn_parts.append(indices[edge_idx].astype(np.int64))
            gs, gn = _geometric_candidates(
                frontier_sets[geom], frontier_nodes[geom],
                indptr, indices, log1mp, rng, counters,
            )
            cs_parts.extend(gs)
            cn_parts.extend(gn)
            coin_sets, coin_nodes = frontier_sets[skew], frontier_nodes[skew]

        if len(coin_nodes):
            # Vectorized Algorithm 2: one coin per examined edge.
            edge_idx, owner = _ragged_edges(indptr, coin_nodes)
            counters.edges_examined += len(edge_idx)
            counters.rng_draws += len(edge_idx)
            if len(edge_idx):
                success = rng.random(len(edge_idx)) < probs[edge_idx]
                cs_parts.append(coin_sets[owner[success]])
                cn_parts.append(indices[edge_idx[success]].astype(np.int64))

        gen._tick()  # report this level's examined-edge delta, poll budget
        if not cs_parts:
            break
        cand_sets = np.concatenate(cs_parts)
        cand_nodes = np.concatenate(cn_parts)
        if len(cand_sets) == 0:
            break

        # Dedup within the level, then test-and-set against the bitmaps.
        key = cand_sets * np.int64(n) + cand_nodes
        key = np.unique(key)
        u_sets = key // n
        u_nodes = key - u_sets * n
        word = u_nodes >> 6
        bit = np.uint64(1) << (u_nodes & 63).astype(np.uint64)
        fresh = (bits[u_sets, word] & bit) == 0
        u_sets, u_nodes, word, bit = (
            u_sets[fresh], u_nodes[fresh], word[fresh], bit[fresh]
        )
        if len(u_sets) == 0:
            break
        np.bitwise_or.at(bits, (u_sets, word), bit)
        chunk_sets.append(u_sets)
        chunk_nodes.append(u_nodes)

        if stop_mask is not None:
            sentinel = stop_mask[u_nodes]
            if sentinel.any():
                stopped = np.unique(u_sets[sentinel])
                hit[stopped] = True
                alive[stopped] = False
                keep = alive[u_sets]
                u_sets, u_nodes = u_sets[keep], u_nodes[keep]
        frontier_sets, frontier_nodes = u_sets, u_nodes

    all_sets = np.concatenate(chunk_sets)
    all_nodes = np.concatenate(chunk_nodes)
    # Stable sort groups entries per set while keeping discovery order, so
    # each set starts with its root exactly like the sequential generators.
    order = np.argsort(all_sets, kind="stable")
    nodes = all_nodes[order]
    sizes = np.bincount(all_sets, minlength=count).astype(np.int64)

    counters.nodes_added += len(nodes)
    counters.sets_generated += count
    counters.sentinel_hits += int(hit.sum())
    if gen.metrics is not None:
        gen.metrics.observe_many("rr_size", sizes)
    if control is not None:
        gen._tick()
        for size in sizes:
            control.on_rr_complete(int(size))
    return nodes, sizes
