"""Vanilla IC RR-set generation (paper Algorithm 2).

Reverse BFS from a uniformly random root: when a node is activated, *every*
one of its incoming edges is examined with an independent coin flip.  This is
the generator all prior RR-based IM algorithms (TIM+, IMM, SSA, OPIM-C)
share, and the baseline SUBSIM improves on — its cost per activated node is
``O(d_in)`` regardless of how small the edge probabilities are.

The hot loop deliberately draws one random number per examined edge, exactly
as Algorithm 2 specifies, so wall-clock comparisons against SUBSIM reflect
the paper's cost model (both implementations pay the same interpreted
per-examined-edge constant).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.rrsets.base import RRGenerator
from repro.utils.exceptions import ExecutionInterrupted


class VanillaICGenerator(RRGenerator):
    """Algorithm 2: per-edge coin-flip reverse BFS under the IC model."""

    name = "vanilla"
    batched_mode = "ic"
    supported_batched_modes = ("ic",)

    def generate(
        self,
        rng: np.random.Generator,
        root: Optional[int] = None,
        stop_mask: Optional[np.ndarray] = None,
    ) -> List[int]:
        graph = self.graph
        indptr = graph.in_indptr
        indices = graph.in_indices
        probs = graph.in_probs
        visited = self._visited
        counters = self.counters
        random = rng.random

        self._begin()
        v = self._pick_root(rng, root)
        rr = [v]
        visited[v] = True
        if stop_mask is not None and stop_mask[v]:
            return self._finish(rr, hit_sentinel=True)

        queue = deque(rr)
        try:
            while queue:
                u = queue.popleft()
                lo = indptr[u]
                hi = indptr[u + 1]
                counters.edges_examined += hi - lo
                counters.rng_draws += hi - lo
                self._tick()
                for j in range(lo, hi):
                    if random() < probs[j]:
                        w = indices[j]
                        if not visited[w]:
                            visited[w] = True
                            rr.append(w)
                            if stop_mask is not None and stop_mask[w]:
                                return self._finish(rr, hit_sentinel=True)
                            queue.append(w)
        except ExecutionInterrupted:
            self._abandon(rr)
            raise
        return self._finish(rr)
