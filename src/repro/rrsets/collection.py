"""RR-set collections backed by a flat growable CSR-style pool.

:class:`RRCollection` is the shared substrate of every sampling-based IM
algorithm.  RR sets live concatenated in one growable ``rr_nodes`` array
with ``rr_indptr`` offsets (the same layout as a CSR adjacency), so the two
coverage hot paths are single NumPy kernels instead of Python loops:

* per-node *coverage counts* are maintained incrementally on every append
  (``np.add.at`` over the new mass) and served from cache;
* the node → RR-set *inverted index* is a lazily rebuilt CSR
  (``inv_indptr`` / ``inv_rrs``) — one stable argsort of the pool amortised
  across the greedy selections that consume it.

``rr_sets`` and ``node_to_rrs`` remain available as lightweight views for
code written against the original list-of-arrays interface.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.rrsets.base import RRGenerator

#: dtype of the flat node pool; int32 halves memory vs. int64 and covers
#: every graph this library can hold in RAM.
NODE_DTYPE = np.int32


def _pow2_capacity(need: int, floor: int) -> int:
    """Smallest power of two >= ``max(need, floor)``.

    Growing to the next power of two (instead of ``max(need, 2 * cap)``)
    keeps growth geometric even when a single ``add_batch`` overshoots the
    doubled capacity: the old policy then landed at *exactly* ``need``, so
    the very next append reallocated again.  Power-of-two capacities also
    make successive doubling-schedule extensions land on shared buffer
    sizes, which is what the ``realloc_count`` micro-benchmark measures.
    """
    need = max(int(need), int(floor))
    return 1 << (need - 1).bit_length()


def _segment_uncovered(
    inv_indptr: np.ndarray,
    inv_rrs: np.ndarray,
    nodes: np.ndarray,
    covered: np.ndarray,
    limit: Optional[int] = None,
) -> np.ndarray:
    """Per-node count of uncovered member sets from an inverted CSR.

    ``limit`` restricts the count to set ids below it (prefix views);
    ``covered`` is then indexed only by in-range ids, so a prefix-sized
    mask is safe against a full-pool index.
    """
    starts = inv_indptr[nodes]
    lens = inv_indptr[nodes + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.zeros(len(nodes), dtype=np.int64)
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    flat = np.repeat(starts, lens) + np.arange(total, dtype=np.int64) - offsets
    ids = inv_rrs[flat]
    if limit is None:
        fresh = (~covered[ids]).astype(np.int64)
    else:
        fresh = np.zeros(total, dtype=np.int64)
        kept = np.flatnonzero(ids < limit)
        fresh[kept] = ~covered[ids[kept]]
    # Segmented sums via cumsum differences: reduceat mishandles the empty
    # segments that zero-membership nodes produce.
    csum = np.concatenate(([0], np.cumsum(fresh)))
    bounds = np.concatenate(([0], np.cumsum(lens)))
    return csum[bounds[1:]] - csum[bounds[:-1]]


class _RRSetsView(Sequence):
    """Read-only sequence view presenting the flat pool as per-set arrays."""

    __slots__ = ("_coll",)

    def __init__(self, coll: "RRCollection") -> None:
        self._coll = coll

    def __len__(self) -> int:
        return self._coll.num_rr

    def __getitem__(self, key):
        coll = self._coll
        if isinstance(key, slice):
            return [coll.set_nodes(i) for i in range(*key.indices(coll.num_rr))]
        if key < 0:
            key += coll.num_rr
        if not 0 <= key < coll.num_rr:
            raise IndexError(f"RR-set id {key} out of range [0, {coll.num_rr})")
        return coll.set_nodes(key)

    def __iter__(self):
        for i in range(self._coll.num_rr):
            yield self._coll.set_nodes(i)


class _NodeIndexView:
    """Read-only view: ``view[node]`` lists the RR-set ids containing it."""

    __slots__ = ("_coll",)

    def __init__(self, coll: "RRCollection") -> None:
        self._coll = coll

    def __len__(self) -> int:
        return self._coll.n

    def __getitem__(self, node: int) -> List[int]:
        return self._coll.rrs_containing(node).tolist()

    def __iter__(self):
        for node in range(self._coll.n):
            yield self[node]


class RRPrefixView:
    """Read-only view over the first ``theta`` RR sets of a collection.

    Warm :class:`~repro.rrsets.bank.RRBank` queries select seeds over a
    *prefix* of a pool that may already hold more sets (generated for an
    earlier query).  The view re-serves the exact coverage surface greedy
    and the bounds consume — ``coverage_counts`` / ``rrs_containing`` /
    ``nodes_of_sets`` / ``covered_mask`` — restricted to set ids
    ``< num_rr``, so selecting over the prefix of a warm pool is
    bit-identical to selecting over a cold pool of that size.

    :meth:`RRCollection.prefix` returns the collection itself when the
    requested prefix covers the whole pool, so cold (single-query) runs
    never pay for the indirection.
    """

    __slots__ = ("_coll", "num_rr")

    def __init__(self, coll: "RRCollection", theta: int) -> None:
        if not 0 <= theta <= coll.num_rr:
            raise ValueError(
                f"prefix length {theta} out of range [0, {coll.num_rr}]"
            )
        self._coll = coll
        self.num_rr = int(theta)

    def __len__(self) -> int:
        return self.num_rr

    @property
    def n(self) -> int:
        return self._coll.n

    @property
    def total_size(self) -> int:
        return int(self._coll.rr_indptr[self.num_rr])

    def average_size(self) -> float:
        return self.total_size / self.num_rr if self.num_rr else 0.0

    def set_nodes(self, rr_id: int) -> np.ndarray:
        if not 0 <= rr_id < self.num_rr:
            raise IndexError(f"RR-set id {rr_id} out of range [0, {self.num_rr})")
        return self._coll.set_nodes(rr_id)

    def set_sizes(self) -> np.ndarray:
        return np.diff(self._coll.rr_indptr[: self.num_rr + 1])

    def coverage_counts(self) -> np.ndarray:
        """Per-node membership counts over the prefix (fresh array)."""
        stop = int(self._coll.rr_indptr[self.num_rr])
        counts = np.bincount(
            self._coll.rr_nodes[:stop], minlength=self._coll.n
        )
        return counts.astype(np.int64, copy=False)

    def rrs_containing(self, node: int) -> np.ndarray:
        """Prefix RR-set ids containing ``node`` (ascending)."""
        ids = self._coll.rrs_containing(node)
        # Ids come back ascending (stable argsort of the flat pool), so the
        # prefix is a binary-searched slice, not a boolean scan.
        return ids[: np.searchsorted(ids, self.num_rr)]

    def nodes_of_sets(self, rr_ids: np.ndarray) -> np.ndarray:
        rr_ids = np.asarray(rr_ids, dtype=np.int64)
        if len(rr_ids) and rr_ids.max() >= self.num_rr:
            raise IndexError(
                f"RR-set id {int(rr_ids.max())} out of prefix [0, {self.num_rr})"
            )
        return self._coll.nodes_of_sets(rr_ids)

    def uncovered_counts(
        self, nodes: np.ndarray, covered: np.ndarray
    ) -> np.ndarray:
        """Per-node count of uncovered prefix sets containing each node."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) == 0:
            return np.zeros(0, dtype=np.int64)
        inv_indptr, inv_rrs = self._coll._inverted()
        return _segment_uncovered(
            inv_indptr, inv_rrs, nodes, covered, limit=self.num_rr
        )

    def per_set_sums(
        self, values: np.ndarray, stop: Optional[int] = None
    ) -> np.ndarray:
        stop = self.num_rr if stop is None else min(stop, self.num_rr)
        return self._coll.per_set_sums(values, stop=stop)

    def covered_mask(self, seeds: Iterable[int]) -> np.ndarray:
        mask = np.zeros(self.num_rr, dtype=bool)
        for s in seeds:
            mask[self.rrs_containing(s)] = True
        return mask

    def coverage(self, seeds: Iterable[int]) -> int:
        return int(self.covered_mask(seeds).sum())

    def estimate_influence(self, seeds: Iterable[int]) -> float:
        if self.num_rr == 0:
            raise ValueError("cannot estimate influence from an empty prefix")
        return self.n * self.coverage(seeds) / self.num_rr


class RRCollection:
    """An append-only pool of RR sets over ``n`` nodes (flat CSR layout)."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"graph must have at least one node, got n={n}")
        self.n = n
        self.total_size = 0
        self._num_rr = 0
        self._nodes = np.empty(1024, dtype=NODE_DTYPE)
        self._indptr = np.zeros(257, dtype=np.int64)
        # Incrementally maintained per-node membership counts (the cached
        # ``coverage_counts``); always current.
        self._counts = np.zeros(n, dtype=np.int64)
        # Lazily (re)built inverted CSR; ``_inv_num_rr`` records the pool
        # size it reflects, so any append invalidates it implicitly.
        self._inv_indptr: Optional[np.ndarray] = None
        self._inv_rrs: Optional[np.ndarray] = None
        self._inv_num_rr = -1
        #: number of buffer reallocations (node pool + offsets) performed
        #: by :meth:`_reserve` — the quantity the growth-policy
        #: micro-benchmark compares across policies.
        self.realloc_count = 0
        #: when spilled, the ``prefix`` passed to :meth:`spill_to` (the
        #: node pool and offsets live in disk-backed memory maps there).
        self._spill_prefix: Optional[str] = None
        #: optional attached coverage sketch (sketch backend); kept current
        #: incrementally on every append, marked stale on in-place rewrites
        self._sketch = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_rr

    @property
    def num_rr(self) -> int:
        return self._num_rr

    @property
    def rr_indptr(self) -> np.ndarray:
        """Offsets of each stored set inside :attr:`rr_nodes` (read-only)."""
        return self._indptr[: self._num_rr + 1]

    @property
    def rr_nodes(self) -> np.ndarray:
        """The concatenated node ids of every stored set (read-only)."""
        return self._nodes[: self.total_size]

    @property
    def rr_sets(self) -> _RRSetsView:
        """Per-set array views over the flat pool (compatibility facade)."""
        return _RRSetsView(self)

    @property
    def node_to_rrs(self) -> _NodeIndexView:
        """Node → RR-set-id lists served from the inverted CSR."""
        return _NodeIndexView(self)

    def average_size(self) -> float:
        """Mean number of nodes per stored RR set."""
        return self.total_size / self._num_rr if self._num_rr else 0.0

    def set_nodes(self, rr_id: int) -> np.ndarray:
        """Nodes of one stored RR set (a view into the flat pool)."""
        return self._nodes[self._indptr[rr_id]: self._indptr[rr_id + 1]]

    def set_sizes(self) -> np.ndarray:
        """Sizes of every stored RR set."""
        return np.diff(self.rr_indptr)

    def nbytes(self) -> int:
        """Resident bytes of the pool buffers (nodes, offsets, indexes).

        Disk-backed (spilled) buffers are excluded: the figure tracks RSS
        pressure, and memory-mapped pages are reclaimable by the OS.
        Attached sketch registers count — they are resident pool state.
        """
        total = self._counts.nbytes
        for buf in (self._nodes, self._indptr):
            if not isinstance(buf, np.memmap):
                total += buf.nbytes
        if self._inv_rrs is not None:
            total += self._inv_rrs.nbytes + self._inv_indptr.nbytes
        if self._sketch is not None:
            total += self._sketch.nbytes()
        return total

    # ------------------------------------------------------------------
    # coverage sketch attachment
    # ------------------------------------------------------------------
    @property
    def coverage_sketch(self):
        """The attached :class:`~repro.coverage.sketch.CoverageSketch`,
        or ``None`` (exact mode)."""
        return self._sketch

    def attach_sketch(self, sketch):
        """Attach a coverage sketch the pool keeps current on append.

        Every subsequent :meth:`add` / :meth:`add_batch` scatters the new
        sets into the sketch registers; :meth:`replace_sets` marks it stale
        (HLLs cannot delete — the backend rebuilds lazily).  Returns the
        sketch for chaining.
        """
        self._sketch = sketch
        return sketch

    def detach_sketch(self) -> None:
        self._sketch = None

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _reserve(self, extra_nodes: int, extra_sets: int) -> None:
        need = self.total_size + extra_nodes
        if need > len(self._nodes):
            grown = np.empty(_pow2_capacity(need, 1024), dtype=NODE_DTYPE)
            grown[: self.total_size] = self._nodes[: self.total_size]
            self._nodes = grown
            self.realloc_count += 1
            # Growth promotes a spilled pool back to RAM implicitly: the
            # copy above reads the memory map once and the fresh buffer is
            # ordinary writable memory.
            self._spill_prefix = None
        need = self._num_rr + extra_sets + 1
        if need > len(self._indptr):
            grown = np.zeros(_pow2_capacity(need, 256), dtype=np.int64)
            grown[: self._num_rr + 1] = self._indptr[: self._num_rr + 1]
            self._indptr = grown
            self.realloc_count += 1

    def add(self, rr: Sequence[int]) -> int:
        """Store one RR set; returns its id.

        Accepts any integer sequence; ndarrays of the pool dtype are copied
        straight into the flat buffer without an intermediate conversion,
        and the coverage-count cache is updated vectorized (nodes within one
        RR set are unique by construction).
        """
        arr = np.asarray(rr, dtype=NODE_DTYPE)
        size = len(arr)
        self._reserve(size, 1)
        rr_id = self._num_rr
        start = self.total_size
        self._nodes[start: start + size] = arr
        self._indptr[rr_id + 1] = start + size
        self._num_rr = rr_id + 1
        self.total_size = start + size
        self._counts[arr] += 1
        if self._sketch is not None:
            self._sketch.observe(rr_id, arr)
        return rr_id

    def add_batch(self, nodes: np.ndarray, sizes: np.ndarray) -> int:
        """Bulk-append ``len(sizes)`` RR sets stored concatenated in ``nodes``.

        Returns the id of the first appended set.  This is the path the
        batched generation engine feeds: one memcpy into the pool plus one
        ``np.add.at`` over the new mass, no per-set Python work.
        """
        nodes = np.asarray(nodes, dtype=NODE_DTYPE)
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.sum() != len(nodes):
            raise ValueError(
                f"sizes sum to {int(sizes.sum())} but {len(nodes)} nodes given"
            )
        count = len(sizes)
        self._reserve(len(nodes), count)
        first_id = self._num_rr
        start = self.total_size
        self._nodes[start: start + len(nodes)] = nodes
        self._indptr[first_id + 1: first_id + count + 1] = (
            start + np.cumsum(sizes)
        )
        self._num_rr = first_id + count
        self.total_size = start + len(nodes)
        # Nodes may repeat across (not within) sets: unbuffered add.
        np.add.at(self._counts, nodes, 1)
        if self._sketch is not None:
            self._sketch.observe_batch(first_id, nodes, sizes)
        return first_id

    def extend(
        self,
        count: int,
        generator: RRGenerator,
        rng: np.random.Generator,
        stop_mask: Optional[np.ndarray] = None,
        journal: Optional[List[Dict]] = None,
    ) -> None:
        """Generate and store ``count`` fresh random RR sets.

        The execution strategy comes from the generator's ``batch_size`` and
        ``workers`` attributes: the defaults (both 1) replay the sequential
        per-set loop bit-identically; ``batch_size > 1`` routes through the
        vectorized batched engine; ``workers > 1`` additionally shards
        batches across processes (see :mod:`repro.rrsets.fanout`).

        ``journal``, when given, receives one appended entry per generation
        *unit* (a single ``generate`` call, or one ``generate_batch``
        chunk): ``{"start", "count", "requested", "mode", "state"}`` with
        ``state`` the RNG bit-generator state captured *before* the unit's
        draws.  Replaying a unit from its recorded state reproduces it
        bit-identically, which is what lets :meth:`~repro.rrsets.bank.
        RRBank.repair` resample exactly the sets a graph delta invalidated.
        Fan-out generation (``workers > 1``) is not journaled — its draw
        order is not a pure function of one recorded state.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        workers = int(getattr(generator, "workers", 1) or 1)
        batch_size = int(getattr(generator, "batch_size", 1) or 1)
        try:
            if workers > 1 and count > 0:
                from repro.rrsets.fanout import generate_multiprocess

                # Loop so a budget-clamped fan-out surfaces BudgetExceeded
                # on the next boundary (mirroring the batched path) instead
                # of silently under-delivering.
                remaining = count
                while remaining > 0:
                    nodes, sizes = generate_multiprocess(
                        generator, remaining, rng, workers, stop_mask=stop_mask
                    )
                    self.add_batch(nodes, sizes)
                    remaining -= len(sizes)
                return
            if batch_size > 1:
                remaining = count
                while remaining > 0:
                    b = min(batch_size, remaining)
                    start = self._num_rr
                    state = (
                        rng.bit_generator.state if journal is not None else None
                    )
                    nodes, sizes = generator.generate_batch(
                        rng, b, stop_mask=stop_mask
                    )
                    self.add_batch(nodes, sizes)
                    if journal is not None:
                        journal.append({
                            "start": start,
                            "count": int(len(sizes)),
                            "requested": int(b),
                            "mode": "batch",
                            "state": state,
                        })
                    remaining -= len(sizes)
                return
            for _ in range(count):
                start = self._num_rr
                state = (
                    rng.bit_generator.state if journal is not None else None
                )
                self.add(generator.generate(rng, stop_mask=stop_mask))
                if journal is not None:
                    journal.append({
                        "start": start,
                        "count": 1,
                        "requested": 1,
                        "mode": "seq",
                        "state": state,
                    })
        finally:
            metrics = getattr(generator, "metrics", None)
            if metrics is not None:
                # Pool-memory gauge at extend granularity (one call per
                # doubling round) — phase spans pick it up at span exit.
                metrics.set_gauge("rr_pool_bytes", self.nbytes())

    def extend_to(
        self,
        target: int,
        generator: RRGenerator,
        rng: np.random.Generator,
        stop_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Grow the pool until it holds ``target`` RR sets (no-op if larger)."""
        self.extend(max(0, target - self._num_rr), generator, rng, stop_mask)

    # ------------------------------------------------------------------
    # inverted index
    # ------------------------------------------------------------------
    def _inverted(self):
        """Return ``(inv_indptr, inv_rrs)``, rebuilding if the pool grew."""
        if self._inv_num_rr != self._num_rr:
            size = self.total_size
            nodes = self._nodes[:size]
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(self._counts, out=indptr[1:])
            order = np.argsort(nodes, kind="stable")
            rr_of_entry = np.repeat(
                np.arange(self._num_rr, dtype=NODE_DTYPE), self.set_sizes()
            )
            self._inv_rrs = rr_of_entry[order]
            self._inv_indptr = indptr
            self._inv_num_rr = self._num_rr
        return self._inv_indptr, self._inv_rrs

    def rrs_containing(self, node: int) -> np.ndarray:
        """Ids of the stored RR sets containing ``node`` (ascending)."""
        if not 0 <= node < self.n:
            raise IndexError(f"node {node} out of range [0, {self.n})")
        inv_indptr, inv_rrs = self._inverted()
        return inv_rrs[inv_indptr[node]: inv_indptr[node + 1]]

    def sets_touching(self, nodes: np.ndarray) -> np.ndarray:
        """Ids of the stored sets containing *any* of ``nodes`` (ascending).

        One ragged gather over the inverted CSR — the dirty-set query of
        incremental repair: ``nodes`` are the destinations of changed
        edges, and the returned ids are exactly the sets whose sampled
        walks could have traversed a changed in-adjacency block.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) == 0 or self._num_rr == 0:
            return np.empty(0, dtype=np.int64)
        if nodes.min() < 0 or nodes.max() >= self.n:
            raise IndexError(
                f"node {int(nodes.min() if nodes.min() < 0 else nodes.max())}"
                f" out of range [0, {self.n})"
            )
        inv_indptr, inv_rrs = self._inverted()
        starts = inv_indptr[nodes]
        lens = inv_indptr[nodes + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.repeat(np.cumsum(lens) - lens, lens)
        flat = np.repeat(starts, lens) + np.arange(total, dtype=np.int64) - offsets
        return np.unique(inv_rrs[flat]).astype(np.int64, copy=False)

    def replace_sets(
        self, rr_ids: np.ndarray, nodes: np.ndarray, sizes: np.ndarray
    ) -> None:
        """Replace the stored sets ``rr_ids`` in place with new contents.

        ``nodes``/``sizes`` hold the replacements concatenated in
        ``rr_ids`` order.  Set ids and count are preserved — only the
        replaced sets' contents change — so prefix views, counter marks,
        and every clean set's identity survive.  The coverage-count cache
        is adjusted by the membership deltas; the inverted index is
        dropped and rebuilt lazily.  A spilled pool is promoted back to
        RAM (the rewrite touches the node pool).
        """
        rr_ids = np.asarray(rr_ids, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=NODE_DTYPE)
        sizes = np.asarray(sizes, dtype=np.int64)
        if len(rr_ids) == 0:
            return
        if len(rr_ids) != len(sizes):
            raise ValueError(
                f"{len(rr_ids)} set ids but {len(sizes)} replacement sizes"
            )
        if int(sizes.sum()) != len(nodes):
            raise ValueError(
                f"sizes sum to {int(sizes.sum())} but {len(nodes)} nodes given"
            )
        if len(np.unique(rr_ids)) != len(rr_ids):
            raise ValueError("replacement set ids must be unique")
        if rr_ids.min() < 0 or rr_ids.max() >= self._num_rr:
            raise IndexError(
                f"RR-set id {int(rr_ids.max())} out of range "
                f"[0, {self._num_rr})"
            )
        old_sizes = self.set_sizes()
        new_sizes = old_sizes.copy()
        new_sizes[rr_ids] = sizes
        new_indptr = np.zeros(self._num_rr + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=new_indptr[1:])
        new_total = int(new_indptr[-1])
        new_nodes = np.empty(
            _pow2_capacity(new_total, 1024), dtype=NODE_DTYPE
        )
        # Coverage deltas: remove the replaced sets' old mass, add the new.
        np.add.at(self._counts, self.nodes_of_sets(rr_ids), -1)
        np.add.at(self._counts, nodes, 1)

        def _scatter(ids, src_nodes, src_indptr_starts, src_sizes):
            lens = src_sizes
            total = int(lens.sum())
            if total == 0:
                return
            ramp = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(lens) - lens, lens
            )
            flat_src = np.repeat(src_indptr_starts, lens) + ramp
            flat_dst = np.repeat(new_indptr[ids], lens) + ramp
            new_nodes[flat_dst] = src_nodes[flat_src]

        unchanged = np.ones(self._num_rr, dtype=bool)
        unchanged[rr_ids] = False
        ids_u = np.flatnonzero(unchanged)
        _scatter(
            ids_u, self._nodes, self._indptr[ids_u], old_sizes[ids_u]
        )
        repl_starts = np.zeros(len(rr_ids), dtype=np.int64)
        np.cumsum(sizes[:-1], out=repl_starts[1:])
        _scatter(rr_ids, nodes, repl_starts, sizes)

        indptr_buf = np.zeros(
            _pow2_capacity(self._num_rr + 1, 256), dtype=np.int64
        )
        indptr_buf[: self._num_rr + 1] = new_indptr
        self._nodes = new_nodes
        self._indptr = indptr_buf
        self.total_size = new_total
        self._spill_prefix = None
        # Same set count, new contents: force the lazy rebuild explicitly.
        self._inv_indptr = None
        self._inv_rrs = None
        self._inv_num_rr = -1
        if self._sketch is not None:
            # Register rows cannot un-count the replaced sets' old members;
            # the sketch backend rebuilds from the rewritten pool lazily.
            self._sketch.mark_stale()

    def uncovered_counts(
        self, nodes: np.ndarray, covered: np.ndarray
    ) -> np.ndarray:
        """Per-node count of *uncovered* sets containing each queried node.

        One ragged gather over the inverted CSR plus a segmented sum — the
        exact marginal-gain vector CELF's batched lazy re-evaluation needs,
        with no per-node Python work.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) == 0:
            return np.zeros(0, dtype=np.int64)
        inv_indptr, inv_rrs = self._inverted()
        return _segment_uncovered(inv_indptr, inv_rrs, nodes, covered)

    def nodes_of_sets(self, rr_ids: np.ndarray) -> np.ndarray:
        """Concatenated nodes of the given RR sets (duplicates across sets
        preserved — exactly what decremental gain updates need)."""
        rr_ids = np.asarray(rr_ids, dtype=np.int64)
        if len(rr_ids) == 0:
            return np.empty(0, dtype=NODE_DTYPE)
        starts = self._indptr[rr_ids]
        lens = self._indptr[rr_ids + 1] - starts
        total = int(lens.sum())
        offsets = np.repeat(np.cumsum(lens) - lens, lens)
        flat = np.repeat(starts, lens) + np.arange(total, dtype=np.int64) - offsets
        return self._nodes[flat]

    def per_set_sums(
        self, values: np.ndarray, stop: Optional[int] = None
    ) -> np.ndarray:
        """Per-set sums of a node-indexed ``values`` array over the first
        ``stop`` sets (all by default) — one ``reduceat`` over the pool."""
        stop = self._num_rr if stop is None else min(stop, self._num_rr)
        if stop == 0:
            return np.zeros(0, dtype=np.asarray(values).dtype)
        indptr = self._indptr[: stop + 1]
        gathered = np.asarray(values)[self._nodes[: indptr[-1]]]
        # RR sets are never empty (the root is always present), so plain
        # reduceat needs no empty-block fixup.
        return np.add.reduceat(gathered, indptr[:-1])

    # ------------------------------------------------------------------
    # coverage queries
    # ------------------------------------------------------------------
    def coverage_counts(self) -> np.ndarray:
        """Per-node count of RR sets containing the node (singleton coverage).

        Served from the incrementally maintained cache; the returned array
        is a copy the caller may mutate (greedy uses it as its gain vector).
        """
        return self._counts.copy()

    def covered_mask(self, seeds: Iterable[int]) -> np.ndarray:
        """Boolean mask over RR-set ids marking sets hit by ``seeds``."""
        mask = np.zeros(self._num_rr, dtype=bool)
        inv_indptr, inv_rrs = self._inverted()
        for s in seeds:
            mask[inv_rrs[inv_indptr[s]: inv_indptr[s + 1]]] = True
        return mask

    def coverage(self, seeds: Iterable[int]) -> int:
        """Number of stored RR sets hit by the seed set (Lambda_R(S))."""
        return int(self.covered_mask(seeds).sum())

    def estimate_influence(self, seeds: Iterable[int]) -> float:
        """Unbiased influence estimate ``n * Lambda_R(S) / |R|`` (Lemma 1)."""
        if self._num_rr == 0:
            raise ValueError("cannot estimate influence from an empty pool")
        return self.n * self.coverage(seeds) / self._num_rr

    # ------------------------------------------------------------------
    # mmap spill
    # ------------------------------------------------------------------
    @property
    def is_spilled(self) -> bool:
        """True while the node pool lives in disk-backed memory maps."""
        return self._spill_prefix is not None

    def spill_to(self, prefix: str) -> Dict[str, str]:
        """Move the node pool and offsets to disk-backed memory maps.

        Writes ``{prefix}.nodes.npy`` / ``{prefix}.indptr.npy`` and rebinds
        the buffers to read-only ``np.memmap`` views, dropping the inverted
        index (it is rebuilt lazily — and deterministically, so a reloaded
        pool serves bit-identical queries).  The per-node coverage counts
        stay resident: they are O(n), not O(pool).  Every read path
        (coverage, prefix views, per-set sums, the inverted index) works
        unchanged on the mapped buffers; the first *append* after a spill
        promotes the pool back to RAM via the ordinary growth copy.

        Returns the written paths.  A spilled pool reports only its
        resident buffers through :meth:`nbytes`, which is what lets a
        shard runtime bound RSS while the on-disk pool keeps growing.
        """
        nodes_path = f"{prefix}.nodes.npy"
        indptr_path = f"{prefix}.indptr.npy"
        if self.total_size == 0:
            # Nothing to map (and zero-length memory maps are not portable);
            # an empty pool is already as small as it gets.
            return {}
        np.save(nodes_path, self._nodes[: self.total_size])
        np.save(indptr_path, self._indptr[: self._num_rr + 1])
        self._nodes = np.load(nodes_path, mmap_mode="r")
        self._indptr = np.load(indptr_path, mmap_mode="r")
        self._inv_indptr = None
        self._inv_rrs = None
        self._inv_num_rr = -1
        self._spill_prefix = str(prefix)
        return {"nodes": nodes_path, "indptr": indptr_path}

    @classmethod
    def from_spill(cls, n: int, prefix: str) -> "RRCollection":
        """Reopen a pool previously :meth:`spill_to`-ed under ``prefix``.

        The node pool and offsets stay memory-mapped; the coverage counts
        are recomputed with one ``bincount`` pass over the map (exactly the
        values incremental maintenance would have accumulated).
        """
        coll = cls(int(n))
        nodes_path = f"{prefix}.nodes.npy"
        indptr_path = f"{prefix}.indptr.npy"
        if not (os.path.exists(nodes_path) and os.path.exists(indptr_path)):
            raise FileNotFoundError(f"no spilled pool under {prefix!r}")
        coll._nodes = np.load(nodes_path, mmap_mode="r")
        coll._indptr = np.load(indptr_path, mmap_mode="r")
        coll._num_rr = len(coll._indptr) - 1
        coll.total_size = int(coll._indptr[-1])
        counts = np.bincount(coll._nodes[: coll.total_size], minlength=coll.n)
        coll._counts = counts.astype(np.int64, copy=False)
        coll._spill_prefix = str(prefix)
        return coll

    # ------------------------------------------------------------------
    # prefix views
    # ------------------------------------------------------------------
    def prefix(self, theta: int):
        """The first ``theta`` sets as a selectable pool.

        Returns ``self`` when ``theta`` covers the whole pool (the cold
        path pays nothing) and an :class:`RRPrefixView` otherwise (the warm
        path selects over exactly the sets a cold run of that size holds).
        """
        theta = int(theta)
        if theta >= self._num_rr:
            return self
        return RRPrefixView(self, theta)
