"""RR-set collections with an incremental inverted coverage index.

:class:`RRCollection` is the shared substrate of every sampling-based IM
algorithm: it stores the RR sets generated so far, plus — for each node — the
list of RR-set ids containing that node.  Greedy max-coverage, coverage
queries, and the OPIM-style bounds all operate on this index.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.rrsets.base import RRGenerator


class RRCollection:
    """An append-only pool of RR sets over ``n`` nodes."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"graph must have at least one node, got n={n}")
        self.n = n
        self.rr_sets: List[np.ndarray] = []
        self.node_to_rrs: List[List[int]] = [[] for _ in range(n)]
        self.total_size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rr_sets)

    @property
    def num_rr(self) -> int:
        return len(self.rr_sets)

    def average_size(self) -> float:
        """Mean number of nodes per stored RR set."""
        return self.total_size / self.num_rr if self.num_rr else 0.0

    # ------------------------------------------------------------------
    def add(self, rr: Sequence[int]) -> int:
        """Store one RR set; returns its id."""
        rr_id = len(self.rr_sets)
        arr = np.asarray(rr, dtype=np.int64)
        self.rr_sets.append(arr)
        index = self.node_to_rrs
        for node in rr:
            index[node].append(rr_id)
        self.total_size += len(arr)
        return rr_id

    def extend(
        self,
        count: int,
        generator: RRGenerator,
        rng: np.random.Generator,
        stop_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Generate and store ``count`` fresh random RR sets."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for _ in range(count):
            self.add(generator.generate(rng, stop_mask=stop_mask))

    def extend_to(
        self,
        target: int,
        generator: RRGenerator,
        rng: np.random.Generator,
        stop_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Grow the pool until it holds ``target`` RR sets (no-op if larger)."""
        self.extend(max(0, target - self.num_rr), generator, rng, stop_mask)

    # ------------------------------------------------------------------
    def coverage_counts(self) -> np.ndarray:
        """Per-node count of RR sets containing the node (singleton coverage)."""
        return np.array([len(lst) for lst in self.node_to_rrs], dtype=np.int64)

    def covered_mask(self, seeds: Iterable[int]) -> np.ndarray:
        """Boolean mask over RR-set ids marking sets hit by ``seeds``."""
        mask = np.zeros(self.num_rr, dtype=bool)
        for s in seeds:
            mask[self.node_to_rrs[s]] = True
        return mask

    def coverage(self, seeds: Iterable[int]) -> int:
        """Number of stored RR sets hit by the seed set (Lambda_R(S))."""
        return int(self.covered_mask(seeds).sum())

    def estimate_influence(self, seeds: Iterable[int]) -> float:
        """Unbiased influence estimate ``n * Lambda_R(S) / |R|`` (Lemma 1)."""
        if self.num_rr == 0:
            raise ValueError("cannot estimate influence from an empty pool")
        return self.n * self.coverage(seeds) / self.num_rr
