"""Common interface and cost accounting for RR-set generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graphs.csr import CSRGraph


@dataclass
class GenerationCounters:
    """Machine-independent cost counters accumulated across generations.

    ``edges_examined`` counts edge *inspections* — the quantity the paper's
    complexity analysis bounds.  Under vanilla generation every incoming edge
    of an activated node is inspected; under SUBSIM only the edges that the
    geometric jumps land on are.  ``rng_draws`` counts random numbers
    consumed, and ``nodes_added`` the total RR-set mass produced.
    """

    edges_examined: int = 0
    rng_draws: int = 0
    nodes_added: int = 0
    sets_generated: int = 0
    sentinel_hits: int = 0

    def reset(self) -> None:
        self.edges_examined = 0
        self.rng_draws = 0
        self.nodes_added = 0
        self.sets_generated = 0
        self.sentinel_hits = 0

    def average_size(self) -> float:
        """Mean RR-set size over everything generated since the last reset."""
        if self.sets_generated == 0:
            return 0.0
        return self.nodes_added / self.sets_generated


class RRGenerator:
    """Base class: owns the graph, a scratch visited-mask, and counters.

    Subclasses implement :meth:`generate`, returning the RR set as a list of
    node ids (the uniformly drawn root always comes first).  Passing a
    boolean ``stop_mask`` makes generation terminate as soon as any flagged
    node is activated — Algorithm 5's sentinel early stop.

    ``control`` optionally points at a :class:`~repro.runtime.control
    .RunControl`; when set, the generation loop reports progress and polls
    for budget expiry / cancellation cooperatively (see :meth:`_begin`,
    :meth:`_tick`, :meth:`_finish`).  Subclass loops must clear the scratch
    visited-mask before re-raising ``ExecutionInterrupted`` so an aborted
    generation never corrupts the next one — use :meth:`_abandon`.

    **Batched execution.**  ``batch_size`` and ``workers`` select the
    execution strategy consumed by :meth:`RRCollection.extend
    <repro.rrsets.collection.RRCollection.extend>`: the defaults (both 1)
    keep the sequential per-set loop and its exact RNG schedule
    (bit-identical seeds, counters and checkpoints), while larger values
    route through :meth:`generate_batch` — the level-synchronous vectorized
    engine — and the multiprocess fan-out.  Generators whose model has a
    vectorized kernel declare it via :attr:`batched_mode`.
    """

    #: human-readable name used by benchmark tables
    name = "base"
    #: batched-engine kernel for this model: ``"ic"`` (vectorized coin
    #: flips), ``"subsim"`` (vectorized geometric/segment skipping),
    #: ``"lt"`` (level-synchronous live-edge walks), or ``None`` — no
    #: kernel, ``generate_batch`` falls back to the sequential loop.  An
    #: instance-level assignment overrides the class default (the
    #: ``batched_mode`` run parameter threads through here).
    batched_mode: Optional[str] = None
    #: the kernels this generator's model can legally run; overrides
    #: outside this tuple are rejected by the engine and by ``run()``.
    supported_batched_modes: tuple = ()

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.counters = GenerationCounters()
        self.control = None
        #: optional :class:`~repro.observability.registry.MetricsRegistry`
        #: sink; when attached, finished RR sets feed the ``rr_size``
        #: histogram.  ``None`` (the default) keeps the hot path a plain
        #: counter bump plus one ``is None`` branch per finished set.
        self.metrics = None
        #: execution knobs read by ``RRCollection.extend`` (see class docs)
        self.batch_size = 1
        self.workers = 1
        self._reported_edges = 0
        self._visited = np.zeros(graph.n, dtype=bool)

    def generate(
        self,
        rng: np.random.Generator,
        root: Optional[int] = None,
        stop_mask: Optional[np.ndarray] = None,
    ) -> List[int]:
        raise NotImplementedError

    def generate_batch(
        self,
        rng: np.random.Generator,
        count: int,
        stop_mask: Optional[np.ndarray] = None,
    ):
        """Generate ``count`` RR sets; returns flat ``(nodes, sizes)`` arrays.

        Dispatches to the vectorized engine when :attr:`batched_mode` names
        a kernel; otherwise loops :meth:`generate` sequentially (identical
        RNG schedule to ``batch_size=1``), so every generator supports the
        batched call surface.
        """
        if self.batched_mode is not None:
            from repro.rrsets.batched import generate_batch

            return generate_batch(self, rng, count, stop_mask=stop_mask)
        chunks = []
        sizes = np.empty(count, dtype=np.int64)
        for i in range(count):
            rr = np.asarray(self.generate(rng, stop_mask=stop_mask), dtype=np.int64)
            chunks.append(rr)
            sizes[i] = len(rr)
        nodes = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        return nodes, sizes

    def _pick_root(self, rng: np.random.Generator, root: Optional[int]) -> int:
        if root is None:
            self.counters.rng_draws += 1
            return int(rng.integers(0, self.graph.n))
        if not 0 <= root < self.graph.n:
            raise ValueError(f"root {root} out of range [0, {self.graph.n})")
        return int(root)

    def _begin(self) -> None:
        """Gate the next generation on the run control (budget, cancel)."""
        if self.control is not None:
            self.control.on_rr_start()

    def _tick(self) -> None:
        """Report the examined-edge delta since the last tick and poll.

        Called once per activated node inside the generation loops, so a
        deadline or edge cap stops even a single enormous RR set promptly.
        """
        control = self.control
        if control is None:
            return
        delta = self.counters.edges_examined - self._reported_edges
        self._reported_edges = self.counters.edges_examined
        control.on_edges(delta if delta > 0 else 0)

    def _abandon(self, rr: List[int]) -> None:
        """Clear the scratch mask after an interrupted generation."""
        visited = self._visited
        for node in rr:
            visited[node] = False

    def _finish(self, rr: List[int], hit_sentinel: bool = False) -> List[int]:
        """Clear the scratch mask and update counters; returns ``rr``."""
        visited = self._visited
        for node in rr:
            visited[node] = False
        self.counters.nodes_added += len(rr)
        self.counters.sets_generated += 1
        if hit_sentinel:
            self.counters.sentinel_hits += 1
        if self.metrics is not None:
            self.metrics.observe("rr_size", len(rr))
        if self.control is not None:
            self._tick()
            self.control.on_rr_complete(len(rr))
        return rr
