"""Reverse-reachable set generation.

A *reverse-reachable (RR) set* for node ``v`` is the random set of nodes that
would activate ``v`` under one realisation of the cascade; a *random* RR set
draws ``v`` uniformly.  Lemma 1 of the paper ties RR sets to influence:
``I(S) = n * Pr[S hits a random RR set]``, which is what every sampling-based
IM algorithm exploits.

Generators:

* :class:`VanillaICGenerator` — Algorithm 2: reverse BFS flipping one coin
  per incoming edge.
* :class:`SubsimICGenerator` — Algorithm 3 + Section 3.3: geometric skipping
  on equal-probability nodes, index-free sorted skipping otherwise.
* :class:`LTGenerator` — linear-threshold RR sets (random in-edge walk).

All IC generators accept a ``stop_mask`` implementing Algorithm 5
(*RR set-with-Sentinel*): generation halts the moment a sentinel node is
activated.  :class:`RRCollection` accumulates RR sets with an inverted
node -> RR-set index for coverage queries and greedy selection.
"""

from repro.rrsets.base import GenerationCounters, RRGenerator
from repro.rrsets.collection import RRCollection
from repro.rrsets.fast_vanilla import FastVanillaICGenerator
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator

__all__ = [
    "FastVanillaICGenerator",
    "GenerationCounters",
    "LTGenerator",
    "RRCollection",
    "RRGenerator",
    "SubsimICGenerator",
    "VanillaICGenerator",
]
