"""SUBSIM RR-set generation (paper Algorithm 3 + Section 3.3).

When a node ``u`` is activated during the reverse traversal, activating its
in-neighbors is an independent subset-sampling problem over ``d_in(u)``
elements.  Instead of flipping one coin per incoming edge (Algorithm 2),
SUBSIM draws the gap to the next success from the geometric distribution and
*jumps* over the failures, so the expected work at ``u`` is
``O(1 + sum of incoming probabilities)``.

Per-node dispatch:

* all incoming probabilities equal (WC, WC-variant below the cap, uniform
  IC) — pure geometric skipping (Algorithm 3);
* otherwise (exponential / Weibull / trivalency weights) — one of the
  general-IC samplers from Section 3.3, selected by ``general_mode``:

  - ``"sorted"`` (default): index-free positional bucketing over the
    descending-sorted in-adjacency block; no preprocessing.
  - ``"bucket"``: Bringmann–Panagiotou probability-scale buckets,
    preprocessed lazily per node.
  - ``"indexed"``: bucket sampler plus the bucket-jump alias table, the
    paper's ``O(1 + mu)`` construction.

The equal-probability and sorted paths are inlined in the hot loop so that
vanilla and SUBSIM pay comparable interpreted per-operation constants and
wall-clock ratios track the paper's cost model.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.sampling.bucket import BucketSampler, IndexedBucketSampler
from repro.sampling.precompute import node_sampler_dict, uniform_arrays
from repro.utils.exceptions import ExecutionInterrupted

_TINY = 2.2250738585072014e-308  # smallest positive normal double

_GENERAL_MODES = ("sorted", "bucket", "indexed")


class SubsimICGenerator(RRGenerator):
    """Subset-sampling RR-set generator under the IC model."""

    name = "subsim"
    batched_mode = "subsim"
    supported_batched_modes = ("subsim", "ic")

    def __init__(self, graph: CSRGraph, general_mode: str = "sorted") -> None:
        super().__init__(graph)
        if general_mode not in _GENERAL_MODES:
            raise ValueError(
                f"general_mode must be one of {_GENERAL_MODES}, got {general_mode!r}"
            )
        self.general_mode = general_mode
        # Per-node uniform-rate arrays, cached on the graph: every generator
        # instance over this graph (bank roles, fan-out workers, repeated
        # queries) shares one build.  The arrays are never mutated here.
        arrays = uniform_arrays(graph)
        self._is_uniform = arrays.is_uniform
        self._uniform_p = arrays.p
        self._log_one_minus_p = arrays.log1mp
        # Lazily built per-node samplers for the "bucket"/"indexed" modes,
        # shared across instances through the graph cache as well.
        self._node_samplers: Dict[int, BucketSampler] = node_sampler_dict(
            graph, general_mode
        )

    # ------------------------------------------------------------------
    def generate(
        self,
        rng: np.random.Generator,
        root: Optional[int] = None,
        stop_mask: Optional[np.ndarray] = None,
    ) -> List[int]:
        graph = self.graph
        indptr = graph.in_indptr
        indices = graph.in_indices
        probs = graph.in_probs
        visited = self._visited
        counters = self.counters
        random = rng.random
        is_uniform = self._is_uniform
        uniform_p = self._uniform_p
        log1mp = self._log_one_minus_p
        sorted_mode = self.general_mode == "sorted"

        self._begin()
        v = self._pick_root(rng, root)
        rr = [v]
        visited[v] = True
        if stop_mask is not None and stop_mask[v]:
            return self._finish(rr, hit_sentinel=True)

        queue = deque(rr)
        try:
            return self._traverse(
                rr, queue, indptr, indices, probs, visited, counters,
                random, is_uniform, uniform_p, log1mp, sorted_mode,
                stop_mask, rng,
            )
        except ExecutionInterrupted:
            self._abandon(rr)
            raise

    def _traverse(
        self, rr, queue, indptr, indices, probs, visited, counters,
        random, is_uniform, uniform_p, log1mp, sorted_mode, stop_mask, rng,
    ) -> List[int]:
        while queue:
            u = queue.popleft()
            self._tick()
            lo = int(indptr[u])
            hi = int(indptr[u + 1])
            if lo == hi:
                continue
            if is_uniform[u]:
                p = uniform_p[u]
                if p <= 0.0:
                    continue
                if p >= 1.0:
                    # Every in-neighbor activates deterministically.
                    counters.edges_examined += hi - lo
                    for j in range(lo, hi):
                        w = indices[j]
                        if not visited[w]:
                            visited[w] = True
                            rr.append(w)
                            if stop_mask is not None and stop_mask[w]:
                                return self._finish(rr, hit_sentinel=True)
                            queue.append(w)
                    continue
                # Algorithm 3: geometric skipping at rate p.
                lg = log1mp[u]
                counters.rng_draws += 1
                uval = random()
                if uval <= 0.0:
                    uval = _TINY
                jump = math.log(uval) / lg
                if jump >= hi - lo:
                    continue
                pos = lo + int(jump)
                while pos < hi:
                    counters.edges_examined += 1
                    w = indices[pos]
                    if not visited[w]:
                        visited[w] = True
                        rr.append(w)
                        if stop_mask is not None and stop_mask[w]:
                            return self._finish(rr, hit_sentinel=True)
                        queue.append(w)
                    counters.rng_draws += 1
                    uval = random()
                    if uval <= 0.0:
                        uval = _TINY
                    jump = math.log(uval) / lg
                    if jump >= hi - pos:
                        break
                    pos += int(jump) + 1
                continue

            # General (skewed) in-probabilities.
            if sorted_mode:
                hit = self._scan_sorted_block(
                    lo, hi, indices, probs, visited, rr, queue,
                    stop_mask, rng, counters,
                )
            else:
                hit = self._scan_with_sampler(
                    u, lo, indices, visited, rr, queue, stop_mask, rng, counters
                )
            if hit:
                return self._finish(rr, hit_sentinel=True)
        return self._finish(rr)

    # ------------------------------------------------------------------
    @staticmethod
    def _scan_sorted_block(
        lo, hi, indices, probs, visited, rr, queue, stop_mask, rng, counters
    ) -> bool:
        """Index-free sampler over one descending-sorted in-adjacency block.

        Returns True when a sentinel node was activated (caller must stop).
        """
        random = rng.random
        lo = int(lo)
        hi = int(hi)
        start = lo
        while start < hi:
            end = min(lo + 2 * (start - lo) + 1, hi)
            q = probs[start]
            if not q > 0.0:  # catches 0, negatives, and NaN
                break
            if q >= 1.0:
                # Ceiling is certain: examine each slot, accept w.p. p.
                for j in range(start, end):
                    counters.edges_examined += 1
                    pj = probs[j]
                    if pj < 1.0:
                        counters.rng_draws += 1
                        if random() >= pj:
                            continue
                    w = indices[j]
                    if not visited[w]:
                        visited[w] = True
                        rr.append(w)
                        if stop_mask is not None and stop_mask[w]:
                            return True
                        queue.append(w)
            else:
                lg = math.log1p(-q)
                counters.rng_draws += 1
                uval = random()
                if uval <= 0.0:
                    uval = _TINY
                jump = math.log(uval) / lg
                if jump >= end - start:
                    start = end
                    continue
                pos = start + int(jump)
                while pos < end:
                    counters.edges_examined += 1
                    pj = probs[pos]
                    accept = True
                    if pj < q:
                        counters.rng_draws += 1
                        accept = random() < pj / q
                    if accept:
                        w = indices[pos]
                        if not visited[w]:
                            visited[w] = True
                            rr.append(w)
                            if stop_mask is not None and stop_mask[w]:
                                return True
                            queue.append(w)
                    counters.rng_draws += 1
                    uval = random()
                    if uval <= 0.0:
                        uval = _TINY
                    jump = math.log(uval) / lg
                    if jump >= end - pos:
                        break
                    pos += int(jump) + 1
            start = end
        return False

    # ------------------------------------------------------------------
    def _scan_with_sampler(
        self, u, lo, indices, visited, rr, queue, stop_mask, rng, counters
    ) -> bool:
        """Bucket / indexed-bucket sampling of node ``u``'s in-neighbors."""
        sampler = self._node_samplers.get(u)
        if sampler is None:
            block = self.graph.in_probs[lo: self.graph.in_indptr[u + 1]]
            cls = (
                IndexedBucketSampler
                if self.general_mode == "indexed"
                else BucketSampler
            )
            sampler = cls(block)
            self._node_samplers[u] = sampler
        positions = sampler.sample(rng)
        counters.edges_examined += len(positions)
        counters.rng_draws += len(positions) + 1
        for offset in positions:
            w = indices[lo + offset]
            if not visited[w]:
                visited[w] = True
                rr.append(w)
                if stop_mask is not None and stop_mask[w]:
                    return True
                queue.append(w)
        return False
